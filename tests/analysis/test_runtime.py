"""Unit tests for runtime measurement and the Figure 4 fit."""

import pytest

from repro.analysis.runtime import (
    RuntimeMeasurement,
    fit_scaling,
    measure_runtime,
)
from repro.trace.synthetic import loop_nest_trace, random_trace


class TestMeasureRuntime:
    def test_fields_filled_in(self):
        trace = loop_nest_trace(16, 10)
        trace.name = "loop16"
        measurement = measure_runtime(trace, budgets=(0, 2))
        assert measurement.name == "loop16"
        assert measurement.n == 160
        assert measurement.n_unique == 16
        assert measurement.seconds > 0
        assert measurement.work_product == 160 * 16

    def test_repeats_keep_minimum(self):
        trace = random_trace(300, 30, seed=0)
        single = measure_runtime(trace, repeats=1)
        multi = measure_runtime(trace, repeats=3)
        # The min over repeats cannot exceed a fresh single run by much;
        # just check it is a valid positive measurement.
        assert 0 < multi.seconds
        assert multi.n == single.n

    def test_invalid_repeats(self):
        with pytest.raises(ValueError):
            measure_runtime(loop_nest_trace(4, 2), repeats=0)


class TestFitScaling:
    def _measurement(self, work, seconds):
        return RuntimeMeasurement(name="m", n=work, n_unique=1, seconds=seconds)

    def test_perfect_line_recovered(self):
        points = [self._measurement(x, 2e-6 * x + 0.5) for x in (10, 100, 1000)]
        fit = fit_scaling(points)
        assert fit.slope == pytest.approx(2e-6)
        assert fit.intercept == pytest.approx(0.5)
        assert fit.r_squared == pytest.approx(1.0)

    def test_predict(self):
        points = [self._measurement(x, 3.0 * x) for x in (1, 2, 3)]
        fit = fit_scaling(points)
        assert fit.predict(10) == pytest.approx(30.0)

    def test_needs_two_points(self):
        with pytest.raises(ValueError, match="two measurements"):
            fit_scaling([self._measurement(1, 1.0)])

    def test_degenerate_x_rejected(self):
        points = [self._measurement(5, 1.0), self._measurement(5, 2.0)]
        with pytest.raises(ValueError, match="same N"):
            fit_scaling(points)

    def test_real_measurements_fit_positively(self):
        measurements = [
            measure_runtime(random_trace(n, max(8, n // 8), seed=n))
            for n in (200, 800, 2000)
        ]
        fit = fit_scaling(measurements)
        assert fit.slope > 0
