"""Unit tests for working-set analysis."""

import pytest

from repro.analysis.workingset import (
    locality_score,
    reuse_distance_histogram,
    working_set_curve,
)
from repro.trace.synthetic import loop_nest_trace, sequential_trace
from repro.trace.trace import Trace


class TestWorkingSetCurve:
    def test_loop_working_set_saturates_at_footprint(self):
        trace = loop_nest_trace(8, 20)
        points = {p.window: p for p in working_set_curve(trace, (4, 8, 64))}
        assert points[4].mean_unique == 4
        assert points[8].mean_unique == 8
        assert points[64].mean_unique == 8  # never exceeds the footprint
        assert points[64].max_unique == 8

    def test_streaming_working_set_equals_window(self):
        trace = sequential_trace(128)
        points = working_set_curve(trace, (16, 32))
        for point in points:
            assert point.mean_unique == point.window

    def test_window_longer_than_trace(self):
        trace = Trace([1, 2, 1])
        (point,) = working_set_curve(trace, (100,))
        assert point.mean_unique == 2

    def test_empty_trace(self):
        (point,) = working_set_curve(Trace([]), (8,))
        assert point.mean_unique == 0.0
        assert point.max_unique == 0

    def test_bad_window(self):
        with pytest.raises(ValueError):
            working_set_curve(Trace([1]), (0,))


class TestReuseDistances:
    def test_hand_example(self):
        # 0,1,0: the second 0 has one distinct intervening reference.
        assert reuse_distance_histogram(Trace([0, 1, 0])) == {1: 1}

    def test_immediate_reuse_distance_zero(self):
        assert reuse_distance_histogram(Trace([5, 5, 5])) == {0: 2}

    def test_no_reuse_gives_empty_histogram(self):
        assert reuse_distance_histogram(Trace([1, 2, 3])) == {}

    def test_matches_explorer_level_zero(self):
        from repro.core.explorer import AnalyticalCacheExplorer
        from repro.trace.synthetic import zipf_trace

        trace = zipf_trace(300, 50, seed=0)
        histogram = reuse_distance_histogram(trace)
        assert histogram == AnalyticalCacheExplorer(trace).histograms[0].counts


class TestLocalityScore:
    def test_tight_loop_scores_high(self):
        assert locality_score(loop_nest_trace(4, 50)) == 1.0

    def test_streaming_scores_zero(self):
        assert locality_score(sequential_trace(100)) == 0.0

    def test_large_loop_scores_low(self):
        # Footprint 64 > threshold 16: every reuse distance is 63.
        assert locality_score(loop_nest_trace(64, 10)) == 0.0

    def test_in_unit_interval(self):
        from repro.trace.synthetic import markov_trace

        score = locality_score(markov_trace(500, 100, seed=1))
        assert 0.0 <= score <= 1.0
