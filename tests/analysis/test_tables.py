"""Unit tests for table rendering."""

import pytest

from repro.analysis.tables import (
    format_table,
    miss_grid_table,
    optimal_instances_table,
    runtime_table,
    trace_stats_table,
)
from repro.core.explorer import AnalyticalCacheExplorer
from repro.trace.stats import compute_statistics
from repro.trace.synthetic import loop_nest_trace, zipf_trace


class TestFormatTable:
    def test_alignment_and_rule(self):
        text = format_table(["A", "BB"], [[1, 2], [33, 44]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "-+-" in lines[1]
        assert all(len(line) == len(lines[0]) for line in lines[1:])

    def test_title_prepended(self):
        text = format_table(["x"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError, match="row width"):
            format_table(["a", "b"], [[1]])


class TestTraceStatsTable:
    def test_matches_paper_columns(self):
        stats = [compute_statistics(loop_nest_trace(4, 10), name="loop")]
        text = trace_stats_table(stats, title="Table 5")
        assert "Benchmark" in text
        assert "Size N" in text
        assert "Unique References N'" in text
        assert "Max. Misses" in text
        assert "loop" in text
        assert "40" in text


class TestOptimalInstancesTable:
    def test_rows_are_percentages_columns_depths(self):
        trace = zipf_trace(300, 40, seed=0)
        explorer = AnalyticalCacheExplorer(trace)
        results = {p: explorer.explore_percent(p) for p in (5, 10, 20)}
        text = optimal_instances_table(results)
        lines = text.splitlines()
        assert lines[0].startswith("K")
        assert "5%" in text and "10%" in text and "20%" in text

    def test_explicit_depth_selection(self):
        trace = loop_nest_trace(8, 10)
        explorer = AnalyticalCacheExplorer(trace)
        results = {5.0: explorer.explore_percent(5)}
        text = optimal_instances_table(results, depths=[2, 4])
        header = text.splitlines()[0]
        assert "2" in header and "4" in header and "8" not in header

    def test_missing_depth_shown_as_dash(self):
        trace = loop_nest_trace(8, 10)
        explorer = AnalyticalCacheExplorer(trace)
        results = {5.0: explorer.explore_percent(5)}
        text = optimal_instances_table(results, depths=[1 << 20])
        assert "-" in text.splitlines()[-1]

    def test_empty_results_rejected(self):
        with pytest.raises(ValueError):
            optimal_instances_table({})


class TestRuntimeTable:
    def test_contents(self):
        text = runtime_table({"crc": 0.123456, "des": 2.0})
        assert "crc" in text and "0.1235" in text
        assert "des" in text and "2" in text


class TestMissGridTable:
    def test_grid_layout(self):
        grid = {(2, 1): 10, (2, 2): 0, (4, 1): 5, (4, 2): 0}
        text = miss_grid_table(grid, depths=[2, 4], associativities=[1, 2])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "10" in lines[2] and "5" in lines[2]

    def test_missing_cells_dashed(self):
        text = miss_grid_table({}, depths=[2], associativities=[1])
        assert "-" in text.splitlines()[-1]
