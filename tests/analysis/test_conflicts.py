"""Unit tests for conflict diagnosis."""

import pytest

from repro.analysis.conflicts import conflict_report, total_conflict_misses
from repro.core.explorer import AnalyticalCacheExplorer
from repro.trace.synthetic import loop_nest_trace, zipf_trace
from repro.trace.trace import Trace


class TestConflictReport:
    def test_thrash_pair_identified(self):
        # 0 and 4 share row 0 of a depth-4 cache and thrash at A=1.
        trace = Trace([0, 4, 0, 4, 1], address_bits=4)
        explorer = AnalyticalCacheExplorer(trace)
        rows = conflict_report(explorer, depth=4, associativity=1)
        assert len(rows) == 1
        assert rows[0].addresses == [0, 4]
        assert rows[0].row_index == 0
        assert rows[0].misses == 2

    def test_row_misses_sum_to_explorer_total(self):
        trace = zipf_trace(500, 80, seed=0)
        explorer = AnalyticalCacheExplorer(trace)
        for depth in (4, 16):
            for assoc in (1, 2):
                rows = conflict_report(
                    explorer, depth, assoc, top=10**9
                )
                assert total_conflict_misses(rows) == explorer.misses(
                    depth, assoc
                )

    def test_rows_ranked_by_miss_contribution(self):
        trace = zipf_trace(500, 80, seed=1)
        explorer = AnalyticalCacheExplorer(trace)
        rows = conflict_report(explorer, depth=8, associativity=1, top=5)
        misses = [row.misses for row in rows]
        assert misses == sorted(misses, reverse=True)

    def test_top_limits_output(self):
        trace = zipf_trace(400, 60, seed=2)
        explorer = AnalyticalCacheExplorer(trace)
        assert len(conflict_report(explorer, 2, 1, top=1)) <= 1

    def test_conflict_free_cache_reports_nothing(self):
        explorer = AnalyticalCacheExplorer(loop_nest_trace(8, 10))
        assert conflict_report(explorer, depth=8, associativity=1) == []

    def test_addresses_share_the_row(self):
        trace = zipf_trace(400, 60, seed=3)
        explorer = AnalyticalCacheExplorer(trace)
        for row in conflict_report(explorer, depth=16, associativity=1):
            assert {addr % 16 for addr in row.addresses} == {row.row_index}
            assert row.occupancy == len(row.addresses)

    def test_validation(self):
        explorer = AnalyticalCacheExplorer(Trace([0, 1]))
        with pytest.raises(ValueError):
            conflict_report(explorer, depth=3)
        with pytest.raises(ValueError):
            conflict_report(explorer, depth=2, associativity=0)
        with pytest.raises(ValueError):
            conflict_report(explorer, depth=2, top=0)
