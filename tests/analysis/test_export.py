"""Unit tests for CSV export."""

import csv
import io

from repro.analysis.curves import associativity_curve, capacity_curve
from repro.analysis.export import (
    curve_to_csv,
    exploration_to_csv,
    histograms_to_csv,
    measurements_to_csv,
)
from repro.analysis.runtime import RuntimeMeasurement
from repro.core.explorer import AnalyticalCacheExplorer
from repro.core.instance import CacheInstance, ExplorationResult
from repro.trace.synthetic import zipf_trace


def _parse(text):
    return list(csv.DictReader(io.StringIO(text)))


class TestExplorationCsv:
    def test_rows_match_result(self):
        trace = zipf_trace(300, 40, seed=0)
        result = AnalyticalCacheExplorer(trace).explore(5)
        rows = _parse(exploration_to_csv(result))
        assert len(rows) == len(result.instances)
        assert int(rows[0]["depth"]) == result.instances[0].depth
        assert int(rows[0]["misses"]) == result.misses[0]

    def test_missing_misses_render_empty(self):
        result = ExplorationResult(budget=0, instances=[CacheInstance(2, 1)])
        rows = _parse(exploration_to_csv(result))
        assert rows[0]["misses"] == ""


class TestCurveCsv:
    def test_associativity_curve(self):
        explorer = AnalyticalCacheExplorer(zipf_trace(300, 40, seed=1))
        points = associativity_curve(explorer, depth=4)
        rows = _parse(curve_to_csv(points, x_name="associativity"))
        assert [int(r["associativity"]) for r in rows] == [p.x for p in points]

    def test_capacity_curve(self):
        explorer = AnalyticalCacheExplorer(zipf_trace(300, 40, seed=2))
        points = capacity_curve(explorer, max_capacity=64)
        rows = _parse(curve_to_csv(points, x_name="capacity_words"))
        assert [int(r["misses"]) for r in rows] == [p.misses for p in points]


class TestHistogramCsv:
    def test_flat_rows_sorted_by_level_then_distance(self):
        explorer = AnalyticalCacheExplorer(zipf_trace(300, 40, seed=3))
        rows = _parse(histograms_to_csv(explorer.histograms))
        keys = [(int(r["level"]), int(r["distance"])) for r in rows]
        assert keys == sorted(keys)
        # Depth column is 2**level throughout.
        assert all(
            int(r["depth"]) == 1 << int(r["level"]) for r in rows
        )


class TestMeasurementsCsv:
    def test_figure4_points(self):
        measurements = [
            RuntimeMeasurement(name="a", n=10, n_unique=5, seconds=0.5),
            RuntimeMeasurement(name="b", n=20, n_unique=10, seconds=1.0),
        ]
        rows = _parse(measurements_to_csv(measurements))
        assert rows[0]["name"] == "a"
        assert int(rows[1]["work_product"]) == 200
