"""Unit tests for the markdown report generator."""

import pytest

from repro.analysis.report import generate_report
from repro.trace.synthetic import loop_nest_trace, zipf_trace


@pytest.fixture
def report():
    trace = zipf_trace(400, 60, seed=0)
    trace.name = "demo"
    return generate_report(trace)


class TestGenerateReport:
    def test_has_all_sections(self, report):
        for heading in (
            "# Cache design report: demo",
            "## Trace statistics",
            "## Optimal cache instances",
            "## Best-achievable misses per capacity",
            "## Budget sensitivity",
            "## Hardware costs",
        ):
            assert heading in report

    def test_statistics_values_present(self, report):
        assert "references (N): **400**" in report
        assert "unique references (N'): **55**" in report

    def test_budget_grid_rows(self, report):
        for label in ("5%", "10%", "15%", "20%"):
            assert label in report

    def test_cost_picks_named(self, report):
        assert "energy-optimal" in report
        assert "area-optimal" in report
        assert "latency-optimal" in report

    def test_unnamed_trace_gets_placeholder_title(self):
        from repro.trace.trace import Trace

        unnamed = Trace(list(zipf_trace(200, 30, seed=1)))
        report = generate_report(unnamed)
        assert "# Cache design report: trace" in report

    def test_explicit_focus_depth(self):
        trace = loop_nest_trace(16, 10)
        report = generate_report(trace, focus_depth=8)
        assert "## Budget sensitivity at depth 8" in report

    def test_custom_percent_grid(self):
        trace = loop_nest_trace(16, 10)
        report = generate_report(trace, percents=(50.0,), focus_percent=50.0)
        assert "50%" in report
