"""Unit tests for miss-ratio curves."""

import pytest

from repro.analysis.curves import associativity_curve, capacity_curve
from repro.core.explorer import AnalyticalCacheExplorer
from repro.trace.synthetic import loop_nest_trace, zipf_trace


@pytest.fixture
def explorer():
    return AnalyticalCacheExplorer(zipf_trace(500, 80, seed=0))


class TestAssociativityCurve:
    def test_monotone_and_ends_at_zero(self, explorer):
        curve = associativity_curve(explorer, depth=8)
        misses = [p.misses for p in curve]
        assert misses == sorted(misses, reverse=True)
        assert misses[-1] == 0
        assert [p.x for p in curve] == list(range(1, len(curve) + 1))

    def test_single_point_when_direct_mapped_suffices(self):
        explorer = AnalyticalCacheExplorer(loop_nest_trace(8, 5))
        curve = associativity_curve(explorer, depth=8)
        assert len(curve) == 1
        assert curve[0].misses == 0

    def test_instances_match_geometry(self, explorer):
        for point in associativity_curve(explorer, depth=4):
            assert point.instance.depth == 4
            assert point.instance.associativity == point.x


class TestCapacityCurve:
    def test_monotone_in_capacity(self, explorer):
        curve = capacity_curve(explorer, max_capacity=1024)
        misses = [p.misses for p in curve]
        assert misses == sorted(misses, reverse=True)

    def test_capacities_are_powers_of_two(self, explorer):
        curve = capacity_curve(explorer, max_capacity=256, min_capacity=4)
        assert [p.x for p in curve] == [4, 8, 16, 32, 64, 128, 256]

    def test_instance_capacity_matches_x(self, explorer):
        for point in capacity_curve(explorer, max_capacity=128):
            assert point.instance.size_words == point.x

    def test_best_is_no_worse_than_any_factorization(self, explorer):
        curve = capacity_curve(explorer, max_capacity=64)
        for point in curve:
            depth = 2
            while depth <= point.x:
                assoc = point.x // depth
                assert point.misses <= explorer.misses(depth, assoc)
                depth *= 2

    def test_big_enough_capacity_reaches_zero(self, explorer):
        n_unique = explorer.stripped.n_unique
        capacity = 2
        while capacity < 2 * n_unique:
            capacity *= 2
        curve = capacity_curve(explorer, max_capacity=capacity)
        assert curve[-1].misses == 0

    def test_validation(self, explorer):
        with pytest.raises(ValueError):
            capacity_curve(explorer, max_capacity=4, min_capacity=1)
        with pytest.raises(ValueError):
            capacity_curve(explorer, max_capacity=2, min_capacity=8)
