"""Unit tests for the Trace container."""

import pytest

from repro.trace.reference import AccessKind, MemoryReference
from repro.trace.trace import Trace


class TestConstruction:
    def test_basic_construction(self):
        trace = Trace([1, 2, 3, 2])
        assert len(trace) == 4
        assert list(trace) == [1, 2, 3, 2]

    def test_address_bits_inferred_from_max_address(self):
        assert Trace([0, 1]).address_bits == 1
        assert Trace([7]).address_bits == 3
        assert Trace([8]).address_bits == 4

    def test_empty_trace_has_one_address_bit(self):
        trace = Trace([])
        assert len(trace) == 0
        assert trace.address_bits == 1

    def test_explicit_address_bits_respected(self):
        assert Trace([1], address_bits=12).address_bits == 12

    def test_address_too_wide_for_declared_bits(self):
        with pytest.raises(ValueError, match="does not fit"):
            Trace([16], address_bits=4)

    def test_negative_address_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            Trace([-1])

    def test_zero_address_bits_rejected(self):
        with pytest.raises(ValueError, match="address_bits"):
            Trace([0], address_bits=0)

    def test_kinds_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="length"):
            Trace([1, 2], kinds=[AccessKind.READ])

    def test_from_references_preserves_kinds(self):
        refs = [
            MemoryReference(1, AccessKind.WRITE),
            MemoryReference(2, AccessKind.FETCH),
        ]
        trace = Trace.from_references(refs)
        assert trace.kind(0) is AccessKind.WRITE
        assert trace.kind(1) is AccessKind.FETCH

    def test_from_bit_strings(self):
        trace = Trace.from_bit_strings(["101", "010"])
        assert list(trace) == [5, 2]
        assert trace.address_bits == 3

    def test_from_bit_strings_rejects_mixed_widths(self):
        with pytest.raises(ValueError, match="width"):
            Trace.from_bit_strings(["10", "100"])

    def test_from_bit_strings_rejects_non_binary(self):
        with pytest.raises(ValueError, match="invalid bit pattern"):
            Trace.from_bit_strings(["10a"])

    def test_from_bit_strings_rejects_empty_list(self):
        with pytest.raises(ValueError, match="at least one"):
            Trace.from_bit_strings([])


class TestProtocol:
    def test_indexing_returns_address(self):
        trace = Trace([4, 5, 6])
        assert trace[1] == 5

    def test_slicing_returns_trace_with_same_bits(self):
        trace = Trace([1, 2, 3, 4], address_bits=10)
        sliced = trace[1:3]
        assert isinstance(sliced, Trace)
        assert list(sliced) == [2, 3]
        assert sliced.address_bits == 10

    def test_slicing_preserves_kinds(self):
        trace = Trace([1, 2], kinds=[AccessKind.READ, AccessKind.WRITE])
        assert trace[1:].kind(0) is AccessKind.WRITE

    def test_equality_includes_address_bits(self):
        assert Trace([1, 2]) == Trace([1, 2])
        assert Trace([1, 2]) != Trace([1, 2], address_bits=8)
        assert Trace([1, 2]) != Trace([1, 3])

    def test_hash_consistent_with_equality(self):
        assert hash(Trace([1, 2])) == hash(Trace([1, 2]))

    def test_untyped_kind_defaults_to_read(self):
        assert Trace([1]).kind(0) is AccessKind.READ
        assert not Trace([1]).has_kinds

    def test_repr_mentions_name_and_sizes(self):
        text = repr(Trace([1, 1, 2], name="demo"))
        assert "demo" in text
        assert "n=3" in text
        assert "unique=2" in text


class TestDerivedViews:
    def test_unique_addresses_first_occurrence_order(self):
        trace = Trace([3, 1, 3, 2, 1])
        assert trace.unique_addresses() == [3, 1, 2]
        assert trace.unique_count() == 3

    def test_references_iterator(self):
        trace = Trace([1], kinds=[AccessKind.FETCH])
        refs = list(trace.references())
        assert refs == [MemoryReference(1, AccessKind.FETCH)]

    def test_filter_kind_splits_instruction_and_data(self):
        trace = Trace(
            [1, 2, 3, 4],
            kinds=[
                AccessKind.FETCH,
                AccessKind.READ,
                AccessKind.FETCH,
                AccessKind.WRITE,
            ],
        )
        inst = trace.filter_kind(AccessKind.FETCH)
        data = trace.filter_kind(AccessKind.READ, AccessKind.WRITE)
        assert list(inst) == [1, 3]
        assert list(data) == [2, 4]
        assert data.kind(1) is AccessKind.WRITE

    def test_filter_kind_requires_kinds(self):
        with pytest.raises(ValueError, match="no access kinds"):
            Trace([1]).filter_kind(AccessKind.READ)

    def test_concat_widens_address_bits(self):
        a = Trace([1], address_bits=4)
        b = Trace([100], address_bits=8)
        merged = a.concat(b)
        assert list(merged) == [1, 100]
        assert merged.address_bits == 8

    def test_concat_preserves_kinds_when_either_side_has_them(self):
        a = Trace([1], kinds=[AccessKind.WRITE])
        b = Trace([2])
        merged = a.concat(b)
        assert merged.kind(0) is AccessKind.WRITE
        assert merged.kind(1) is AccessKind.READ

    def test_rebased_changes_declared_width_only(self):
        trace = Trace([3], address_bits=4)
        rebased = trace.rebased(9)
        assert rebased.address_bits == 9
        assert list(rebased) == [3]
