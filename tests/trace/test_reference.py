"""Unit tests for repro.trace.reference."""

import pytest

from repro.trace.reference import AccessKind, MemoryReference


class TestAccessKind:
    def test_din_labels_follow_dinero_convention(self):
        assert AccessKind.from_din(0) is AccessKind.READ
        assert AccessKind.from_din(1) is AccessKind.WRITE
        assert AccessKind.from_din(2) is AccessKind.FETCH

    def test_unknown_din_label_raises(self):
        with pytest.raises(ValueError, match="unknown dinero access label"):
            AccessKind.from_din(7)

    def test_data_vs_instruction_partition(self):
        assert AccessKind.READ.is_data
        assert AccessKind.WRITE.is_data
        assert not AccessKind.FETCH.is_data
        assert AccessKind.FETCH.is_instruction
        assert not AccessKind.READ.is_instruction
        assert not AccessKind.WRITE.is_instruction


class TestMemoryReference:
    def test_defaults_to_read(self):
        ref = MemoryReference(0x10)
        assert ref.address == 0x10
        assert ref.kind is AccessKind.READ

    def test_negative_address_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            MemoryReference(-1)

    def test_int_conversion(self):
        assert int(MemoryReference(42, AccessKind.WRITE)) == 42

    def test_frozen_and_hashable(self):
        ref = MemoryReference(5)
        assert ref == MemoryReference(5)
        assert hash(ref) == hash(MemoryReference(5))
        with pytest.raises(AttributeError):
            ref.address = 6
