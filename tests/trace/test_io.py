"""Unit tests for trace file I/O."""

import pytest

from repro.trace.io import (
    read_csv_trace,
    read_dinero_trace,
    read_text_trace,
    read_trace,
    write_csv_trace,
    write_dinero_trace,
    write_text_trace,
    write_trace,
)
from repro.trace.reference import AccessKind
from repro.trace.trace import Trace


@pytest.fixture
def typed_trace():
    return Trace(
        [0x10, 0x2F, 0x10],
        address_bits=12,
        kinds=[AccessKind.READ, AccessKind.WRITE, AccessKind.FETCH],
        name="typed",
    )


class TestTextFormat:
    def test_roundtrip_preserves_addresses_and_bits(self, tmp_path, typed_trace):
        path = tmp_path / "t.trace"
        write_text_trace(typed_trace, path)
        loaded = read_text_trace(path)
        assert list(loaded) == list(typed_trace)
        assert loaded.address_bits == 12

    def test_explicit_bits_override_header(self, tmp_path, typed_trace):
        path = tmp_path / "t.trace"
        write_text_trace(typed_trace, path)
        assert read_text_trace(path, address_bits=16).address_bits == 16

    def test_comments_and_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "t.trace"
        path.write_text("# hello\n\nff\n10\n")
        assert list(read_text_trace(path)) == [0xFF, 0x10]


class TestDineroFormat:
    def test_roundtrip_preserves_kinds(self, tmp_path, typed_trace):
        path = tmp_path / "t.din"
        write_dinero_trace(typed_trace, path)
        loaded = read_dinero_trace(path, address_bits=12)
        assert list(loaded) == list(typed_trace)
        assert [loaded.kind(i) for i in range(3)] == [
            AccessKind.READ,
            AccessKind.WRITE,
            AccessKind.FETCH,
        ]

    def test_file_content_is_classic_din(self, tmp_path, typed_trace):
        path = tmp_path / "t.din"
        write_dinero_trace(typed_trace, path)
        assert path.read_text().splitlines() == ["0 10", "1 2f", "2 10"]

    def test_malformed_line_raises_with_location(self, tmp_path):
        path = tmp_path / "bad.din"
        path.write_text("0 10\n0 10 extra\n")
        with pytest.raises(ValueError, match="2"):
            read_dinero_trace(path)


class TestCsvFormat:
    def test_roundtrip(self, tmp_path, typed_trace):
        path = tmp_path / "t.csv"
        write_csv_trace(typed_trace, path)
        loaded = read_csv_trace(path, address_bits=12)
        assert list(loaded) == list(typed_trace)
        assert loaded.kind(2) is AccessKind.FETCH

    def test_unknown_kind_raises(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("kind,address\nmaybe,0x10\n")
        with pytest.raises(ValueError, match="unknown access kind"):
            read_csv_trace(path)


class TestBinaryFormat:
    def test_roundtrip_with_kinds(self, tmp_path, typed_trace):
        from repro.trace.io import read_binary_trace, write_binary_trace

        path = tmp_path / "t.rbt"
        write_binary_trace(typed_trace, path)
        loaded = read_binary_trace(path)
        assert list(loaded) == list(typed_trace)
        assert loaded.address_bits == 12
        assert [loaded.kind(i) for i in range(3)] == [
            AccessKind.READ,
            AccessKind.WRITE,
            AccessKind.FETCH,
        ]

    def test_roundtrip_without_kinds(self, tmp_path):
        from repro.trace.io import read_binary_trace, write_binary_trace

        trace = Trace([1, 2, 3], address_bits=8)
        path = tmp_path / "t.rbt"
        write_binary_trace(trace, path)
        loaded = read_binary_trace(path)
        assert list(loaded) == [1, 2, 3]
        assert not loaded.has_kinds

    def test_bad_magic_rejected(self, tmp_path):
        from repro.trace.io import read_binary_trace

        path = tmp_path / "bad.rbt"
        path.write_bytes(b"NOPE" + b"\x00" * 16)
        with pytest.raises(ValueError, match="magic"):
            read_binary_trace(path)

    def test_truncated_file_rejected(self, tmp_path, typed_trace):
        from repro.trace.io import write_binary_trace, read_binary_trace

        path = tmp_path / "t.rbt"
        write_binary_trace(typed_trace, path)
        data = path.read_bytes()
        path.write_bytes(data[:-2])
        with pytest.raises(ValueError, match="truncated"):
            read_binary_trace(path)

    def test_long_trace_roundtrip_exact(self, tmp_path):
        from repro.trace.io import read_binary_trace, write_binary_trace
        from repro.trace.synthetic import random_trace

        trace = random_trace(5000, 4000, seed=0)
        path = tmp_path / "t.rbt"
        write_binary_trace(trace, path)
        loaded = read_binary_trace(path)
        assert list(loaded) == list(trace)
        assert loaded.address_bits == trace.address_bits
        # Fixed-width layout: header (14 bytes) + 8 bytes per reference.
        assert path.stat().st_size == 14 + 8 * len(trace)


class TestGzipAndDispatch:
    @pytest.mark.parametrize("suffix", [".trace", ".din", ".csv", ".rbt"])
    def test_gzip_roundtrip(self, tmp_path, typed_trace, suffix):
        path = tmp_path / f"t{suffix}.gz"
        write_trace(typed_trace, path)
        loaded = read_trace(path, address_bits=12)
        assert list(loaded) == list(typed_trace)

    def test_dispatch_by_suffix(self, tmp_path, typed_trace):
        path = tmp_path / "t.din"
        write_trace(typed_trace, path)
        loaded = read_trace(path)
        assert loaded.kind(1) is AccessKind.WRITE

    def test_unknown_suffix_rejected(self, tmp_path, typed_trace):
        with pytest.raises(ValueError, match="unknown trace format"):
            write_trace(typed_trace, tmp_path / "t.bin")
        with pytest.raises(ValueError, match="unknown trace format"):
            read_trace(tmp_path / "t.bin")

    def test_loaded_name_strips_gz_suffix(self, tmp_path, typed_trace):
        path = tmp_path / "demo.trace.gz"
        write_trace(typed_trace, path)
        assert read_trace(path).name == "demo.trace"
