"""Unit tests for trace transformations."""

import pytest

from repro.trace.reference import AccessKind
from repro.trace.transform import (
    filter_address_range,
    map_addresses,
    offset_addresses,
    remap_addresses,
    split_at_address,
)
from repro.trace.trace import Trace


@pytest.fixture
def typed_trace():
    return Trace(
        [10, 20, 30],
        kinds=[AccessKind.READ, AccessKind.WRITE, AccessKind.FETCH],
        name="t",
    )


class TestOffset:
    def test_shifts_all_addresses(self, typed_trace):
        shifted = offset_addresses(typed_trace, 5)
        assert list(shifted) == [15, 25, 35]

    def test_preserves_kinds(self, typed_trace):
        shifted = offset_addresses(typed_trace, 1)
        assert shifted.kind(1) is AccessKind.WRITE

    def test_negative_result_rejected(self, typed_trace):
        with pytest.raises(ValueError, match="negative"):
            offset_addresses(typed_trace, -11)

    def test_negative_offset_allowed_when_safe(self, typed_trace):
        assert list(offset_addresses(typed_trace, -10)) == [0, 10, 20]


class TestRemap:
    def test_identity_where_unmapped(self, typed_trace):
        remapped = remap_addresses(typed_trace, {20: 99})
        assert list(remapped) == [10, 99, 30]

    def test_strict_mode_requires_full_mapping(self, typed_trace):
        with pytest.raises(KeyError, match="missing"):
            remap_addresses(typed_trace, {10: 1}, strict=True)

    def test_strict_mode_with_full_mapping(self, typed_trace):
        remapped = remap_addresses(
            typed_trace, {10: 1, 20: 2, 30: 3}, strict=True
        )
        assert list(remapped) == [1, 2, 3]

    def test_negative_target_rejected(self, typed_trace):
        with pytest.raises(ValueError):
            remap_addresses(typed_trace, {10: -1})

    def test_kinds_preserved(self, typed_trace):
        remapped = remap_addresses(typed_trace, {30: 7})
        assert remapped.kind(2) is AccessKind.FETCH


class TestFilterRange:
    def test_half_open_interval(self):
        trace = Trace([5, 10, 15, 20])
        kept = filter_address_range(trace, 10, 20)
        assert list(kept) == [10, 15]

    def test_empty_range_rejected(self):
        with pytest.raises(ValueError):
            filter_address_range(Trace([1]), 10, 5)

    def test_address_bits_preserved(self):
        trace = Trace([1, 2], address_bits=12)
        assert filter_address_range(trace, 0, 10).address_bits == 12


class TestSplit:
    def test_partitions_by_boundary(self, typed_trace):
        low, high = split_at_address(typed_trace, 25)
        assert list(low) == [10, 20]
        assert list(high) == [30]
        assert high.kind(0) is AccessKind.FETCH

    def test_rebuilding_order_from_parts(self):
        trace = Trace([1, 100, 2, 200])
        low, high = split_at_address(trace, 50)
        assert len(low) + len(high) == len(trace)


class TestMapAddresses:
    def test_arbitrary_function(self):
        trace = Trace([0, 1, 2])
        mapped = map_addresses(trace, lambda a: a * 4)
        assert list(mapped) == [0, 4, 8]

    def test_negative_result_rejected(self):
        with pytest.raises(ValueError):
            map_addresses(Trace([1]), lambda a: a - 5)
