"""Unit tests for trace stripping (prelude step 1)."""

import pytest

from repro.trace.strip import strip_trace, strip_trace_sorted
from repro.trace.synthetic import random_trace
from repro.trace.trace import Trace


class TestStripTrace:
    def test_identifiers_in_first_occurrence_order(self):
        stripped = strip_trace(Trace([7, 3, 7, 9, 3]))
        assert stripped.unique_addresses == [7, 3, 9]
        assert stripped.id_of == {7: 0, 3: 1, 9: 2}
        assert list(stripped.id_sequence) == [0, 1, 0, 2, 1]

    def test_counts_match_paper_definitions(self, paper_trace):
        stripped = strip_trace(paper_trace)
        assert stripped.n == 10
        assert stripped.n_unique == 5

    def test_paper_table2_unique_references(self, paper_trace):
        stripped = strip_trace(paper_trace)
        expected = [0b1011, 0b1100, 0b0110, 0b0011, 0b0100]
        assert stripped.unique_addresses == expected

    def test_occurrences_positions(self):
        stripped = strip_trace(Trace([5, 6, 5, 5]))
        assert stripped.occurrences(0) == [0, 2, 3]
        assert stripped.occurrences(1) == [1]

    def test_empty_trace(self):
        stripped = strip_trace(Trace([]))
        assert stripped.n == 0
        assert stripped.n_unique == 0

    def test_address_bits_copied_from_trace(self):
        stripped = strip_trace(Trace([1], address_bits=11))
        assert stripped.address_bits == 11

    def test_address_lookup(self):
        stripped = strip_trace(Trace([9, 4]))
        assert stripped.address(0) == 9
        assert stripped.address(1) == 4

    def test_repr(self):
        assert "N=3" in repr(strip_trace(Trace([1, 1, 2])))


class TestSortedStripEquivalence:
    """The N log N sort-based variant must be interchangeable (section 2.4)."""

    def test_equivalent_on_small_trace(self, paper_trace):
        fast = strip_trace(paper_trace)
        slow = strip_trace_sorted(paper_trace)
        assert fast.unique_addresses == slow.unique_addresses
        assert fast.id_of == slow.id_of
        assert list(fast.id_sequence) == list(slow.id_sequence)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_equivalent_on_random_traces(self, seed):
        trace = random_trace(500, 60, seed=seed)
        fast = strip_trace(trace)
        slow = strip_trace_sorted(trace)
        assert fast.unique_addresses == slow.unique_addresses
        assert list(fast.id_sequence) == list(slow.id_sequence)

    def test_equivalent_on_empty_trace(self):
        assert strip_trace_sorted(Trace([])).n_unique == 0
