"""Unit tests for trace statistics (paper Tables 5/6 quantities)."""

import pytest

from repro.cache.config import CacheConfig
from repro.cache.simulator import simulate_trace
from repro.trace.stats import compute_statistics, max_misses_depth_one
from repro.trace.synthetic import loop_nest_trace, random_trace
from repro.trace.trace import Trace


class TestMaxMisses:
    def test_hand_computed_example(self):
        # 5, 5 hits once; 6, 5, 6 are all non-repeat accesses.
        trace = Trace([5, 5, 6, 5, 6])
        # transitions: 5(cold) 5(hit) 6(cold) 5(miss) 6(miss) -> 2 non-cold
        assert max_misses_depth_one(trace) == 2

    def test_single_address_trace_has_zero(self):
        assert max_misses_depth_one(Trace([3, 3, 3, 3])) == 0

    def test_all_distinct_trace_has_zero(self):
        # Every miss is cold, so nothing remains beyond cold misses.
        assert max_misses_depth_one(Trace([1, 2, 3, 4])) == 0

    def test_empty_trace(self):
        assert max_misses_depth_one(Trace([])) == 0

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_matches_depth_one_direct_mapped_simulation(self, seed):
        """The closed form must equal an actual depth-1 DM simulation."""
        trace = random_trace(400, 37, seed=seed)
        simulated = simulate_trace(trace, CacheConfig(depth=1, associativity=1))
        assert max_misses_depth_one(trace) == simulated.non_cold_misses

    def test_matches_simulation_on_paper_trace(self, paper_trace):
        simulated = simulate_trace(
            paper_trace, CacheConfig(depth=1, associativity=1)
        )
        assert max_misses_depth_one(paper_trace) == simulated.non_cold_misses


class TestTraceStatistics:
    def test_fields(self):
        trace = loop_nest_trace(8, 5)
        stats = compute_statistics(trace, name="loop")
        assert stats.name == "loop"
        assert stats.n == 40
        assert stats.n_unique == 8
        assert stats.work_product == 320
        assert stats.address_bits == trace.address_bits

    def test_name_falls_back_to_trace_name(self):
        stats = compute_statistics(Trace([1], name="inner"))
        assert stats.name == "inner"

    def test_budget_percentages(self):
        trace = loop_nest_trace(8, 5)
        stats = compute_statistics(trace)
        assert stats.budget(100) == stats.max_misses
        assert stats.budget(50) == stats.max_misses // 2
        assert stats.budget(0) == 0

    def test_budget_truncates_toward_zero(self):
        trace = Trace([5, 6, 5, 6, 5])  # max_misses = 3
        stats = compute_statistics(trace)
        assert stats.max_misses == 3
        assert stats.budget(50) == 1

    def test_negative_percent_rejected(self):
        stats = compute_statistics(Trace([1]))
        with pytest.raises(ValueError, match="non-negative"):
            stats.budget(-5)

    def test_loop_trace_max_misses(self):
        # footprint F repeated I times: depth-1 DM misses every access
        # except none repeat consecutively (F >= 2), so N - N' non-cold.
        trace = loop_nest_trace(4, 10)
        stats = compute_statistics(trace)
        assert stats.max_misses == 40 - 4
