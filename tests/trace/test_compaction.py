"""Unit tests for cache-filter trace compaction (Puzak stripping)."""

import pytest

from repro.cache.config import CacheConfig
from repro.cache.simulator import simulate_trace
from repro.core.explorer import AnalyticalCacheExplorer
from repro.trace.compaction import compact_trace
from repro.trace.reference import AccessKind
from repro.trace.synthetic import loop_nest_trace, random_trace, zipf_trace
from repro.trace.trace import Trace


class TestMechanics:
    def test_consecutive_repeats_removed_at_depth_one(self):
        result = compact_trace(Trace([5, 5, 6, 6, 5]), filter_depth=1)
        assert list(result.trace) == [5, 6, 5]

    def test_filter_hit_requires_matching_set_content(self):
        # depth 2: 0 and 1 live in different sets, so both always kept
        # until re-referenced while still resident.
        result = compact_trace(Trace([0, 1, 0, 1, 2, 0]), filter_depth=2)
        # 0,1 kept (cold); second 0,1 are filter hits; 2 evicts 0; final 0 kept.
        assert list(result.trace) == [0, 1, 2, 0]

    def test_unique_references_preserved(self):
        trace = random_trace(400, 60, seed=0)
        result = compact_trace(trace, filter_depth=8)
        assert set(result.trace) == set(trace)

    def test_kinds_preserved(self):
        trace = Trace(
            [0, 0, 1],
            kinds=[AccessKind.WRITE, AccessKind.READ, AccessKind.FETCH],
        )
        result = compact_trace(trace, filter_depth=1)
        assert [result.trace.kind(i) for i in range(2)] == [
            AccessKind.WRITE,
            AccessKind.FETCH,
        ]

    def test_stats(self):
        trace = loop_nest_trace(8, 10)
        result = compact_trace(trace, filter_depth=8)
        assert result.stats.original_length == 80
        assert result.stats.compacted_length == 8  # loop fits the filter
        assert result.stats.reduction == pytest.approx(0.9)

    def test_empty_trace(self):
        result = compact_trace(Trace([]), filter_depth=4)
        assert len(result.trace) == 0
        assert result.stats.reduction == 0.0

    def test_bad_filter_depth(self):
        with pytest.raises(ValueError, match="power of two"):
            compact_trace(Trace([0]), filter_depth=6)

    def test_name_records_filter(self):
        trace = Trace([0, 1], name="demo")
        assert compact_trace(trace, 2).trace.name == "demo/strip2"


class TestPreservationTheorem:
    """Filter misses reproduce miss counts for every depth >= filter depth."""

    @pytest.mark.parametrize("filter_depth", [1, 2, 4, 8])
    @pytest.mark.parametrize("seed", [0, 1])
    def test_simulated_misses_preserved(self, filter_depth, seed):
        trace = random_trace(500, 90, seed=seed)
        compacted = compact_trace(trace, filter_depth).trace
        depth = filter_depth
        while depth <= 64:
            for assoc in (1, 2, 3):
                config = CacheConfig(depth=depth, associativity=assoc)
                full = simulate_trace(trace, config)
                short = simulate_trace(compacted, config)
                assert full.non_cold_misses == short.non_cold_misses
                assert full.cold_misses == short.cold_misses
            depth *= 2

    def test_analytical_misses_preserved(self):
        trace = zipf_trace(800, 150, seed=2)
        compacted = compact_trace(trace, 4).trace
        full = AnalyticalCacheExplorer(trace)
        short = AnalyticalCacheExplorer(compacted)
        for depth in (4, 8, 16, 64, 256):
            for assoc in (1, 2, 4):
                assert full.misses(depth, assoc) == short.misses(depth, assoc)

    def test_shallower_depths_not_guaranteed(self):
        """Below the filter depth the counts may (and typically do) differ."""
        trace = zipf_trace(800, 150, seed=3)
        compacted = compact_trace(trace, 16).trace
        full = AnalyticalCacheExplorer(trace)
        short = AnalyticalCacheExplorer(compacted)
        diffs = [
            full.misses(d, 1) != short.misses(d, 1) for d in (1, 2, 4, 8)
        ]
        assert any(diffs)

    def test_exploration_results_match_above_filter_depth(self):
        trace = zipf_trace(600, 100, seed=4)
        compacted = compact_trace(trace, 4).trace
        budget = 10
        full = AnalyticalCacheExplorer(trace).explore(budget).as_dict()
        short = AnalyticalCacheExplorer(compacted).explore(budget).as_dict()
        for depth, assoc in full.items():
            if depth >= 4 and depth in short:
                assert short[depth] == assoc
