"""Unit tests for synthetic trace generators."""

import pytest

from repro.trace.synthetic import (
    adversarial_lowbit_trace,
    interleaved_trace,
    loop_nest_trace,
    markov_trace,
    random_trace,
    sequential_trace,
    skewed_trace,
    strided_trace,
    zipf_trace,
)


class TestSequential:
    def test_addresses(self):
        assert list(sequential_trace(4, start=10)) == [10, 11, 12, 13]

    def test_no_reuse(self):
        trace = sequential_trace(100)
        assert trace.unique_count() == 100

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            sequential_trace(-1)


class TestStrided:
    def test_addresses(self):
        assert list(strided_trace(3, stride=4, start=1)) == [1, 5, 9]

    def test_zero_stride_rejected(self):
        with pytest.raises(ValueError, match="stride"):
            strided_trace(3, stride=0)


class TestLoopNest:
    def test_repeats_footprint(self):
        trace = loop_nest_trace(3, 2, start=5)
        assert list(trace) == [5, 6, 7, 5, 6, 7]

    def test_unique_count_is_footprint(self):
        assert loop_nest_trace(16, 10).unique_count() == 16

    def test_zero_iterations_gives_empty_trace(self):
        assert len(loop_nest_trace(4, 0)) == 0

    def test_bad_footprint_rejected(self):
        with pytest.raises(ValueError, match="footprint"):
            loop_nest_trace(0, 3)


class TestRandom:
    def test_deterministic_for_seed(self):
        assert list(random_trace(50, 10, seed=7)) == list(
            random_trace(50, 10, seed=7)
        )

    def test_different_seeds_differ(self):
        assert list(random_trace(50, 10, seed=1)) != list(
            random_trace(50, 10, seed=2)
        )

    def test_addresses_within_footprint(self):
        assert all(a < 20 for a in random_trace(200, 20, seed=0))

    def test_bad_footprint_rejected(self):
        with pytest.raises(ValueError):
            random_trace(10, 0)


class TestZipf:
    def test_deterministic_and_bounded(self):
        trace = zipf_trace(300, 50, exponent=1.2, seed=3)
        assert list(trace) == list(zipf_trace(300, 50, exponent=1.2, seed=3))
        assert all(a < 50 for a in trace)

    def test_skew_concentrates_on_low_ranks(self):
        trace = zipf_trace(2000, 100, exponent=2.0, seed=0)
        hot = sum(1 for a in trace if a < 5)
        assert hot > len(trace) // 2  # heavy head

    def test_negative_exponent_rejected(self):
        with pytest.raises(ValueError):
            zipf_trace(10, 10, exponent=-1)


class TestMarkov:
    def test_deterministic_and_bounded(self):
        trace = markov_trace(300, 64, locality=0.9, seed=5)
        assert list(trace) == list(markov_trace(300, 64, locality=0.9, seed=5))
        assert all(0 <= a < 64 for a in trace)

    def test_high_locality_means_small_steps(self):
        trace = markov_trace(1000, 256, locality=1.0, seed=1)
        addrs = list(trace)
        steps = [
            min((b - a) % 256, (a - b) % 256)
            for a, b in zip(addrs, addrs[1:])
        ]
        assert all(s <= 1 for s in steps)

    def test_invalid_locality_rejected(self):
        with pytest.raises(ValueError, match="locality"):
            markov_trace(10, 8, locality=1.5)


class TestAdversarialLowbit:
    def test_deterministic_for_seed(self):
        trace = adversarial_lowbit_trace(200, low_bits=4, footprint=20, seed=9)
        assert list(trace) == list(
            adversarial_lowbit_trace(200, low_bits=4, footprint=20, seed=9)
        )

    def test_aliasing_addresses_share_zero_low_bits(self):
        trace = adversarial_lowbit_trace(
            400, low_bits=5, footprint=16, ratio=1.0, seed=2
        )
        assert all(a % 32 == 0 for a in trace)
        assert trace.unique_count() > 1  # distinct tags, same set

    def test_mixed_ratio_keeps_some_background_refs(self):
        trace = adversarial_lowbit_trace(
            400, low_bits=4, footprint=16, ratio=0.5, seed=2
        )
        assert any(a % 16 != 0 for a in trace)
        assert any(a % 16 == 0 and a > 0 for a in trace)

    def test_name_records_the_low_bits(self):
        assert adversarial_lowbit_trace(10, low_bits=3).name == "advlow-3"

    def test_validation(self):
        with pytest.raises(ValueError, match="low_bits"):
            adversarial_lowbit_trace(10, low_bits=0)
        with pytest.raises(ValueError, match="ratio"):
            adversarial_lowbit_trace(10, low_bits=2, ratio=1.5)
        with pytest.raises(ValueError, match="footprint"):
            adversarial_lowbit_trace(10, low_bits=2, footprint=0)


class TestSkewed:
    def test_deterministic_for_seed(self):
        trace = skewed_trace(300, footprint=40, seed=6)
        assert list(trace) == list(skewed_trace(300, footprint=40, seed=6))

    def test_addresses_within_footprint(self):
        assert all(a < 30 for a in skewed_trace(500, footprint=30, seed=1))

    def test_hot_set_dominates(self):
        trace = skewed_trace(
            2000, footprint=100, hot_fraction=0.1, skew=0.9, seed=0
        )
        hot = sum(1 for a in trace if a < 10)
        assert hot > len(trace) // 2

    def test_name_records_the_skew(self):
        assert skewed_trace(10, footprint=8, skew=0.75).name == "skew-0.75"

    def test_validation(self):
        with pytest.raises(ValueError, match="hot_fraction"):
            skewed_trace(10, footprint=8, hot_fraction=0.0)
        with pytest.raises(ValueError, match="skew"):
            skewed_trace(10, footprint=8, skew=-0.1)
        with pytest.raises(ValueError, match="footprint"):
            skewed_trace(10, footprint=0)


class TestInterleaved:
    def test_round_robin_order(self):
        a = sequential_trace(3, start=0)
        b = sequential_trace(3, start=100)
        merged = interleaved_trace([a, b])
        assert list(merged) == [0, 100, 1, 101, 2, 102]

    def test_uneven_streams_drain(self):
        a = sequential_trace(1)
        b = sequential_trace(3, start=10)
        assert list(interleaved_trace([a, b])) == [0, 10, 11, 12]

    def test_empty_input_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            interleaved_trace([])

    def test_address_bits_cover_all_streams(self):
        a = sequential_trace(2)  # 1 bit
        b = sequential_trace(2, start=1000)
        assert interleaved_trace([a, b]).address_bits >= 10
