"""Unit tests for run manifests (repro.obs.manifest)."""

import json

import pytest

from repro.core.explorer import AnalyticalCacheExplorer
from repro.obs import (
    MANIFEST_SCHEMA,
    Recorder,
    RunManifest,
    environment_info,
    validate_manifest,
)
from repro.trace.synthetic import zipf_trace


def _explored_manifest(memory=False):
    """A real manifest from a fully instrumented exploration."""
    recorder = Recorder(memory=memory)
    trace = zipf_trace(400, 60, seed=2)
    explorer = AnalyticalCacheExplorer(trace, recorder=recorder)
    explorer.explore(5)
    return explorer.run_manifest()


class TestEnvironmentInfo:
    def test_reports_python_and_platform(self):
        info = environment_info()
        assert isinstance(info["python"], str) and info["python"]
        assert isinstance(info["platform"], str) and info["platform"]
        assert info["numpy"] is None or isinstance(info["numpy"], str)


class TestRunManifest:
    def test_from_recorder_snapshot(self):
        recorder = Recorder()
        with recorder.phase("engine:serial"):
            recorder.record("histogram_levels", 4)
        manifest = RunManifest.from_recorder(
            recorder,
            engine="serial",
            requested_engine="auto",
            options={},
            trace={"name": "t", "n": 10, "n_unique": 5, "address_bits": 4},
        )
        assert manifest.engine == "serial"
        assert manifest.requested_engine == "auto"
        assert manifest.phases[0]["name"] == "engine:serial"
        assert manifest.counters == {"histogram_levels": 4}

    def test_to_json_is_parseable_and_valid(self):
        manifest = _explored_manifest()
        document = json.loads(manifest.to_json())
        assert document["schema"] == MANIFEST_SCHEMA
        validate_manifest(document)

    def test_explorer_manifest_has_pipeline_phases(self):
        manifest = _explored_manifest()
        names = [p["name"] for p in manifest.phases]
        assert "resolve-engine" in names
        assert any(n.startswith("engine:") for n in names)
        assert "postlude:optimal-pairs" in names
        engine_phase = next(
            p for p in manifest.phases if p["name"].startswith("engine:")
        )
        child_names = [c["name"] for c in engine_phase["children"]]
        assert child_names[:3] == [
            "prelude:strip",
            "prelude:zerosets",
            "prelude:mrct",
        ]

    def test_explorer_manifest_counters_and_trace(self):
        manifest = _explored_manifest()
        assert manifest.counters["trace_refs"] == 400
        assert manifest.counters["unique_refs"] == manifest.trace["n_unique"]
        assert manifest.counters["histogram_levels"] >= 1
        assert manifest.trace["n"] == 400
        assert manifest.engine in ("serial", "vectorized")
        assert manifest.requested_engine == "auto"

    def test_memory_sampling_lands_in_manifest(self):
        manifest = _explored_manifest(memory=True)
        assert manifest.memory.get("tracemalloc_peak_bytes", 0) > 0


class TestValidateManifest:
    def test_accepts_real_document(self):
        validate_manifest(_explored_manifest().to_json_dict())

    @pytest.mark.parametrize(
        "mutate, message",
        [
            (lambda d: d.pop("schema"), "schema"),
            (lambda d: d.__setitem__("schema", "bogus/9"), "schema"),
            (lambda d: d.__setitem__("engine", ""), "engine"),
            (lambda d: d.pop("requested_engine"), "requested_engine"),
            (lambda d: d.__setitem__("options", []), "options"),
            (lambda d: d["trace"].pop("n_unique"), "n_unique"),
            (lambda d: d["trace"].__setitem__("n", "ten"), "trace.n"),
            (lambda d: d["environment"].pop("python"), "environment.python"),
            (lambda d: d.__setitem__("wall_s", -1.0), "wall_s"),
            (lambda d: d.__setitem__("phases", []), "phases"),
            (
                lambda d: d["phases"][0].pop("duration_s"),
                "missing field 'duration_s'",
            ),
            (
                lambda d: d["phases"][0].__setitem__("duration_s", -0.5),
                "negative duration",
            ),
            (
                lambda d: d["phases"][0]["counters"].__setitem__("bad", "x"),
                "counters",
            ),
        ],
    )
    def test_rejects_mutated_documents(self, mutate, message):
        document = _explored_manifest().to_json_dict()
        mutate(document)
        with pytest.raises(ValueError, match=message):
            validate_manifest(document)

    def test_rejects_non_object(self):
        with pytest.raises(ValueError, match="JSON object"):
            validate_manifest([1, 2, 3])

    def test_rejects_children_exceeding_parent(self):
        document = _explored_manifest().to_json_dict()
        parent = document["phases"][0]
        parent["children"] = [
            {
                "name": "impossible",
                "duration_s": parent["duration_s"] + 10.0,
                "counters": {},
                "children": [],
            }
        ]
        with pytest.raises(ValueError, match="children sum"):
            validate_manifest(document)

    def test_rejects_unaccounted_wall_time(self):
        document = _explored_manifest().to_json_dict()
        document["wall_s"] = 1000.0
        with pytest.raises(ValueError, match="does not account"):
            validate_manifest(document)

    def test_phase_durations_account_for_wall_time(self):
        """The acceptance invariant: phases sum to wall time, in-tolerance.

        validate_manifest enforces it, but assert it directly so the
        contract survives validator refactors.
        """
        manifest = _explored_manifest()
        top_total = sum(p["duration_s"] for p in manifest.phases)
        tolerance = max(manifest.wall_s * 0.05, 0.025)
        assert abs(top_total - manifest.wall_s) <= tolerance
