"""Unit tests for the phase recorder (repro.obs.recorder)."""

import time

import pytest

from repro.obs.recorder import NULL_RECORDER, NullRecorder, PhaseRecord, Recorder


class TestPhases:
    def test_single_phase_records_duration(self):
        recorder = Recorder()
        with recorder.phase("work"):
            time.sleep(0.002)
        assert [p.name for p in recorder.phases] == ["work"]
        assert recorder.phases[0].duration_s >= 0.002
        assert recorder.wall_s >= recorder.phases[0].duration_s

    def test_nesting_builds_a_tree(self):
        recorder = Recorder()
        with recorder.phase("outer"):
            with recorder.phase("inner-a"):
                pass
            with recorder.phase("inner-b"):
                with recorder.phase("leaf"):
                    pass
        assert [p.name for p in recorder.phases] == ["outer"]
        outer = recorder.phases[0]
        assert [c.name for c in outer.children] == ["inner-a", "inner-b"]
        assert [c.name for c in outer.children[1].children] == ["leaf"]

    def test_children_durations_bounded_by_parent(self):
        recorder = Recorder()
        with recorder.phase("outer"):
            with recorder.phase("inner"):
                time.sleep(0.002)
        outer = recorder.phases[0]
        assert outer.children[0].duration_s <= outer.duration_s

    def test_sequential_top_level_phases(self):
        recorder = Recorder()
        with recorder.phase("one"):
            pass
        with recorder.phase("two"):
            pass
        assert [p.name for p in recorder.phases] == ["one", "two"]
        assert recorder.total_s <= recorder.wall_s + 1e-6

    def test_reentered_phase_name_accumulates_separately(self):
        """Same name twice = two records (phases are occurrences, not keys)."""
        recorder = Recorder()
        for _ in range(2):
            with recorder.phase("pass"):
                pass
        assert [p.name for p in recorder.phases] == ["pass", "pass"]

    def test_find_is_depth_first(self):
        recorder = Recorder()
        with recorder.phase("outer"):
            with recorder.phase("target"):
                recorder.count("hits", 3)
        assert recorder.find("target").counters == {"hits": 3}
        assert recorder.find("missing") is None

    def test_out_of_order_close_raises(self):
        recorder = Recorder()
        outer = recorder.phase("outer")
        inner = recorder.phase("inner")
        outer.__enter__()
        inner.__enter__()
        with pytest.raises(RuntimeError, match="out of order"):
            outer.__exit__(None, None, None)

    def test_wall_s_zero_before_any_phase(self):
        assert Recorder().wall_s == 0.0

    def test_exception_still_closes_phase(self):
        recorder = Recorder()
        with pytest.raises(ValueError):
            with recorder.phase("doomed"):
                raise ValueError("boom")
        assert recorder.phases[0].name == "doomed"
        assert recorder._stack == []


class TestCounters:
    def test_count_accumulates_on_innermost_phase(self):
        recorder = Recorder()
        with recorder.phase("outer"):
            recorder.count("outer_events")
            with recorder.phase("inner"):
                recorder.count("rows", 5)
                recorder.count("rows", 2)
        assert recorder.find("inner").counters == {"rows": 7}
        assert recorder.find("outer").counters == {"outer_events": 1}
        # run-level totals aggregate across phases
        assert recorder.counters == {"outer_events": 1, "rows": 7}

    def test_count_outside_any_phase_is_run_level_only(self):
        recorder = Recorder()
        recorder.count("global", 4)
        assert recorder.counters == {"global": 4}
        assert recorder.phases == []

    def test_record_has_gauge_semantics(self):
        recorder = Recorder()
        with recorder.phase("p"):
            recorder.record("n_unique", 10)
            recorder.record("n_unique", 12)
        assert recorder.find("p").counters == {"n_unique": 12}
        assert recorder.counters == {"n_unique": 12}


class TestExport:
    def test_as_dict_round_trips_phase_tree(self):
        recorder = Recorder()
        with recorder.phase("outer"):
            with recorder.phase("inner"):
                recorder.count("rows", 2)
        document = recorder.as_dict()
        assert set(document) == {"wall_s", "phases", "counters", "memory"}
        outer = document["phases"][0]
        assert outer["name"] == "outer"
        assert outer["children"][0]["counters"] == {"rows": 2}

    def test_render_shows_tree_and_counters(self):
        recorder = Recorder()
        with recorder.phase("outer"):
            with recorder.phase("inner"):
                recorder.count("rows", 2)
        text = recorder.render()
        lines = text.splitlines()
        assert lines[0].startswith("outer")
        assert lines[1].startswith("  inner")
        assert "[rows=2]" in lines[1]
        assert lines[-1].startswith("total")


class TestMemorySampling:
    def test_memory_stats_populated_when_enabled(self):
        recorder = Recorder(memory=True)
        with recorder.phase("alloc"):
            _ = [object() for _ in range(1000)]
        assert recorder.memory_stats.get("tracemalloc_peak_bytes", 0) > 0
        # ru_maxrss is POSIX; present on the CI hosts this repo targets.
        assert recorder.memory_stats.get("peak_rss_kb", 0) > 0

    def test_memory_off_by_default(self):
        recorder = Recorder()
        with recorder.phase("alloc"):
            _ = [object() for _ in range(100)]
        assert recorder.memory_stats == {}


class TestNullRecorder:
    def test_singleton_is_disabled(self):
        assert NULL_RECORDER.enabled is False
        assert isinstance(NULL_RECORDER, NullRecorder)

    def test_phase_returns_shared_context(self):
        # Allocation-free disabled path: every phase() call hands back the
        # same context-manager object.
        first = NULL_RECORDER.phase("a")
        second = NULL_RECORDER.phase("b")
        assert first is second
        with first:
            pass

    def test_all_operations_are_no_ops(self):
        recorder = NullRecorder()
        with recorder.phase("ignored"):
            recorder.count("ignored", 5)
            recorder.record("ignored", 5)
        assert recorder.phases == []
        assert recorder.counters == {}
        assert recorder.find("ignored") is None
        assert recorder.wall_s == 0.0
        assert recorder.as_dict() == {
            "wall_s": 0.0,
            "phases": [],
            "counters": {},
            "memory": {},
        }
        assert recorder.render() == "(profiling disabled)"


class TestPhaseRecord:
    def test_find_searches_subtree(self):
        leaf = PhaseRecord("leaf")
        root = PhaseRecord("root", children=[PhaseRecord("mid", children=[leaf])])
        assert root.find("leaf") is leaf
        assert root.find("other") is None

    def test_as_dict_shape(self):
        record = PhaseRecord("p", duration_s=0.5, counters={"k": 1})
        assert record.as_dict() == {
            "name": "p",
            "duration_s": 0.5,
            "counters": {"k": 1},
            "children": [],
        }
