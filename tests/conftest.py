"""Shared fixtures.

The paper's running example (its Table 1 trace, reconstructed so that it
reproduces Tables 2-4 and Figure 3 exactly) is used across the core
tests; tiny-scale workload runs are session-cached because assembling and
executing a kernel is the expensive part of the workload tests.
"""

from __future__ import annotations

import os

import pytest

from repro.trace.trace import Trace

try:
    from hypothesis import settings as _hypothesis_settings
except ImportError:  # pragma: no cover - hypothesis is a test dependency
    _hypothesis_settings = None

if _hypothesis_settings is not None:
    # Deterministic by default: property tests replay the same examples on
    # every run (and in CI), so a red bisects cleanly.  Opt into fresh
    # randomness or more examples with REPRO_HYPOTHESIS_PROFILE.
    _hypothesis_settings.register_profile(
        "deterministic", derandomize=True, deadline=None
    )
    _hypothesis_settings.register_profile(
        "thorough", max_examples=400, deadline=None
    )
    _hypothesis_settings.register_profile("random", deadline=None)
    _hypothesis_settings.load_profile(
        os.environ.get("REPRO_HYPOTHESIS_PROFILE", "deterministic")
    )

#: The paper's Table 1 trace: ids [1,2,3,4,1,5,2,4,1,3] over the unique
#: references 1011, 1100, 0110, 0011, 0100.  Verified to reproduce the
#: paper's Table 3 (zero/one sets), Table 4 (MRCT) and Figure 3 (BCAT).
PAPER_TRACE_BITS = [
    "1011", "1100", "0110", "0011", "1011",
    "0100", "1100", "0011", "1011", "0110",
]


@pytest.fixture
def paper_trace() -> Trace:
    """The running example trace from the paper (Table 1)."""
    return Trace.from_bit_strings(PAPER_TRACE_BITS, name="paper-table-1")


@pytest.fixture(scope="session")
def tiny_runs():
    """All 12 workloads executed & verified at tiny scale (session cache)."""
    from repro.workloads import run_all

    return run_all(scale="tiny")
