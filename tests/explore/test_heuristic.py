"""Unit tests for the iterative design-simulate-analyze heuristic."""

import pytest

from repro.explore.exhaustive import exhaustive_explore
from repro.explore.heuristic import iterative_heuristic_explore
from repro.explore.space import DesignSpace
from repro.trace.synthetic import loop_nest_trace, random_trace, zipf_trace

SPACE = DesignSpace(min_depth=2, max_depth=32, max_associativity=8)


class TestHeuristic:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("budget", [0, 4, 15])
    def test_agrees_with_exhaustive(self, seed, budget):
        trace = random_trace(200, 35, seed=seed)
        heuristic = iterative_heuristic_explore(trace, budget, SPACE)
        exhaustive = exhaustive_explore(trace, budget, SPACE)
        assert heuristic.result.as_dict() == exhaustive.result.as_dict()

    def test_uses_fewer_simulations_than_exhaustive(self):
        trace = zipf_trace(300, 50, seed=3)
        heuristic = iterative_heuristic_explore(trace, 5, SPACE)
        assert heuristic.simulations < len(SPACE)

    def test_probe_log_matches_simulation_count(self):
        trace = loop_nest_trace(12, 6)
        outcome = iterative_heuristic_explore(trace, 0, SPACE)
        assert len(outcome.probes) == outcome.simulations

    def test_probes_respect_space_bounds(self):
        trace = random_trace(150, 25, seed=5)
        outcome = iterative_heuristic_explore(trace, 0, SPACE)
        for depth, assoc, _ in outcome.probes:
            assert depth in SPACE.depths
            assert 1 <= assoc <= SPACE.max_associativity

    def test_unreachable_budget_omits_depth(self):
        trace = loop_nest_trace(40, 5)
        small = DesignSpace(min_depth=2, max_depth=4, max_associativity=2)
        outcome = iterative_heuristic_explore(trace, 0, small)
        assert outcome.result.instances == []

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            iterative_heuristic_explore(loop_nest_trace(4, 2), -1, SPACE)

    def test_achieved_misses_within_budget(self):
        trace = zipf_trace(250, 45, seed=7)
        outcome = iterative_heuristic_explore(trace, 10, SPACE)
        assert all(m <= 10 for m in outcome.result.misses)
