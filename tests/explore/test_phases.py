"""Unit tests for phase-based exploration."""

import pytest

from repro.core.explorer import AnalyticalCacheExplorer
from repro.explore.phases import explore_phases
from repro.trace.synthetic import loop_nest_trace, zipf_trace
from repro.trace.trace import Trace


def _two_phase_trace():
    """Phase 0 loops over 8 addresses, phase 1 over 32 different ones."""
    a = loop_nest_trace(8, 20)
    b = loop_nest_trace(32, 10, start=64)
    return a.concat(b, name="two-phase")


class TestPhaseSplitting:
    def test_phases_cover_the_trace(self):
        trace = zipf_trace(400, 60, seed=0)
        outcome = explore_phases(trace, budget=5, phase_count=4)
        assert outcome.phases[0].start == 0
        assert outcome.phases[-1].end == len(trace)
        for prev, nxt in zip(outcome.phases, outcome.phases[1:]):
            assert prev.end == nxt.start

    def test_explicit_boundaries(self):
        trace = _two_phase_trace()
        outcome = explore_phases(trace, budget=0, boundaries=[160])
        assert len(outcome.phases) == 2
        assert outcome.phases[0].length == 160

    def test_bad_boundaries_rejected(self):
        trace = zipf_trace(100, 20, seed=1)
        with pytest.raises(ValueError, match="ascending"):
            explore_phases(trace, 0, boundaries=[50, 30])
        with pytest.raises(ValueError, match="inside"):
            explore_phases(trace, 0, boundaries=[0])

    def test_bad_phase_count(self):
        with pytest.raises(ValueError):
            explore_phases(Trace([1, 2]), 0, phase_count=0)

    def test_negative_budget(self):
        with pytest.raises(ValueError):
            explore_phases(Trace([1, 2]), -1)


class TestReconfigurationBenefit:
    def test_distinct_phases_show_benefit(self):
        trace = _two_phase_trace()
        outcome = explore_phases(trace, budget=0, boundaries=[160])
        # Static: loop footprints collide across phases at shallow depths;
        # per-phase: phase 0 needs little at depth 8 (footprint 8 fits).
        per_phase = outcome.phase_instances(8)
        static = outcome.static_result.associativity_for(8)
        assert static is not None and all(a is not None for a in per_phase)
        assert max(per_phase) <= static
        benefit = outcome.reconfiguration_benefit(8)
        assert benefit is not None and benefit >= 0

    def test_benefit_zero_for_homogeneous_trace(self):
        trace = loop_nest_trace(16, 40)
        outcome = explore_phases(trace, budget=0, phase_count=4)
        benefit = outcome.reconfiguration_benefit(16)
        assert benefit == 0

    def test_unreported_depth_returns_none(self):
        trace = loop_nest_trace(8, 10)
        outcome = explore_phases(trace, budget=0, phase_count=2)
        assert outcome.reconfiguration_benefit(1 << 20) is None


class TestPhaseResults:
    def test_phase_results_match_standalone_windows(self):
        trace = zipf_trace(300, 50, seed=2)
        outcome = explore_phases(trace, budget=3, phase_count=3)
        for phase in outcome.phases:
            window = trace[phase.start : phase.end]
            solo = AnalyticalCacheExplorer(
                window, max_depth=max(i.depth for i in phase.result.instances)
            ).explore(3)
            assert phase.result.as_dict() == solo.as_dict()

    def test_budgets_met_per_phase(self):
        trace = zipf_trace(400, 80, seed=3)
        outcome = explore_phases(trace, budget=4, phase_count=4)
        for phase in outcome.phases:
            assert all(m <= 4 for m in phase.result.misses)
