"""Unit tests for DesignSpace."""

import pytest

from repro.cache.config import ReplacementKind
from repro.explore.space import DesignSpace


class TestValidation:
    def test_depth_bounds_must_be_powers_of_two(self):
        with pytest.raises(ValueError):
            DesignSpace(min_depth=3)
        with pytest.raises(ValueError):
            DesignSpace(max_depth=48)

    def test_min_not_above_max(self):
        with pytest.raises(ValueError):
            DesignSpace(min_depth=64, max_depth=32)

    def test_associativity_positive(self):
        with pytest.raises(ValueError):
            DesignSpace(max_associativity=0)


class TestEnumeration:
    def test_depths_double(self):
        space = DesignSpace(min_depth=2, max_depth=16, max_associativity=2)
        assert space.depths == [2, 4, 8, 16]

    def test_associativities(self):
        assert DesignSpace(max_associativity=3).associativities == [1, 2, 3]

    def test_len_and_iteration_agree(self):
        space = DesignSpace(min_depth=2, max_depth=8, max_associativity=4)
        configs = list(space)
        assert len(configs) == len(space) == 12

    def test_configs_carry_replacement(self):
        space = DesignSpace(
            min_depth=2,
            max_depth=2,
            max_associativity=1,
            replacement=ReplacementKind.FIFO,
        )
        assert next(iter(space)).replacement is ReplacementKind.FIFO

    def test_single_point_space(self):
        space = DesignSpace(min_depth=4, max_depth=4, max_associativity=1)
        assert len(space) == 1


class TestForTraceBits:
    def test_covers_up_to_half_the_address_space(self):
        space = DesignSpace.for_trace_bits(10)
        assert space.max_depth == 512

    def test_tiny_traces_still_valid(self):
        assert DesignSpace.for_trace_bits(1).max_depth == 2
