"""Unit tests for Pareto filtering."""

import pytest

from repro.core.explorer import AnalyticalCacheExplorer
from repro.core.instance import CacheInstance, ExplorationResult
from repro.explore.pareto import pareto_filter, pareto_instances
from repro.trace.synthetic import zipf_trace


class TestParetoFilter:
    def test_dominated_point_removed(self):
        items = [("a", (1, 1)), ("b", (2, 2))]
        kept = pareto_filter(items, lambda item: item[1])
        assert [k[0] for k in kept] == ["a"]

    def test_incomparable_points_kept(self):
        items = [("a", (1, 3)), ("b", (3, 1))]
        kept = pareto_filter(items, lambda item: item[1])
        assert len(kept) == 2

    def test_duplicates_keep_first(self):
        items = [("a", (1, 1)), ("b", (1, 1))]
        kept = pareto_filter(items, lambda item: item[1])
        assert [k[0] for k in kept] == ["a"]

    def test_empty_input(self):
        assert pareto_filter([], lambda item: item) == []

    def test_single_metric(self):
        items = [3, 1, 2]
        assert pareto_filter(items, lambda v: (v,)) == [1]


class TestParetoInstances:
    def test_requires_miss_counts(self):
        result = ExplorationResult(
            budget=0, instances=[CacheInstance(2, 1)]
        )
        with pytest.raises(ValueError, match="miss counts"):
            pareto_instances(result)

    def test_kept_instances_are_non_dominated(self):
        trace = zipf_trace(400, 60, seed=0)
        result = AnalyticalCacheExplorer(trace).explore(10)
        kept = pareto_instances(result)
        assert kept  # never empty for a non-empty result
        pairs = {
            inst.depth: (inst.size_words, misses)
            for inst, misses in zip(result.instances, result.misses)
        }
        kept_metrics = [pairs[inst.depth] for inst in kept]
        for size, misses in kept_metrics:
            dominated = any(
                (o_size <= size and o_misses <= misses)
                and (o_size < size or o_misses < misses)
                for o_size, o_misses in pairs.values()
            )
            assert not dominated
