"""Unit tests for replacement-policy robustness analysis."""

import pytest

from repro.cache.config import ReplacementKind
from repro.core.explorer import AnalyticalCacheExplorer
from repro.core.instance import CacheInstance, ExplorationResult
from repro.explore.policies import (
    DEFAULT_POLICIES,
    policy_robustness,
)
from repro.trace.synthetic import random_trace, zipf_trace
from repro.trace.trace import Trace


class TestPolicyRobustness:
    def test_records_cover_every_instance(self):
        trace = zipf_trace(400, 60, seed=0)
        result = AnalyticalCacheExplorer(trace).explore(10)
        records = policy_robustness(trace, result)
        assert len(records) == len(result.instances)
        for record in records:
            assert set(record.outcomes) == set(DEFAULT_POLICIES)

    def test_plru_skipped_for_non_power_of_two_ways(self):
        trace = random_trace(200, 30, seed=1)
        result = ExplorationResult(
            budget=10**9,
            instances=[CacheInstance(depth=2, associativity=3)],
            misses=[0],
        )
        records = policy_robustness(trace, result)
        outcome = records[0].outcomes[ReplacementKind.PLRU]
        assert not outcome.applicable
        assert records[0].within_budget(ReplacementKind.PLRU) is None

    def test_within_budget_reflects_simulation(self):
        trace = zipf_trace(500, 80, seed=2)
        result = AnalyticalCacheExplorer(trace).explore(5)
        for record in policy_robustness(trace, result):
            for policy, outcome in record.outcomes.items():
                if outcome.applicable:
                    assert record.within_budget(policy) == (
                        outcome.non_cold_misses <= 5
                    )

    def test_worst_misses_at_least_lru(self):
        trace = zipf_trace(300, 50, seed=3)
        result = AnalyticalCacheExplorer(trace).explore(8)
        for record in policy_robustness(trace, result):
            assert record.worst_misses() >= record.lru_misses

    def test_fifo_thrash_pattern_breaks_lru_instance(self):
        """A crafted pattern where LRU meets K=1 but FIFO does not."""
        # Set 0 of a depth-1, 2-way cache; LRU keeps hot 0 alive, FIFO
        # ages it out (same pattern as the simulator unit test).
        trace = Trace([0, 2, 0, 4, 0, 6, 0, 8, 0])
        result = ExplorationResult(
            budget=1,
            instances=[CacheInstance(depth=1, associativity=2)],
            misses=[0],
        )
        records = policy_robustness(
            trace, result, policies=[ReplacementKind.FIFO]
        )
        outcome = records[0].outcomes[ReplacementKind.FIFO]
        assert outcome.non_cold_misses > 1
        assert not records[0].robust

    def test_direct_mapped_instances_are_policy_invariant(self):
        """With A=1 there is nothing for the policy to decide."""
        trace = random_trace(300, 40, seed=4)
        explorer = AnalyticalCacheExplorer(trace)
        result = explorer.explore(explorer.statistics.max_misses)  # all A=1
        for record in policy_robustness(trace, result):
            if record.instance.associativity == 1:
                for outcome in record.outcomes.values():
                    if outcome.applicable:
                        assert outcome.non_cold_misses == record.lru_misses

    def test_requires_miss_counts(self):
        trace = Trace([0, 1])
        bare = ExplorationResult(budget=0, instances=[CacheInstance(2, 1)])
        with pytest.raises(ValueError, match="miss counts"):
            policy_robustness(trace, bare)
