"""Unit tests for miss streams and two-level hierarchy exploration."""

import pytest

from repro.cache.config import CacheConfig
from repro.cache.simulator import miss_stream, simulate_trace
from repro.core.instance import CacheInstance
from repro.explore.hierarchy import (
    HierarchyExplorer,
    explore_hierarchy,
    split_cache_misses,
)
from repro.trace.reference import AccessKind
from repro.trace.synthetic import loop_nest_trace, random_trace, zipf_trace
from repro.trace.trace import Trace


class TestMissStream:
    def test_length_equals_all_misses(self):
        trace = zipf_trace(400, 80, seed=0)
        config = CacheConfig(depth=8, associativity=1)
        stream, result = miss_stream(trace, config)
        assert len(stream) == result.misses

    def test_stream_preserves_order_of_first_misses(self):
        trace = Trace([0, 2, 0, 2])  # depth-2 DM thrash on set 0
        stream, _ = miss_stream(trace, CacheConfig(depth=2, associativity=1))
        assert list(stream) == [0, 2, 0, 2]

    def test_hits_are_excluded(self):
        trace = Trace([5, 5, 5])
        stream, result = miss_stream(trace, CacheConfig(depth=2, associativity=1))
        assert list(stream) == [5]
        assert result.hits == 2

    def test_line_granularity(self):
        trace = Trace([0, 1, 2, 3, 8])
        config = CacheConfig(depth=2, associativity=1, line_words=4)
        stream, _ = miss_stream(trace, config)
        # words 0-3 share line 0; 8 is line 2.
        assert list(stream) == [0, 2]

    def test_kinds_preserved(self):
        trace = Trace([0, 4], kinds=[AccessKind.WRITE, AccessKind.READ])
        stream, _ = miss_stream(trace, CacheConfig(depth=2, associativity=1))
        assert stream.kind(0) is AccessKind.WRITE

    def test_perfect_l1_produces_cold_only_stream(self):
        trace = loop_nest_trace(8, 20)
        stream, _ = miss_stream(trace, CacheConfig(depth=8, associativity=1))
        assert len(stream) == 8  # footprint fits: only cold misses remain

    def test_name_tagged(self):
        trace = loop_nest_trace(4, 2)
        trace.name = "demo"
        stream, _ = miss_stream(trace, CacheConfig(depth=2, associativity=1))
        assert stream.name == "demo/missL1"


class TestHierarchyExplorer:
    def test_l2_analytical_equals_l2_simulation(self):
        """Replaying the miss stream through a simulated L2 must match."""
        trace = zipf_trace(600, 120, seed=1)
        l1 = CacheConfig(depth=4, associativity=1)
        explorer = HierarchyExplorer(trace, l1)
        for depth in (2, 8, 32):
            for assoc in (1, 2):
                analytical = explorer.l2_misses(depth, assoc)
                simulated = simulate_trace(
                    explorer.miss_trace,
                    CacheConfig(depth=depth, associativity=assoc),
                ).non_cold_misses
                assert analytical == simulated

    def test_l1_simulated_once_and_cached(self):
        trace = random_trace(200, 40, seed=2)
        explorer = HierarchyExplorer(trace, CacheConfig(depth=2, associativity=1))
        assert explorer.miss_trace is explorer.miss_trace
        assert explorer.l1_result.accesses == len(trace)

    def test_explore_meets_budget(self):
        trace = zipf_trace(500, 90, seed=3)
        result = explore_hierarchy(
            trace, CacheConfig(depth=4, associativity=2), budget=5
        )
        assert all(m <= 5 for m in result.l2_result.misses)

    def test_memory_accesses_accounting(self):
        trace = zipf_trace(500, 90, seed=4)
        outcome = explore_hierarchy(
            trace, CacheConfig(depth=4, associativity=1), budget=3
        )
        instance = outcome.l2_result.instances[0]
        memory = outcome.memory_accesses(instance)
        cold = outcome.miss_trace.unique_count()
        assert cold <= memory <= cold + 3

    def test_memory_accesses_rejects_foreign_instance(self):
        trace = loop_nest_trace(16, 4)
        outcome = explore_hierarchy(
            trace, CacheConfig(depth=2, associativity=1), budget=0
        )
        with pytest.raises(ValueError):
            outcome.memory_accesses(CacheInstance(depth=1 << 20, associativity=1))

    def test_bigger_l1_shrinks_l2_problem(self):
        trace = zipf_trace(800, 150, seed=5)
        small = HierarchyExplorer(trace, CacheConfig(depth=2, associativity=1))
        large = HierarchyExplorer(trace, CacheConfig(depth=32, associativity=2))
        assert len(large.miss_trace) < len(small.miss_trace)


class TestSplitCaches:
    def test_split_misses_are_additive(self):
        inst = loop_nest_trace(12, 10)
        data = zipf_trace(300, 40, seed=6)
        from repro.core.explorer import AnalyticalCacheExplorer

        total = split_cache_misses(inst, data, depth=8, associativity=2)
        expected = (
            AnalyticalCacheExplorer(inst).misses(8, 2)
            + AnalyticalCacheExplorer(data).misses(8, 2)
        )
        assert total == expected
