"""Unit tests for the three-way method comparison."""

from repro.explore.compare import compare_methods
from repro.explore.space import DesignSpace
from repro.trace.synthetic import random_trace, zipf_trace

SPACE = DesignSpace(min_depth=2, max_depth=32, max_associativity=8)


class TestCompareMethods:
    def test_all_methods_agree(self):
        trace = zipf_trace(300, 40, seed=0)
        comparison = compare_methods(trace, budget=5, space=SPACE)
        assert comparison.agreement()
        assert comparison.disagreements() == []

    def test_costs_are_recorded(self):
        trace = random_trace(200, 25, seed=1)
        comparison = compare_methods(trace, budget=3, space=SPACE)
        assert comparison.analytical_seconds > 0
        assert comparison.exhaustive.elapsed_seconds > 0
        assert comparison.heuristic.elapsed_seconds > 0
        assert comparison.speedup_vs_exhaustive > 0
        assert comparison.speedup_vs_heuristic > 0

    def test_default_space_derived_from_trace(self):
        trace = random_trace(150, 20, seed=2)
        comparison = compare_methods(trace, budget=2)
        assert comparison.agreement()

    def test_heuristic_cheaper_than_exhaustive(self):
        trace = zipf_trace(250, 35, seed=3)
        comparison = compare_methods(trace, budget=4, space=SPACE)
        assert (
            comparison.heuristic.simulations
            < comparison.exhaustive.simulations
        )

    def test_disagreements_detected_when_forced(self):
        """Tampering with the analytical answer must surface a disagreement."""
        trace = zipf_trace(250, 35, seed=4)
        comparison = compare_methods(trace, budget=4, space=SPACE)
        from repro.core.instance import CacheInstance

        tampered = [
            CacheInstance(inst.depth, inst.associativity + 1)
            for inst in comparison.analytical.instances
        ]
        comparison.analytical.instances = tampered
        assert not comparison.agreement()
        assert comparison.disagreements()
