"""Unit tests for the exhaustive simulation DSE baseline."""

import pytest

from repro.core.explorer import AnalyticalCacheExplorer
from repro.explore.exhaustive import exhaustive_explore
from repro.explore.space import DesignSpace
from repro.trace.synthetic import loop_nest_trace, random_trace, zipf_trace


SPACE = DesignSpace(min_depth=2, max_depth=32, max_associativity=6)


class TestExhaustive:
    def test_simulates_every_point(self):
        trace = random_trace(150, 30, seed=0)
        outcome = exhaustive_explore(trace, budget=3, space=SPACE)
        assert outcome.simulations == len(SPACE)
        assert len(outcome.grid) == len(SPACE)

    def test_agrees_with_analytical(self):
        trace = zipf_trace(300, 40, seed=1)
        outcome = exhaustive_explore(trace, budget=5, space=SPACE)
        analytical = AnalyticalCacheExplorer(trace, max_depth=32).explore(5)
        analytical_map = analytical.as_dict()
        for inst in outcome.result:
            assert analytical_map[inst.depth] == inst.associativity

    def test_grid_is_queryable(self):
        trace = loop_nest_trace(8, 5)
        outcome = exhaustive_explore(trace, budget=0, space=SPACE)
        assert outcome.misses(8, 1) == 0
        assert outcome.misses(4, 1) > 0

    def test_depths_exceeding_space_are_omitted(self):
        # A trace needing more ways than the space offers at small depths.
        trace = loop_nest_trace(40, 5)  # footprint 40 > 32 sets * 1 way
        small = DesignSpace(min_depth=2, max_depth=4, max_associativity=2)
        outcome = exhaustive_explore(trace, budget=0, space=small)
        assert outcome.result.instances == []

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            exhaustive_explore(loop_nest_trace(4, 2), budget=-1, space=SPACE)

    def test_elapsed_time_recorded(self):
        outcome = exhaustive_explore(loop_nest_trace(4, 2), budget=0, space=SPACE)
        assert outcome.elapsed_seconds > 0
