"""Unit tests for cost-aware instance selection."""

import pytest

from repro.core.explorer import AnalyticalCacheExplorer
from repro.core.linesize import LineSizeExplorer
from repro.core.instance import CacheInstance, ExplorationResult
from repro.explore.selection import (
    cheapest,
    cost_exploration,
    cost_line_sweep,
    cost_pareto,
)
from repro.trace.synthetic import loop_nest_trace, zipf_trace
from repro.trace.trace import Trace


@pytest.fixture
def costed():
    trace = zipf_trace(500, 80, seed=0)
    explorer = AnalyticalCacheExplorer(trace)
    result = explorer.explore(10)
    return cost_exploration(explorer, result)


class TestCostExploration:
    def test_one_record_per_instance(self, costed):
        depths = [c.instance.depth for c in costed]
        assert depths == sorted(set(depths))

    def test_line_words_default_one(self, costed):
        assert all(c.line_words == 1 for c in costed)

    def test_run_energy_includes_cold_refills(self):
        trace = loop_nest_trace(8, 10)
        explorer = AnalyticalCacheExplorer(trace)
        result = explorer.explore(0)
        costed = cost_exploration(explorer, result)
        # Zero non-cold misses, but 8 cold fills still cost energy.
        zero_miss = next(c for c in costed if c.non_cold_misses == 0)
        pure_access = zero_miss.estimate.total_energy(len(trace), 0)
        assert zero_miss.run_energy > pure_access

    def test_requires_miss_counts(self):
        trace = Trace([0, 1])
        explorer = AnalyticalCacheExplorer(trace)
        bare = ExplorationResult(budget=0, instances=[CacheInstance(2, 1)])
        with pytest.raises(ValueError, match="miss counts"):
            cost_exploration(explorer, bare)


class TestCostLineSweep:
    def test_covers_all_points(self):
        trace = zipf_trace(400, 60, seed=1)
        sweep = LineSizeExplorer(trace).explore(5)
        costed = cost_line_sweep(sweep, accesses=len(trace))
        assert len(costed) == len(sweep.instances)
        assert {c.line_words for c in costed} == set(sweep.line_sizes())

    def test_negative_accesses_rejected(self):
        trace = loop_nest_trace(4, 3)
        sweep = LineSizeExplorer(trace).explore(0)
        with pytest.raises(ValueError):
            cost_line_sweep(sweep, accesses=-1)


class TestSelection:
    def test_cheapest_minimizes_default_key(self, costed):
        best = cheapest(costed)
        assert all(best.run_energy <= c.run_energy for c in costed)

    def test_cheapest_custom_key(self, costed):
        smallest = cheapest(costed, key=lambda c: c.estimate.area_bits)
        assert all(
            smallest.estimate.area_bits <= c.estimate.area_bits for c in costed
        )

    def test_cheapest_rejects_empty(self):
        with pytest.raises(ValueError):
            cheapest([])

    def test_pareto_front_is_nonempty_subset(self, costed):
        front = cost_pareto(costed)
        assert front
        assert all(c in costed for c in front)

    def test_pareto_front_contains_cheapest_by_each_axis(self, costed):
        front = cost_pareto(costed)
        for key in (
            lambda c: c.estimate.area_bits,
            lambda c: c.run_energy,
            lambda c: c.estimate.access_time,
        ):
            assert cheapest(costed, key=key) in front
