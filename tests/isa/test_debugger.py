"""Unit tests for the step/resume debugger API."""

import pytest

from repro.isa.assembler import assemble
from repro.isa.errors import MachineError
from repro.isa.machine import Machine, MachineState


@pytest.fixture
def machine():
    return Machine(
        assemble("li r1, 1\nli r2, 2\nadd r3, r1, r2\nhalt")
    )


class TestStep:
    def test_single_step_pauses(self, machine):
        assert machine.step() is MachineState.PAUSED
        assert machine.instructions_executed == 1
        assert machine.register(1) == 1
        assert machine.register(2) == 0  # not yet executed

    def test_stepping_to_completion(self, machine):
        states = [machine.step() for _ in range(4)]
        assert states[:3] == [MachineState.PAUSED] * 3
        assert states[3] is MachineState.HALTED
        assert machine.register(3) == 3

    def test_multi_instruction_step(self, machine):
        machine.step(2)
        assert machine.instructions_executed == 2
        assert machine.register(2) == 2

    def test_resume_with_run(self, machine):
        machine.step()
        assert machine.run() is MachineState.HALTED
        assert machine.register(3) == 3

    def test_pc_tracks_progress(self, machine):
        machine.step()
        assert machine.pc == 1
        machine.step()
        assert machine.pc == 2

    def test_traces_accumulate_across_steps(self, machine):
        machine.step(2)
        machine.run()
        assert list(machine.instruction_trace()) == [0, 1, 2, 3]

    def test_step_count_validation(self, machine):
        with pytest.raises(ValueError):
            machine.step(0)

    def test_step_beyond_halt_is_error(self, machine):
        machine.run()
        with pytest.raises(MachineError, match="already halted"):
            machine.step()

    def test_max_instructions_validation(self, machine):
        with pytest.raises(ValueError):
            machine.run(max_instructions=0)


class TestDumpRegisters:
    def test_contains_all_registers_and_pc(self, machine):
        machine.step()
        dump = machine.dump_registers()
        assert "r1 =0x00000001" in dump
        assert "r15" in dump
        assert "state=paused" in dump

    def test_cycle_limit_still_enforced_when_stepping(self):
        machine = Machine(assemble("loop: j loop\nhalt"), cycle_limit=10)
        from repro.isa.errors import CycleLimitExceeded

        with pytest.raises(CycleLimitExceeded):
            machine.run(max_instructions=50)
