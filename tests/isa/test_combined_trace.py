"""Unit tests for the merged (unified-cache) trace view."""

from repro.isa.assembler import assemble
from repro.isa.machine import run_program
from repro.trace.reference import AccessKind


def run(source):
    return run_program(assemble(source, name="demo"))


class TestCombinedTrace:
    def test_merges_in_program_order(self):
        m = run(
            ".data\nv: .word 7\n.text\nlw r1, v\nsw r1, v\nhalt"
        )
        combined = m.combined_trace()
        kinds = [combined.kind(i) for i in range(len(combined))]
        assert kinds == [
            AccessKind.FETCH,   # lw fetch
            AccessKind.READ,    # lw data
            AccessKind.FETCH,   # sw fetch
            AccessKind.WRITE,   # sw data
            AccessKind.FETCH,   # halt fetch
        ]

    def test_data_access_follows_its_fetch(self):
        m = run(".data\nv: .word 1\n.text\nlw r1, v\nhalt")
        combined = m.combined_trace()
        assert combined[0] == 0  # fetch of the lw
        assert combined[1] == m.program.symbol("v")

    def test_filtered_views_partition_the_merge(self):
        m = run(
            ".data\narr: .word 1,2,3\n.text\n"
            "li r1, 0\nlw r2, arr(r1)\nlw r3, arr+1\nsw r2, arr+2\nhalt"
        )
        combined = m.combined_trace()
        inst = m.instruction_trace()
        data = m.data_trace()
        assert len(combined) == len(inst) + len(data)
        fetches = combined.filter_kind(AccessKind.FETCH)
        assert list(fetches) == list(inst)
        rest = combined.filter_kind(AccessKind.READ, AccessKind.WRITE)
        assert list(rest) == list(data)

    def test_code_and_data_regions_disjoint(self):
        m = run(".data\nv: .word 0\n.text\nsw r0, v\nhalt")
        combined = m.combined_trace()
        code_words = m.program.code_words
        for i, addr in enumerate(combined):
            if combined.kind(i) is AccessKind.FETCH:
                assert addr < code_words
            else:
                assert addr >= m.program.data_base

    def test_name(self):
        m = run("halt")
        assert m.combined_trace().name == "demo.unified"

    def test_unified_trace_usable_by_explorer(self):
        from repro.core.explorer import AnalyticalCacheExplorer

        m = run(
            ".data\narr: .word 1,2,3,4\n.text\n"
            "li r1, 0\nli r3, 4\n"
            "loop: lw r2, arr(r1)\ninc r1\nblt r1, r3, loop\nhalt"
        )
        result = AnalyticalCacheExplorer(m.combined_trace()).explore(0)
        assert len(result) > 0
