"""Unit tests for Program metadata helpers."""

import pytest

from repro.isa.assembler import assemble


class TestSymbols:
    def test_symbol_lookup(self):
        program = assemble(".data\nv: .word 1\n.text\nmain: halt")
        assert program.symbol("v") == program.data_base
        assert program.symbol("main") == program.code_base

    def test_unknown_symbol_suggests_candidates(self):
        program = assemble(".data\nvalue: .word 1\n.text\nhalt")
        with pytest.raises(KeyError, match="value"):
            program.symbol("val")

    def test_unknown_symbol_without_candidates(self):
        program = assemble("halt")
        with pytest.raises(KeyError, match="unknown symbol"):
            program.symbol("xyz")


class TestSegments:
    def test_code_words(self):
        assert assemble("nop\nnop\nhalt").code_words == 3

    def test_data_words_spans_to_highest_word(self):
        program = assemble(".data\n.space 10\nv: .word 5\n.text\nhalt")
        assert program.data_words == 11

    def test_data_words_zero_without_data(self):
        assert assemble("halt").data_words == 0


class TestDisassembly:
    def test_lists_labels_and_instructions(self):
        program = assemble("main: li r1, 5\nloop: j loop\nhalt")
        text = program.disassemble()
        assert "main:" in text
        assert "loop:" in text
        assert "li r1, 5" in text
        assert "halt" in text

    def test_addresses_are_sequential(self):
        program = assemble("nop\nnop\nhalt")
        lines = [l for l in program.disassemble().splitlines() if "0x" in l]
        assert len(lines) == 3
