"""Unit tests for the virtual machine."""

import pytest

from repro.isa.assembler import assemble
from repro.isa.errors import CycleLimitExceeded, MachineFault
from repro.isa.machine import Machine, MachineState, run_program
from repro.trace.reference import AccessKind


def run(source, **kwargs):
    return run_program(assemble(source), **kwargs)


class TestALU:
    def test_add_sub(self):
        m = run("li r1, 7\nli r2, 5\nadd r3, r1, r2\nsub r4, r1, r2\nhalt")
        assert m.register(3) == 12
        assert m.register(4) == 2

    def test_sub_wraps_to_twos_complement(self):
        m = run("li r1, 3\nli r2, 5\nsub r3, r1, r2\nhalt")
        assert m.register(3) == 0xFFFFFFFE

    def test_logic_ops(self):
        m = run(
            "li r1, 0b1100\nli r2, 0b1010\n"
            "and r3, r1, r2\nor r4, r1, r2\nxor r5, r1, r2\nnor r6, r1, r2\nhalt"
        )
        assert m.register(3) == 0b1000
        assert m.register(4) == 0b1110
        assert m.register(5) == 0b0110
        assert m.register(6) == 0xFFFFFFF1

    def test_shifts_register_and_immediate(self):
        m = run(
            "li r1, 0x80000000\nli r2, 4\n"
            "srl r3, r1, r2\nsra r4, r1, r2\n"
            "slli r5, r2, 3\nsrli r6, r1, 31\nsrai r7, r1, 31\nhalt"
        )
        assert m.register(3) == 0x08000000
        assert m.register(4) == 0xF8000000
        assert m.register(5) == 32
        assert m.register(6) == 1
        assert m.register(7) == 0xFFFFFFFF

    def test_shift_amount_masked_to_five_bits(self):
        m = run("li r1, 1\nli r2, 33\nsll r3, r1, r2\nhalt")
        assert m.register(3) == 2

    def test_set_less_than_signed_vs_unsigned(self):
        m = run(
            "li r1, -1\nli r2, 1\n"
            "slt r3, r1, r2\nsltu r4, r1, r2\nslti r5, r1, 0\nhalt"
        )
        assert m.register(3) == 1   # -1 < 1 signed
        assert m.register(4) == 0   # 0xFFFFFFFF > 1 unsigned
        assert m.register(5) == 1

    def test_mul_wraps(self):
        m = run("li r1, 0x10000\nmul r2, r1, r1\nhalt")
        assert m.register(2) == 0

    def test_div_truncates_toward_zero(self):
        m = run(
            "li r1, -7\nli r2, 2\ndiv r3, r1, r2\n"
            "li r4, 7\nli r5, -2\ndiv r6, r4, r5\nhalt"
        )
        assert m.register(3) == 0xFFFFFFFD  # -3, not -4
        assert m.register(6) == 0xFFFFFFFD

    def test_rem_sign_follows_dividend(self):
        m = run(
            "li r1, -7\nli r2, 2\nrem r3, r1, r2\n"
            "li r4, 7\nli r5, -2\nrem r6, r4, r5\nhalt"
        )
        assert m.register(3) == 0xFFFFFFFF  # -1
        assert m.register(6) == 1

    def test_immediate_logic(self):
        m = run("li r1, 0xF0\nandi r2, r1, 0x3C\nori r3, r1, 0x0F\nxori r4, r1, 0xFF\nhalt")
        assert m.register(2) == 0x30
        assert m.register(3) == 0xFF
        assert m.register(4) == 0x0F

    def test_r0_ignores_writes(self):
        m = run("li r0, 99\naddi r0, r0, 1\nadd r1, r0, r0\nhalt")
        assert m.register(0) == 0
        assert m.register(1) == 0


class TestControlFlow:
    def test_branch_taken_and_not_taken(self):
        m = run(
            """
            li r1, 3
            li r2, 3
            beq r1, r2, equal
            li r3, 111
            j end
    equal:  li r3, 222
    end:    halt
            """
        )
        assert m.register(3) == 222

    def test_signed_branches(self):
        m = run(
            """
            li r1, -5
            li r2, 5
            blt r1, r2, yes
            li r3, 0
            j end
    yes:    li r3, 1
    end:    halt
            """
        )
        assert m.register(3) == 1

    def test_unsigned_branches(self):
        m = run(
            """
            li r1, -5          ; 0xFFFFFFFB unsigned: large
            li r2, 5
            bltu r1, r2, yes
            li r3, 0
            j end
    yes:    li r3, 1
    end:    halt
            """
        )
        assert m.register(3) == 0

    def test_loop_counts(self):
        m = run(
            """
            li r1, 0
            li r2, 10
    loop:   inc r1
            blt r1, r2, loop
            halt
            """
        )
        assert m.register(1) == 10

    def test_call_ret_linkage(self):
        m = run(
            """
            li r1, 1
            call fn
            li r3, 5        ; must execute after return
            halt
    fn:     li r2, 2
            ret
            """
        )
        assert (m.register(1), m.register(2), m.register(3)) == (1, 2, 5)

    def test_nested_calls_with_manual_save(self):
        m = run(
            """
            call outer
            halt
    outer:  mv r13, ra
            call inner
            mv ra, r13
            addi r1, r1, 100
            ret
    inner:  li r1, 5
            ret
            """
        )
        assert m.register(1) == 105


class TestMemory:
    def test_load_store_roundtrip(self):
        m = run(
            """
            .data
    v:      .word 0
            .text
            li r1, 1234
            sw r1, v
            lw r2, v
            halt
            """
        )
        assert m.register(2) == 1234
        assert m.read_symbol("v") == 1234

    def test_indexed_addressing(self):
        m = run(
            """
            .data
    arr:    .word 10, 20, 30
            .text
            li r1, 2
            lw r2, arr(r1)
            halt
            """
        )
        assert m.register(2) == 30

    def test_data_image_loaded(self):
        m = run(".data\nx: .word 0xDEAD\n.text\nhalt")
        assert m.read_symbol("x") == 0xDEAD

    def test_read_block(self):
        m = run(".data\narr: .word 1, 2, 3\n.text\nhalt")
        assert m.read_block("arr", 3) == [1, 2, 3]

    def test_stack_pointer_initialized_near_top(self):
        m = run("halt")
        assert m.register("sp") == len(m.memory) - 16


class TestTraces:
    def test_instruction_trace_records_every_fetch(self):
        m = run("nop\nnop\nhalt")
        assert list(m.instruction_trace()) == [0, 1, 2]
        assert m.instructions_executed == 3

    def test_data_trace_kinds(self):
        m = run(
            ".data\nv: .word 7\n.text\nlw r1, v\nsw r1, v\nhalt"
        )
        dtrace = m.data_trace()
        assert len(dtrace) == 2
        assert dtrace.kind(0) is AccessKind.READ
        assert dtrace.kind(1) is AccessKind.WRITE
        assert dtrace[0] == dtrace[1]

    def test_tracing_disabled(self):
        m = run("nop\nhalt", trace=False)
        assert len(m.instruction_trace()) == 0
        assert m.instructions_executed == 2

    def test_branch_fetches_follow_control_flow(self):
        m = run("j skip\nnop\nskip: halt")
        assert list(m.instruction_trace()) == [0, 2]

    def test_trace_names_follow_program_name(self):
        machine = Machine(assemble("halt", name="demo"))
        machine.run()
        assert machine.instruction_trace().name == "demo.inst"
        assert machine.data_trace().name == "demo.data"


class TestFaults:
    def test_division_by_zero_faults(self):
        with pytest.raises(MachineFault, match="division by zero"):
            run("li r1, 1\nli r2, 0\ndiv r3, r1, r2\nhalt")

    def test_remainder_by_zero_faults(self):
        with pytest.raises(MachineFault, match="remainder by zero"):
            run("li r1, 1\nli r2, 0\nrem r3, r1, r2\nhalt")

    def test_running_off_the_end_faults(self):
        with pytest.raises(MachineFault, match="program counter"):
            run("nop")

    def test_cycle_limit(self):
        with pytest.raises(CycleLimitExceeded):
            run("loop: j loop\nhalt", cycle_limit=100)

    def test_cycle_limit_must_be_positive(self):
        with pytest.raises(ValueError):
            Machine(assemble("halt"), cycle_limit=0)

    def test_state_after_successful_run(self):
        m = run("halt")
        assert m.state is MachineState.HALTED


class TestEntryPoint:
    def test_run_from_named_entry(self):
        program = assemble("other: li r1, 1\nhalt\nmain: li r1, 2\nhalt")
        machine = Machine(program)
        machine.run(entry="main")
        assert machine.register(1) == 2
