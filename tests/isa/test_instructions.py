"""Unit tests for ISA definitions."""

import pytest

from repro.isa.instructions import (
    Instruction,
    Opcode,
    REGISTER_ALIASES,
    SHAPES,
    to_signed,
    to_unsigned,
)


class TestRegisters:
    def test_sixteen_numbered_registers(self):
        for i in range(16):
            assert REGISTER_ALIASES[f"r{i}"] == i

    def test_conventional_aliases(self):
        assert REGISTER_ALIASES["zero"] == 0
        assert REGISTER_ALIASES["sp"] == 14
        assert REGISTER_ALIASES["ra"] == 15


class TestShapes:
    def test_every_opcode_has_a_shape(self):
        assert set(SHAPES) == set(Opcode)


class TestWordConversion:
    @pytest.mark.parametrize(
        "value,expected",
        [
            (0, 0),
            (1, 1),
            (0x7FFFFFFF, 0x7FFFFFFF),
            (0x80000000, -(1 << 31)),
            (0xFFFFFFFF, -1),
        ],
    )
    def test_to_signed(self, value, expected):
        assert to_signed(value) == expected

    def test_to_unsigned_masks(self):
        assert to_unsigned(-1) == 0xFFFFFFFF
        assert to_unsigned(1 << 35) == 0

    def test_roundtrip(self):
        for value in (-5, 0, 12345, -(1 << 31)):
            assert to_signed(to_unsigned(value)) == value


class TestInstructionStr:
    def test_r_type(self):
        assert str(Instruction(Opcode.ADD, 1, 2, 3)) == "add r1, r2, r3"

    def test_i_type(self):
        assert str(Instruction(Opcode.ADDI, 1, 2, -7)) == "addi r1, r2, -7"

    def test_li(self):
        assert str(Instruction(Opcode.LI, 4, 99)) == "li r4, 99"

    def test_mem(self):
        assert str(Instruction(Opcode.LW, 1, 16, 2)) == "lw r1, 16(r2)"

    def test_branch(self):
        assert str(Instruction(Opcode.BEQ, 1, 2, 7)) == "beq r1, r2, @7"

    def test_jump_and_halt(self):
        assert str(Instruction(Opcode.J, 3)) == "j @3"
        assert str(Instruction(Opcode.JR, 15)) == "jr r15"
        assert str(Instruction(Opcode.HALT)) == "halt"
