"""Unit tests for the two-pass assembler."""

import pytest

from repro.isa.assembler import Assembler, assemble
from repro.isa.errors import AssemblerError
from repro.isa.instructions import Opcode


class TestBasicAssembly:
    def test_single_instruction(self):
        program = assemble("halt")
        assert len(program.instructions) == 1
        assert program.instructions[0].op is Opcode.HALT

    def test_r_type_operands(self):
        program = assemble("add r1, r2, r3\nhalt")
        inst = program.instructions[0]
        assert (inst.op, inst.a, inst.b, inst.c) == (Opcode.ADD, 1, 2, 3)

    def test_register_aliases_accepted(self):
        program = assemble("add zero, sp, ra\nhalt")
        inst = program.instructions[0]
        assert (inst.a, inst.b, inst.c) == (0, 14, 15)

    def test_comments_both_styles(self):
        program = assemble("halt ; one\n# whole line\nhalt # two\n")
        assert len(program.instructions) == 2

    def test_immediates_in_many_bases(self):
        program = assemble("li r1, 0x10\nli r2, 0b101\nli r3, -9\nli r4, 'A'\nhalt")
        values = [program.instructions[i].b for i in range(4)]
        assert values == [16, 5, -9, 65]

    def test_source_lines_recorded(self):
        program = assemble("nop\n\nhalt")
        assert program.instructions[0].source_line == 1
        assert program.instructions[1].source_line == 3


class TestLabelsAndSections:
    def test_code_label_resolves_to_fetch_address(self):
        program = assemble("start: nop\nj start\nhalt")
        assert program.symbols["start"] == program.code_base
        assert program.instructions[1].a == 0  # instruction index

    def test_data_label_and_word_directive(self):
        program = assemble(
            """
            .data
            tab: .word 10, 20, 30
            .text
            halt
            """
        )
        base = program.data_base
        assert program.symbols["tab"] == base
        assert program.data == [(base, 10), (base + 1, 20), (base + 2, 30)]

    def test_space_directive_advances_cursor(self):
        program = assemble(
            """
            .data
            a: .space 5
            b: .word 1
            .text
            halt
            """
        )
        assert program.symbols["b"] == program.symbols["a"] + 5

    def test_label_on_its_own_line(self):
        program = assemble("here:\nnop\nj here\nhalt")
        assert program.instructions[1].a == 0

    def test_multiple_labels_same_statement(self):
        program = assemble("a: b: nop\nhalt")
        assert program.symbols["a"] == program.symbols["b"]

    def test_duplicate_label_rejected(self):
        with pytest.raises(AssemblerError, match="duplicate"):
            assemble("x: nop\nx: halt")

    def test_equ_constants(self):
        program = assemble(
            """
            .equ SIZE, 8
            .equ DOUBLE, SIZE+SIZE
            li r1, DOUBLE
            halt
            """
        )
        assert program.instructions[0].b == 16

    def test_word_outside_data_rejected(self):
        with pytest.raises(AssemblerError, match="outside .data"):
            assemble(".word 1")

    def test_instruction_in_data_rejected(self):
        with pytest.raises(AssemblerError, match="outside .text"):
            assemble(".data\nnop")

    def test_unknown_directive_rejected(self):
        with pytest.raises(AssemblerError, match="unknown directive"):
            assemble(".bogus 1")

    def test_align_pads_to_power_of_two_boundary(self):
        program = assemble(
            """
            .data
            a: .word 1
            .align 8
            b: .word 2
            .text
            halt
            """
        )
        assert program.symbols["b"] % 8 == 0
        assert program.symbols["b"] > program.symbols["a"]

    def test_align_is_noop_when_already_aligned(self):
        # data_base is itself aligned, so a leading .align adds no padding.
        program = assemble(
            ".data\n.align 4\nx: .word 1\n.text\nhalt"
        )
        assert program.symbols["x"] == program.data_base

    def test_align_rejects_non_power_of_two(self):
        with pytest.raises(AssemblerError, match="power of two"):
            assemble(".data\n.align 3\n.text\nhalt")

    def test_ascii_stores_one_char_per_word(self):
        program = assemble(
            '.data\nmsg: .ascii "Hi!"\n.text\nhalt'
        )
        base = program.symbols["msg"]
        assert program.data == [
            (base, ord("H")), (base + 1, ord("i")), (base + 2, ord("!")),
        ]

    def test_ascii_requires_quotes(self):
        with pytest.raises(AssemblerError, match="quoted"):
            assemble(".data\n.ascii hello\n.text\nhalt")

    def test_ascii_rejects_empty_string(self):
        with pytest.raises(AssemblerError, match="non-empty"):
            assemble('.data\n.ascii ""\n.text\nhalt')

    def test_word_values_may_reference_labels(self):
        program = assemble(
            """
            .data
            a: .word 0
            ptr: .word a
            .text
            halt
            """
        )
        assert program.data[1][1] == program.symbols["a"]


class TestExpressions:
    def test_label_arithmetic(self):
        program = assemble(
            """
            .data
            buf: .space 4
            .text
            lw r1, buf+2
            halt
            """
        )
        assert program.instructions[0].b == program.symbols["buf"] + 2

    def test_parenthesized_negation(self):
        program = assemble("subi r1, r2, 3\nhalt")
        inst = program.instructions[0]
        assert inst.op is Opcode.ADDI
        assert inst.c == -3

    def test_undefined_symbol_reports_line(self):
        with pytest.raises(AssemblerError, match="line 1.*undefined"):
            assemble("li r1, missing")

    def test_garbage_expression_rejected(self):
        with pytest.raises(AssemblerError, match="cannot parse"):
            assemble("li r1, 12abc")


class TestMemoryOperands:
    def test_offset_register_form(self):
        program = assemble("lw r1, 8(r2)\nhalt")
        inst = program.instructions[0]
        assert (inst.a, inst.b, inst.c) == (1, 8, 2)

    def test_bare_register_form(self):
        program = assemble("lw r1, (r2)\nhalt")
        assert program.instructions[0].b == 0

    def test_absolute_symbol_form_uses_r0_base(self):
        program = assemble(
            ".data\nv: .word 0\n.text\nsw r3, v\nhalt"
        )
        inst = program.instructions[0]
        assert inst.b == program.symbols["v"]
        assert inst.c == 0

    def test_symbol_plus_register(self):
        program = assemble(
            ".data\ntab: .space 4\n.text\nlw r1, tab(r5)\nhalt"
        )
        inst = program.instructions[0]
        assert (inst.b, inst.c) == (program.symbols["tab"], 5)


class TestPseudoInstructions:
    @pytest.mark.parametrize(
        "source,opcode,operands",
        [
            ("mv r1, r2", Opcode.ADD, (1, 2, 0)),
            ("nop", Opcode.ADD, (0, 0, 0)),
            ("neg r1, r2", Opcode.SUB, (1, 0, 2)),
            ("not r1, r2", Opcode.NOR, (1, 2, 0)),
            ("inc r3", Opcode.ADDI, (3, 3, 1)),
            ("dec r3", Opcode.ADDI, (3, 3, -1)),
        ],
    )
    def test_alu_pseudos(self, source, opcode, operands):
        inst = assemble(source + "\nhalt").instructions[0]
        assert inst.op is opcode
        assert (inst.a, inst.b, inst.c) == operands

    def test_branch_pseudos_swap_operands(self):
        program = assemble("x: bgt r1, r2, x\nble r3, r4, x\nhalt")
        bgt = program.instructions[0]
        assert bgt.op is Opcode.BLT and (bgt.a, bgt.b) == (2, 1)
        ble = program.instructions[1]
        assert ble.op is Opcode.BGE and (ble.a, ble.b) == (4, 3)

    def test_zero_compare_pseudos(self):
        program = assemble("x: beqz r1, x\nbnez r2, x\nbltz r3, x\nbgez r4, x\nhalt")
        ops = [i.op for i in program.instructions[:4]]
        assert ops == [Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE]
        assert all(i.b == 0 for i in program.instructions[:4])

    def test_call_and_ret(self):
        program = assemble("f: ret\ncall f\nhalt")
        assert program.instructions[0].op is Opcode.JR
        assert program.instructions[0].a == 15
        assert program.instructions[1].op is Opcode.JAL

    def test_wrong_operand_count_in_pseudo(self):
        with pytest.raises(AssemblerError, match="expects 2 operand"):
            assemble("mv r1")


class TestErrors:
    def test_unknown_instruction(self):
        with pytest.raises(AssemblerError, match="unknown instruction"):
            assemble("frobnicate r1")

    def test_unknown_register(self):
        with pytest.raises(AssemblerError, match="unknown register"):
            assemble("add r1, r2, r77")

    def test_wrong_operand_count(self):
        with pytest.raises(AssemblerError, match="expects 3 operand"):
            assemble("add r1, r2")

    def test_branch_below_code_base_rejected(self):
        assembler = Assembler(code_base=0x100)
        with pytest.raises(AssemblerError, match="below the code base"):
            assembler.assemble("j 0")

    def test_negative_space_rejected(self):
        with pytest.raises(AssemblerError, match=".space"):
            assemble(".data\n.space -1\n.text\nhalt")

    def test_bad_equ(self):
        with pytest.raises(AssemblerError, match=".equ needs"):
            assemble(".equ ONLYNAME")
