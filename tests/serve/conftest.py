"""Serve-battery fixtures: a real in-process daemon on an ephemeral port.

The harness runs :class:`repro.serve.server.ExploreServer` on its own
event loop in a background thread, bound to port 0, so every test talks
to the daemon exactly the way production clients do — real sockets,
real HTTP — while staying hermetic and parallel-safe.  Tests that need
controlled execution inject a custom ``execute`` into a thread-backed
:class:`~repro.serve.pool.WorkerPool` (slow functions to force requests
to overlap, counters to prove dedup, raisers to exercise the 500 path).
"""

from __future__ import annotations

import asyncio
import threading
from typing import Callable, Optional

import pytest

from repro.core.request import ExplorationRequest
from repro.serve import ExploreServer, ServeClient, WorkerPool
from repro.trace.trace import Trace


class RunningServer:
    """A live daemon plus the loop/thread that hosts it."""

    def __init__(self, server: ExploreServer, loop: asyncio.AbstractEventLoop, thread: threading.Thread) -> None:
        self.server = server
        self.loop = loop
        self.thread = thread
        self._stopped = False

    @property
    def port(self) -> int:
        return self.server.port

    def client(self, timeout: float = 30.0) -> ServeClient:
        return ServeClient("127.0.0.1", self.port, timeout=timeout)

    def stop(self, drain: bool = True, timeout: Optional[float] = 30.0) -> None:
        if self._stopped:
            return
        self._stopped = True
        future = asyncio.run_coroutine_threadsafe(
            self.server.shutdown(drain=drain, timeout=timeout), self.loop
        )
        future.result(timeout=60)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(timeout=30)
        self.loop.close()

    def begin_shutdown(self, drain: bool = True, timeout: Optional[float] = 30.0):
        """Kick off shutdown without waiting; returns the concurrent future."""
        self._stopped = True

        async def run() -> None:
            await self.server.shutdown(drain=drain, timeout=timeout)

        future = asyncio.run_coroutine_threadsafe(run(), self.loop)

        def finish() -> None:
            future.result(timeout=60)
            self.loop.call_soon_threadsafe(self.loop.stop)
            self.thread.join(timeout=30)
            self.loop.close()

        self._finish = finish
        return future

    def finish_shutdown(self) -> None:
        self._finish()


def start_server(
    pool: Optional[WorkerPool] = None,
    latency_seed: Optional[int] = 1234,
    **kwargs,
) -> RunningServer:
    """Boot a daemon on port 0 in a background event-loop thread."""
    if pool is None:
        pool = WorkerPool(workers=2, kind="thread")
    server = ExploreServer(pool, port=0, latency_seed=latency_seed, **kwargs)
    loop = asyncio.new_event_loop()
    started = threading.Event()

    def run() -> None:
        asyncio.set_event_loop(loop)
        loop.run_until_complete(server.start())
        started.set()
        loop.run_forever()

    thread = threading.Thread(target=run, name="serve-harness", daemon=True)
    thread.start()
    if not started.wait(timeout=10):
        raise RuntimeError("serve harness failed to start")
    return RunningServer(server, loop, thread)


@pytest.fixture
def live_server() -> Callable[..., RunningServer]:
    """Factory fixture: boot daemons, stop every survivor at teardown."""
    running = []

    def factory(pool: Optional[WorkerPool] = None, **kwargs) -> RunningServer:
        instance = start_server(pool, **kwargs)
        running.append(instance)
        return instance

    yield factory
    for instance in running:
        try:
            instance.stop()
        except Exception:
            pass


@pytest.fixture
def tiny_trace() -> Trace:
    """A small trace with real conflict structure (fast to explore)."""
    return Trace(
        [1, 2, 3, 1, 2, 3, 7, 1, 9, 2, 3, 7, 1, 5, 2, 3],
        address_bits=4,
        name="tiny",
    )


@pytest.fixture
def tiny_request(tiny_trace: Trace) -> ExplorationRequest:
    return ExplorationRequest(traces=(tiny_trace,), mode="single", budgets=(0, 1))
