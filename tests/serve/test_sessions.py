"""Incremental sessions over real sockets, plus manager/parsing units.

The live tests drive the daemon exactly the way ``repro stream``'s
remote siblings would: create a session, stream chunks, explore after
every append, and cross-check each answer against the batch pipeline
on the concatenation of everything sent so far.
"""

from __future__ import annotations

import pytest

from repro.core import engines
from repro.core.postlude import optimal_pairs
from repro.serve import ServeError, WorkerPool
from repro.serve.protocol import ProtocolError
from repro.serve.sessions import (
    SESSION_SCHEMA,
    SessionError,
    SessionManager,
    parse_append,
    parse_budgets,
    parse_create,
)
from repro.trace.trace import Trace

CHUNKS = [
    [1, 2, 3, 1, 2, 3],
    [7, 1, 9, 2],
    [3, 7, 1, 5, 2, 3],
]


def batch_answers(addresses, budgets):
    trace = Trace(addresses, address_bits=4)
    histograms = engines.compute_histograms(
        "serial", engines.EngineInputs(trace)
    )
    return {
        str(budget): [
            {
                "depth": inst.depth,
                "associativity": inst.associativity,
                "size_words": inst.size_words,
            }
            for inst in optimal_pairs(histograms, budget)
        ]
        for budget in budgets
    }


class TestLiveSessions:
    def test_create_append_explore_lifecycle(self, live_server) -> None:
        server = live_server()
        client = server.client()
        info = client.session_create(address_bits=4, name="lifecycle")
        assert info["total_refs"] == 0
        assert info["name"] == "lifecycle"

        sent: list = []
        for chunk in CHUNKS:
            response = client.session_append(info["id"], chunk)
            sent.extend(chunk)
            assert response["appended"] == len(chunk)
            assert response["session"]["total_refs"] == len(sent)
            answer = client.session_explore(info["id"], budgets=(0, 2))
            assert answer["results"] == batch_answers(sent, (0, 2))

        listed = client.session_list()
        assert [entry["id"] for entry in listed] == [info["id"]]
        client.session_delete(info["id"])
        assert client.session_list() == []

    def test_unknown_session_is_404(self, live_server) -> None:
        server = live_server()
        client = server.client()
        with pytest.raises(ServeError) as err:
            client.session_info("s9999-deadbeef")
        assert err.value.status == 404

    def test_invalid_create_is_400(self, live_server) -> None:
        server = live_server()
        client = server.client()
        for document in (
            {"schema": "bogus", "address_bits": 4},
            {"schema": SESSION_SCHEMA, "address_bits": 0},
            {"schema": SESSION_SCHEMA, "address_bits": 4, "max_level": -1},
        ):
            with pytest.raises(ServeError) as err:
                client._call_json("POST", "/v1/sessions", document)
            assert err.value.status == 400

    def test_out_of_range_append_is_400_and_state_survives(
        self, live_server
    ) -> None:
        server = live_server()
        client = server.client()
        info = client.session_create(address_bits=3)
        client.session_append(info["id"], [1, 2, 3])
        with pytest.raises(ServeError) as err:
            client.session_append(info["id"], [8])
        assert err.value.status == 400
        # The rejected chunk must not have been partially ingested... is
        # allowed to be partially ingested *within* the failing chunk,
        # but the session must still answer and accept further appends.
        answer = client.session_explore(info["id"])
        assert set(answer["results"]) == {"0"}
        client.session_append(info["id"], [4])

    def test_checkpoint_without_store_is_400(self, live_server) -> None:
        server = live_server()
        client = server.client()
        info = client.session_create(address_bits=4)
        with pytest.raises(ServeError) as err:
            client.session_append(info["id"], [1, 2], checkpoint=True)
        assert err.value.status == 400

    def test_checkpoint_and_resume_with_store(self, live_server, tmp_path) -> None:
        pool = WorkerPool(workers=2, kind="thread", store_root=tmp_path / "store")
        server = live_server(pool)
        client = server.client()
        info = client.session_create(address_bits=4, name="durable")
        sent = [addr for chunk in CHUNKS for addr in chunk]
        response = client.session_append(info["id"], sent, checkpoint=True)
        digest = response["checkpoint_digest"]
        assert digest == response["session"]["digest"]

        resumed = client.session_create(address_bits=4, resume=digest)
        assert resumed["total_refs"] == len(sent)
        answer = client.session_explore(resumed["id"], budgets=(1,))
        assert answer["results"] == batch_answers(sent, (1,))

    def test_resume_unknown_digest_is_400(self, live_server, tmp_path) -> None:
        pool = WorkerPool(workers=2, kind="thread", store_root=tmp_path / "store")
        server = live_server(pool)
        client = server.client()
        with pytest.raises(ServeError) as err:
            client.session_create(address_bits=4, resume="0" * 64)
        assert err.value.status == 400

    def test_metrics_count_session_traffic(self, live_server) -> None:
        server = live_server()
        client = server.client()
        info = client.session_create(address_bits=4)
        client.session_append(info["id"], [1, 2, 3, 1])
        client.session_explore(info["id"])
        metrics = client.metrics()
        assert metrics["serve_sessions_created_total"] == 1.0
        assert metrics["serve_session_appends_total"] == 1.0
        assert metrics["serve_session_refs_total"] == 4.0
        assert metrics["serve_session_explores_total"] == 1.0
        assert metrics["serve_sessions_open"] == 1.0
        client.session_delete(info["id"])
        assert client.metrics()["serve_sessions_open"] == 0.0

    def test_method_errors(self, live_server) -> None:
        server = live_server()
        client = server.client()
        info = client.session_create(address_bits=4)
        status, _ = client._call("PUT", "/v1/sessions")
        assert status == 405
        status, _ = client._call("GET", f"/v1/sessions/{info['id']}/append")
        assert status == 405
        status, _ = client._call("POST", f"/v1/sessions/{info['id']}/explore")
        assert status == 405
        status, _ = client._call("GET", f"/v1/sessions/{info['id']}/bogus")
        assert status == 404


class TestSessionManager:
    def test_session_cap(self) -> None:
        manager = SessionManager(max_sessions=2)
        manager.create(4)
        manager.create(4)
        with pytest.raises(SessionError, match="session limit"):
            manager.create(4)
        assert len(manager) == 2

    def test_remove_frees_a_slot(self) -> None:
        manager = SessionManager(max_sessions=1)
        managed = manager.create(4)
        manager.remove(managed.id)
        manager.create(4)

    def test_resume_without_store_rejected(self) -> None:
        manager = SessionManager(store_root=None)
        with pytest.raises(SessionError, match="store"):
            manager.create(4, resume="0" * 64)

    def test_resume_width_mismatch_rejected(self, tmp_path) -> None:
        manager = SessionManager(store_root=str(tmp_path / "store"))
        managed = manager.create(4)
        managed.session.append([1, 2, 3])
        digest = managed.session.checkpoint()
        with pytest.raises(SessionError, match="width"):
            manager.create(5, resume=digest)

    def test_invalid_parameters_become_session_errors(self) -> None:
        manager = SessionManager()
        with pytest.raises(SessionError):
            manager.create(0)
        with pytest.raises(SessionError):
            manager.create(4, max_level=-1)

    def test_ids_are_unique_and_opaque(self) -> None:
        manager = SessionManager()
        ids = {manager.create(4).id for _ in range(8)}
        assert len(ids) == 8


class TestWireParsing:
    def test_parse_create_minimal(self) -> None:
        params = parse_create({"schema": SESSION_SCHEMA, "address_bits": 4})
        assert params == {
            "address_bits": 4,
            "max_level": None,
            "name": "",
            "resume": None,
        }

    @pytest.mark.parametrize(
        "document",
        [
            "not a dict",
            {},
            {"schema": SESSION_SCHEMA},
            {"schema": SESSION_SCHEMA, "address_bits": True},
            {"schema": SESSION_SCHEMA, "address_bits": 4, "bogus": 1},
            {"schema": SESSION_SCHEMA, "address_bits": 4, "max_level": -2},
        ],
    )
    def test_parse_create_rejects(self, document) -> None:
        with pytest.raises(ProtocolError):
            parse_create(document)

    def test_parse_append(self) -> None:
        assert parse_append({"addresses": [1, 2]}) == {
            "addresses": [1, 2],
            "checkpoint": False,
        }
        with pytest.raises(ProtocolError):
            parse_append({"addresses": "nope"})
        with pytest.raises(ProtocolError):
            parse_append({"checkpoint": True})

    def test_parse_budgets(self) -> None:
        assert parse_budgets("") == {"budgets": [0], "include_depth_one": False}
        assert parse_budgets("budget=3&budget=0&include_depth_one=true") == {
            "budgets": [3, 0],
            "include_depth_one": True,
        }
        with pytest.raises(ProtocolError):
            parse_budgets("budget=-1")
        with pytest.raises(ProtocolError):
            parse_budgets("bogus=1")
        with pytest.raises(ProtocolError):
            parse_budgets("budget=abc")
