"""Load smoke: hundreds of mixed warm/cold requests against a live daemon.

Not a benchmark (``benchmarks/bench_serve.py`` measures and asserts the
real latency floors) — this is the service-grade sanity check: under a
burst of concurrent, repetitive traffic the daemon must answer every
request correctly, keep its counters consistent, and stay responsive.
"""

from __future__ import annotations

import random
import threading
import time

import pytest

from repro.core.request import ExplorationRequest, explore_request
from repro.serve import WorkerPool
from repro.serve.protocol import request_to_wire
from repro.trace.trace import Trace

TOTAL_REQUESTS = 200
UNIQUE_REQUESTS = 10
CLIENT_THREADS = 8


def _unique_requests() -> list:
    rng = random.Random(20030313)
    requests = []
    for index in range(UNIQUE_REQUESTS):
        addresses = [rng.randrange(64) for _ in range(48)]
        trace = Trace(addresses, address_bits=6, name=f"load-{index}")
        requests.append(
            ExplorationRequest(
                traces=(trace,), mode="single", budgets=(index % 3,)
            )
        )
    return requests


@pytest.mark.slow
def test_load_smoke_mixed_warm_cold(live_server, tmp_path) -> None:
    server = live_server(
        pool=WorkerPool(
            workers=4, kind="thread", store_root=str(tmp_path / "store")
        )
    )
    requests = _unique_requests()
    wires = [request_to_wire(request) for request in requests]
    expected = [explore_request(request).to_json_dict() for request in requests]

    def comparable(report: dict) -> dict:
        # the daemon's workers attach their own store-stat snapshots;
        # correctness is about everything else
        return {k: v for k, v in report.items() if k != "store"}

    # cold pass: every unique request once, sequentially
    client = server.client()
    for wire, want in zip(wires, expected):
        response = client.explore_wire(wire)
        assert comparable(response["report"]) == want

    # warm burst: the remaining traffic, concurrent and repetitive
    warm_total = TOTAL_REQUESTS - UNIQUE_REQUESTS
    schedule = [wires[i % UNIQUE_REQUESTS] for i in range(warm_total)]
    random.Random(7).shuffle(schedule)
    chunks = [schedule[i::CLIENT_THREADS] for i in range(CLIENT_THREADS)]
    errors = []
    latencies = []
    lock = threading.Lock()

    def worker(chunk) -> None:
        local_client = server.client()
        for wire in chunk:
            start = time.perf_counter()
            try:
                response = local_client.explore_wire(wire)
            except Exception as exc:
                with lock:
                    errors.append(exc)
                continue
            elapsed = time.perf_counter() - start
            want = expected[wires.index(wire)]
            with lock:
                latencies.append(elapsed)
                if comparable(response["report"]) != want:
                    errors.append(
                        AssertionError(f"wrong report for {wire['traces'][0]['name']}")
                    )

    threads = [threading.Thread(target=worker, args=(chunk,)) for chunk in chunks]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)

    assert not errors, errors[:3]
    assert len(latencies) == warm_total
    latencies.sort()
    p99 = latencies[min(len(latencies) - 1, int(0.99 * (len(latencies) - 1)))]
    # generous ceiling: warm requests are store- or dedup-served, so even
    # a loaded CI box finishes them in well under two seconds
    assert p99 < 2.0, f"warm p99 {p99:.3f}s"

    metrics = server.client().metrics()
    assert metrics["serve_requests_total"] == TOTAL_REQUESTS
    assert metrics["serve_errors_total"] == 0
    assert metrics["serve_in_flight"] == 0
    assert (
        metrics["serve_computations_total"] + metrics["serve_dedup_hits_total"]
        == TOTAL_REQUESTS
    )
    assert metrics["serve_request_latency_seconds_count"] == TOTAL_REQUESTS
    assert metrics["serve_store_hits_total"] >= 1
