"""Wire-protocol tests: strict codecs, dedup keys, batch envelopes."""

from __future__ import annotations

import pytest

from repro.core.request import ExplorationRequest, explore_request
from repro.serve.protocol import (
    BATCH_REQUEST_SCHEMA,
    REQUEST_SCHEMA,
    ProtocolError,
    batch_from_wire,
    request_from_wire,
    request_key,
    request_to_wire,
    response_from_wire,
    response_to_wire,
    trace_from_wire,
    trace_to_wire,
)
from repro.trace.reference import AccessKind
from repro.trace.trace import Trace


def request_fields(request: ExplorationRequest) -> dict:
    wire = request_to_wire(request)
    wire.pop("schema")
    return wire


class TestTraceCodec:
    def test_round_trip_plain(self, tiny_trace: Trace) -> None:
        rebuilt = trace_from_wire(trace_to_wire(tiny_trace))
        assert rebuilt == tiny_trace
        assert rebuilt.name == tiny_trace.name
        assert rebuilt.address_bits == tiny_trace.address_bits

    def test_round_trip_with_kinds(self) -> None:
        trace = Trace(
            [3, 5, 3],
            address_bits=4,
            kinds=[AccessKind.READ, AccessKind.WRITE, AccessKind.READ],
            name="rw",
        )
        rebuilt = trace_from_wire(trace_to_wire(trace))
        assert rebuilt == trace
        assert [rebuilt.kind(i) for i in range(3)] == [
            AccessKind.READ,
            AccessKind.WRITE,
            AccessKind.READ,
        ]

    def test_unknown_field_rejected(self, tiny_trace: Trace) -> None:
        wire = trace_to_wire(tiny_trace)
        wire["color"] = "red"
        with pytest.raises(ProtocolError, match="unknown fields.*color"):
            trace_from_wire(wire)

    def test_missing_field_rejected(self, tiny_trace: Trace) -> None:
        wire = trace_to_wire(tiny_trace)
        del wire["addresses"]
        with pytest.raises(ProtocolError, match="missing field"):
            trace_from_wire(wire)

    def test_bad_kind_rejected(self, tiny_trace: Trace) -> None:
        wire = trace_to_wire(tiny_trace)
        wire["kinds"] = [99] * len(wire["addresses"])
        with pytest.raises(ProtocolError, match="kinds"):
            trace_from_wire(wire)


class TestRequestCodec:
    def test_round_trip_all_fields(self, tiny_trace: Trace) -> None:
        request = ExplorationRequest(
            traces=(tiny_trace,),
            mode="single",
            budgets=(0, 2),
            percents=(5.0,),
            max_depth=8,
            include_depth_one=True,
            engine="serial",
            processes=3,
            prelude="python",
        )
        rebuilt = request_from_wire(request_to_wire(request))
        assert request_fields(rebuilt) == request_fields(request)

    def test_defaults_fill_in(self, tiny_trace: Trace) -> None:
        wire = {
            "schema": REQUEST_SCHEMA,
            "mode": "single",
            "traces": [trace_to_wire(tiny_trace)],
            "budgets": [0],
        }
        request = request_from_wire(wire)
        assert request.engine == "auto"
        assert request.prelude == "auto"
        assert request.include_depth_one is False

    def test_unknown_field_rejected(self, tiny_request) -> None:
        wire = request_to_wire(tiny_request)
        wire["budgett"] = [3]
        with pytest.raises(ProtocolError, match="unknown fields.*budgett"):
            request_from_wire(wire)

    def test_wrong_schema_rejected(self, tiny_request) -> None:
        wire = request_to_wire(tiny_request)
        wire["schema"] = "repro-serve-request/999"
        with pytest.raises(ProtocolError, match="schema"):
            request_from_wire(wire)

    def test_semantic_validation_delegated(self, tiny_trace: Trace) -> None:
        # mode arity is the request dataclass's rule; the codec surfaces
        # it as a ProtocolError so the server answers 400, not 500.
        wire = {
            "schema": REQUEST_SCHEMA,
            "mode": "sum",
            "traces": [trace_to_wire(tiny_trace)],
            "budgets": [],
        }
        with pytest.raises(ProtocolError, match="budget"):
            request_from_wire(wire)

    def test_type_errors_rejected(self, tiny_request) -> None:
        wire = request_to_wire(tiny_request)
        wire["budgets"] = ["zero"]
        with pytest.raises(ProtocolError, match="integer"):
            request_from_wire(wire)
        wire = request_to_wire(tiny_request)
        wire["include_depth_one"] = 1  # ints are not booleans on the wire
        with pytest.raises(ProtocolError, match="boolean"):
            request_from_wire(wire)


class TestScenarioWire:
    """The /1.2 scenario block, and byte-compat for /1 and /1.1 clients."""

    def _legacy_wire(self, tiny_trace, schema: str) -> dict:
        return {
            "schema": schema,
            "mode": "single",
            "traces": [trace_to_wire(tiny_trace)],
            "budgets": [0],
        }

    def test_scenario_round_trips(self, tiny_trace) -> None:
        from repro.scenario import ScenarioSpec

        request = ExplorationRequest(
            traces=(tiny_trace,),
            mode="single",
            budgets=(0,),
            scenario=ScenarioSpec(policy="fifo", l2_depth=8, cost_model="time"),
        )
        wire = request_to_wire(request)
        assert wire["schema"] == REQUEST_SCHEMA
        assert wire["scenario"] == {
            "policy": "fifo",
            "l2_depth": 8,
            "cost_model": "time",
        }
        rebuilt = request_from_wire(wire)
        assert rebuilt.scenario == request.scenario

    @pytest.mark.parametrize(
        "schema", ["repro-serve-request/1", "repro-serve-request/1.1"]
    )
    def test_legacy_schemas_answered_byte_identically(
        self, tiny_trace, schema
    ) -> None:
        legacy = request_from_wire(self._legacy_wire(tiny_trace, schema))
        current = request_from_wire(self._legacy_wire(tiny_trace, REQUEST_SCHEMA))
        assert legacy.scenario == current.scenario
        old = response_to_wire(explore_request(legacy))
        new = response_to_wire(explore_request(current))
        assert old == new

    @pytest.mark.parametrize(
        "schema", ["repro-serve-request/1", "repro-serve-request/1.1"]
    )
    def test_scenario_block_rejected_on_legacy_schemas(
        self, tiny_trace, schema
    ) -> None:
        wire = self._legacy_wire(tiny_trace, schema)
        wire["scenario"] = {"policy": "fifo"}
        with pytest.raises(ProtocolError, match="request.scenario requires"):
            request_from_wire(wire)

    def test_out_of_range_scenario_fields_rejected(self, tiny_trace) -> None:
        base = self._legacy_wire(tiny_trace, REQUEST_SCHEMA)
        for bad in (
            {"policy": "mru"},
            {"l2_depth": 12},
            {"cost_model": "carbon"},
            {"policy": 7},
            {"unknown": 1},
        ):
            wire = dict(base)
            wire["scenario"] = bad
            with pytest.raises(ProtocolError):
                request_from_wire(wire)

    def test_dedup_key_unified_across_schema_revisions(self, tiny_trace) -> None:
        docs = [
            self._legacy_wire(tiny_trace, "repro-serve-request/1"),
            self._legacy_wire(tiny_trace, "repro-serve-request/1.1"),
            self._legacy_wire(tiny_trace, REQUEST_SCHEMA),
        ]
        explicit_default = self._legacy_wire(tiny_trace, REQUEST_SCHEMA)
        explicit_default["scenario"] = {
            "policy": "lru",
            "l2_depth": None,
            "cost_model": None,
        }
        docs.append(explicit_default)
        assert len({request_key(d) for d in docs}) == 1

    def test_scenario_changes_the_dedup_key(self, tiny_trace) -> None:
        base = self._legacy_wire(tiny_trace, REQUEST_SCHEMA)
        fifo = dict(base)
        fifo["scenario"] = {"policy": "fifo"}
        costed = dict(base)
        costed["scenario"] = {"cost_model": "energy"}
        assert len({request_key(d) for d in (base, fifo, costed)}) == 3


class TestRequestKey:
    def test_trace_name_does_not_change_key(self, tiny_trace: Trace) -> None:
        renamed = Trace(
            list(tiny_trace.addresses),
            address_bits=tiny_trace.address_bits,
            name="other-name",
        )
        a = ExplorationRequest(traces=(tiny_trace,), mode="single", budgets=(0,))
        b = ExplorationRequest(traces=(renamed,), mode="single", budgets=(0,))
        assert request_key(request_to_wire(a)) == request_key(request_to_wire(b))

    def test_parameters_change_key(self, tiny_trace: Trace) -> None:
        base = ExplorationRequest(traces=(tiny_trace,), mode="single", budgets=(0,))
        keys = {request_key(request_to_wire(base))}
        for variant in (
            ExplorationRequest(traces=(tiny_trace,), mode="single", budgets=(1,)),
            ExplorationRequest(
                traces=(tiny_trace,), mode="single", budgets=(0,), engine="serial"
            ),
            ExplorationRequest(
                traces=(tiny_trace,), mode="single", budgets=(0,), prelude="python"
            ),
            ExplorationRequest(
                traces=(tiny_trace,), mode="linesize", budgets=(0,)
            ),
        ):
            keys.add(request_key(request_to_wire(variant)))
        assert len(keys) == 5

    def test_trace_content_changes_key(self, tiny_trace: Trace) -> None:
        mutated = Trace(
            list(tiny_trace.addresses[:-1]) + [0],
            address_bits=tiny_trace.address_bits,
            name=tiny_trace.name,
        )
        a = ExplorationRequest(traces=(tiny_trace,), mode="single", budgets=(0,))
        b = ExplorationRequest(traces=(mutated,), mode="single", budgets=(0,))
        assert request_key(request_to_wire(a)) != request_key(request_to_wire(b))

    def test_malformed_document_cannot_be_keyed(self) -> None:
        with pytest.raises(ProtocolError):
            request_key({"schema": REQUEST_SCHEMA})
        with pytest.raises(ProtocolError):
            request_key(["not", "a", "dict"])


class TestResponseCodec:
    @pytest.mark.parametrize(
        "mode,kwargs",
        [
            ("single", {"budgets": (0, 1)}),
            ("sum", {"budgets": (1,)}),
            ("each", {"budgets": (1,)}),
            ("linesize", {"budgets": (2,), "line_sizes": (1, 2, 4)}),
        ],
    )
    def test_report_round_trips_losslessly(self, tiny_trace, mode, kwargs) -> None:
        traces = (tiny_trace,) if mode in ("single", "linesize") else (
            tiny_trace,
            Trace([2, 4, 6, 2, 4, 6, 2], address_bits=4, name="second"),
        )
        request = ExplorationRequest(traces=traces, mode=mode, **kwargs)
        report = explore_request(request)
        rebuilt = response_from_wire(response_to_wire(report))
        assert rebuilt.to_json_dict() == report.to_json_dict()
        assert rebuilt.mode == mode

    def test_manifest_passthrough(self, tiny_request) -> None:
        report = explore_request(tiny_request)
        wire = response_to_wire(report, manifest={"schema": "x", "wall_s": 0.1})
        assert wire["manifest"] == {"schema": "x", "wall_s": 0.1}
        # manifest is optional and ignored by the report decoder
        assert response_from_wire(wire).to_json_dict() == report.to_json_dict()

    def test_unknown_field_rejected(self, tiny_request) -> None:
        wire = response_to_wire(explore_request(tiny_request))
        wire["extra"] = 1
        with pytest.raises(ProtocolError, match="unknown fields"):
            response_from_wire(wire)


class TestBatchEnvelope:
    def test_members_returned_in_order(self, tiny_request) -> None:
        docs = [request_to_wire(tiny_request) for _ in range(3)]
        for i, doc in enumerate(docs):
            doc["budgets"] = [i]
        assert batch_from_wire(
            {"schema": BATCH_REQUEST_SCHEMA, "requests": docs}
        ) == docs

    def test_empty_batch_rejected(self) -> None:
        with pytest.raises(ProtocolError, match="non-empty"):
            batch_from_wire({"schema": BATCH_REQUEST_SCHEMA, "requests": []})

    def test_non_dict_member_rejected(self) -> None:
        with pytest.raises(ProtocolError, match=r"requests\[1\]"):
            batch_from_wire(
                {"schema": BATCH_REQUEST_SCHEMA, "requests": [{}, 7]}
            )

    def test_unknown_envelope_field_rejected(self) -> None:
        with pytest.raises(ProtocolError, match="unknown fields"):
            batch_from_wire(
                {"schema": BATCH_REQUEST_SCHEMA, "requests": [{}], "x": 1}
            )
