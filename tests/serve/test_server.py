"""Daemon behavior over real sockets: dedup, batches, error paths."""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.core.request import ExplorationRequest, explore_request
from repro.serve import ServeError, WorkerPool
from repro.serve.protocol import (
    BATCH_REQUEST_SCHEMA,
    RESPONSE_SCHEMA,
    request_to_wire,
)
from repro.trace.trace import Trace


def slow_counting_execute(delay: float = 0.4):
    """An execute stub that counts invocations and tags its responses.

    The tag (``calls`` at execution time) makes result-sharing visible:
    if two clients ever got *different* computations, their responses
    would carry different tags.
    """
    state = {"calls": 0}
    lock = threading.Lock()

    def execute(document, store_root=None):
        with lock:
            state["calls"] += 1
            tag = state["calls"]
        time.sleep(delay)
        return {
            "schema": RESPONSE_SCHEMA,
            "report": {"tag": tag, "budgets": document.get("budgets")},
        }

    execute.state = state
    return execute


class TestBasics:
    def test_healthz(self, live_server) -> None:
        server = live_server()
        health = server.client().health()
        assert health["status"] == "ok"
        assert health["draining"] is False
        assert "version" in health

    def test_explore_matches_direct_execution(self, live_server, tiny_request) -> None:
        server = live_server()
        report = server.client().explore(tiny_request)
        direct = explore_request(tiny_request)
        assert report.to_json_dict() == direct.to_json_dict()

    def test_response_carries_manifest(self, live_server, tiny_request) -> None:
        from repro.obs import validate_manifest

        server = live_server()
        response = server.client().explore_wire(request_to_wire(tiny_request))
        validate_manifest(response["manifest"])
        assert response["manifest"]["options"]["mode"] == "single"

    def test_multi_and_linesize_modes_served(self, live_server, tiny_trace) -> None:
        server = live_server()
        client = server.client()
        second = Trace([2, 4, 6, 2, 4, 6, 2], address_bits=4, name="second")
        for request in (
            ExplorationRequest(traces=(tiny_trace, second), mode="sum", budgets=(1,)),
            ExplorationRequest(traces=(tiny_trace,), mode="linesize", budgets=(2,), line_sizes=(1, 2)),
        ):
            report = client.explore(request)
            assert report.to_json_dict() == explore_request(request).to_json_dict()


class TestDedup:
    N = 6

    def test_concurrent_identical_requests_compute_once(
        self, live_server, tiny_request
    ) -> None:
        """The tentpole invariant: N identical in-flight requests ->
        exactly 1 computation, N identical responses, and the dedup
        counter reads N-1."""
        execute = slow_counting_execute(delay=0.5)
        server = live_server(
            pool=WorkerPool(workers=self.N, kind="thread", execute=execute)
        )
        wire = request_to_wire(tiny_request)
        responses = [None] * self.N
        errors = []

        def submit(slot: int) -> None:
            try:
                responses[slot] = server.client().explore_wire(wire)
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        threads = [
            threading.Thread(target=submit, args=(slot,)) for slot in range(self.N)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert not errors
        assert execute.state["calls"] == 1
        assert all(response == responses[0] for response in responses)
        assert responses[0]["report"]["tag"] == 1
        metrics = server.client().metrics()
        assert metrics["serve_computations_total"] == 1
        assert metrics["serve_dedup_hits_total"] == self.N - 1
        assert metrics["serve_requests_total"] == self.N

    def test_different_requests_not_deduped(self, live_server, tiny_trace) -> None:
        execute = slow_counting_execute(delay=0.2)
        server = live_server(
            pool=WorkerPool(workers=4, kind="thread", execute=execute)
        )
        wires = [
            request_to_wire(
                ExplorationRequest(traces=(tiny_trace,), mode="single", budgets=(k,))
            )
            for k in range(3)
        ]
        threads = [
            threading.Thread(target=server.client().explore_wire, args=(wire,))
            for wire in wires
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert execute.state["calls"] == 3
        metrics = server.client().metrics()
        assert metrics["serve_computations_total"] == 3
        assert metrics["serve_dedup_hits_total"] == 0

    def test_sequential_repeats_recompute(self, live_server, tiny_request) -> None:
        # the table only collapses *concurrent* work; across time that
        # is the artifact store's job.
        execute = slow_counting_execute(delay=0.0)
        server = live_server(
            pool=WorkerPool(workers=2, kind="thread", execute=execute)
        )
        wire = request_to_wire(tiny_request)
        client = server.client()
        client.explore_wire(wire)
        client.explore_wire(wire)
        assert execute.state["calls"] == 2
        assert client.metrics()["serve_dedup_hits_total"] == 0


class TestBatch:
    def test_responses_in_request_order(self, live_server, tiny_trace) -> None:
        server = live_server()
        requests = [
            ExplorationRequest(traces=(tiny_trace,), mode="single", budgets=(k,))
            for k in (2, 0, 1)
        ]
        reports = server.client().explore_batch(requests)
        assert [r.budgets for r in reports] == [(2,), (0,), (1,)]
        for request, report in zip(requests, reports):
            assert report.to_json_dict() == explore_request(request).to_json_dict()

    def test_identical_members_dedupe_within_batch(
        self, live_server, tiny_request
    ) -> None:
        execute = slow_counting_execute(delay=0.1)
        server = live_server(
            pool=WorkerPool(workers=4, kind="thread", execute=execute)
        )
        wire = request_to_wire(tiny_request)
        responses = server.client().explore_batch_wire([wire, wire, wire])
        assert len(responses) == 3
        assert responses[0] == responses[1] == responses[2]
        assert execute.state["calls"] == 1
        metrics = server.client().metrics()
        assert metrics["serve_batch_requests_total"] == 1
        assert metrics["serve_dedup_hits_total"] == 2

    def test_bad_member_fails_whole_batch(self, live_server, tiny_request) -> None:
        server = live_server()
        good = request_to_wire(tiny_request)
        bad = dict(good, engine="no-such-engine")
        with pytest.raises(ServeError) as excinfo:
            server.client().explore_batch_wire([good, bad])
        assert excinfo.value.status == 400


class TestErrorPaths:
    def test_malformed_json_is_400(self, live_server) -> None:
        server = live_server()
        status, body = server.client()._call("POST", "/v1/explore")
        assert status == 400  # empty body is not JSON
        status, _ = server.client()._call(
            "POST", "/v1/explore", {"schema": "wrong"}
        )
        assert status == 400

    def test_unknown_field_is_400_with_detail(self, live_server, tiny_request) -> None:
        server = live_server()
        wire = request_to_wire(tiny_request)
        wire["bogus"] = True
        with pytest.raises(ServeError) as excinfo:
            server.client().explore_wire(wire)
        assert excinfo.value.status == 400
        assert "bogus" in str(excinfo.value)

    def test_unknown_route_is_404(self, live_server) -> None:
        server = live_server()
        status, _ = server.client()._call("GET", "/v2/nothing")
        assert status == 404

    def test_wrong_method_is_405(self, live_server) -> None:
        server = live_server()
        assert server.client()._call("POST", "/healthz", {})[0] == 405
        assert server.client()._call("GET", "/v1/explore")[0] == 405

    def test_worker_failure_is_500(self, live_server, tiny_request) -> None:
        def explode(document, store_root=None):
            raise RuntimeError("worker exploded")

        server = live_server(
            pool=WorkerPool(workers=1, kind="thread", execute=explode)
        )
        with pytest.raises(ServeError) as excinfo:
            server.client().explore_wire(request_to_wire(tiny_request))
        assert excinfo.value.status == 500
        assert "worker exploded" in str(excinfo.value)
        # a failed computation is not cached: the next attempt retries
        with pytest.raises(ServeError):
            server.client().explore_wire(request_to_wire(tiny_request))
        metrics = server.client().metrics()
        assert metrics["serve_errors_total"] == 2
        assert metrics["serve_computations_total"] == 2

    def test_errors_counted(self, live_server) -> None:
        server = live_server()
        server.client()._call("GET", "/missing")
        server.client()._call("POST", "/v1/explore", {"bad": 1})
        assert server.client().metrics()["serve_errors_total"] == 2


class TestMetricsEndpoint:
    def test_scrape_shape(self, live_server, tiny_request) -> None:
        server = live_server()
        client = server.client()
        client.explore(tiny_request)
        text = client.metrics_text()
        assert "# TYPE serve_requests_total counter" in text
        assert "# TYPE serve_in_flight gauge" in text
        assert 'serve_request_latency_seconds{quantile="0.99"}' in text
        metrics = client.metrics()
        assert metrics["serve_requests_total"] == 1
        assert metrics["serve_request_latency_seconds_count"] == 1
        assert metrics["serve_workers"] == 2
        assert metrics["serve_draining"] == 0
        assert metrics["serve_in_flight"] == 0

    def test_store_counters_aggregate(self, live_server, tiny_request, tmp_path) -> None:
        server = live_server(
            pool=WorkerPool(workers=1, kind="thread", store_root=str(tmp_path / "store"))
        )
        client = server.client()
        client.explore(tiny_request)
        client.explore(tiny_request)  # sequential: warm-started by the store
        metrics = client.metrics()
        assert metrics["serve_store_hits_total"] >= 1
        assert metrics["serve_store_misses_total"] >= 1
