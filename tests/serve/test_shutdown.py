"""Graceful-shutdown tests: draining completes in-flight work."""

from __future__ import annotations

import socket
import threading
import time

import pytest

from repro.serve import ServeError, WorkerPool
from repro.serve.protocol import request_to_wire

from tests.serve.test_server import slow_counting_execute


class TestDrain:
    def test_in_flight_request_completes_during_drain(
        self, live_server, tiny_request
    ) -> None:
        execute = slow_counting_execute(delay=0.8)
        server = live_server(
            pool=WorkerPool(workers=2, kind="thread", execute=execute)
        )
        wire = request_to_wire(tiny_request)
        result = {}

        def submit() -> None:
            try:
                result["response"] = server.client().explore_wire(wire)
            except Exception as exc:
                result["error"] = exc

        thread = threading.Thread(target=submit)
        thread.start()
        # wait until the request is actually inside the pool
        deadline = time.monotonic() + 5
        while execute.state["calls"] == 0 and time.monotonic() < deadline:
            time.sleep(0.02)
        assert execute.state["calls"] == 1
        future = server.begin_shutdown(drain=True, timeout=30)
        thread.join(timeout=30)
        future.result(timeout=30)
        server.finish_shutdown()
        assert "error" not in result, result.get("error")
        assert result["response"]["report"]["tag"] == 1
        assert server.server.draining

    def test_new_connections_refused_after_drain(
        self, live_server, tiny_request
    ) -> None:
        server = live_server()
        port = server.port
        server.stop(drain=True)
        with pytest.raises(ServeError) as excinfo:
            server.client(timeout=2).explore_wire(request_to_wire(tiny_request))
        assert excinfo.value.status == 0  # transport-level: listener gone

    def test_kept_alive_connection_gets_503_while_draining(
        self, live_server, tiny_request
    ) -> None:
        execute = slow_counting_execute(delay=0.0)
        server = live_server(
            pool=WorkerPool(workers=1, kind="thread", execute=execute)
        )
        sock = socket.create_connection(("127.0.0.1", server.port), timeout=10)
        try:
            import json

            body = json.dumps(request_to_wire(tiny_request)).encode()
            head = (
                f"POST /v1/explore HTTP/1.1\r\nHost: x\r\n"
                f"Content-Length: {len(body)}\r\n\r\n"
            ).encode()
            sock.sendall(head + body)
            first = _read_http_response(sock)
            assert b"200 OK" in first
            future = server.begin_shutdown(drain=True, timeout=10)
            deadline = time.monotonic() + 5
            while not server.server.draining and time.monotonic() < deadline:
                time.sleep(0.02)
            sock.sendall(head + body)
            second = _read_http_response(sock)
            assert b"503" in second
            assert b"draining" in second
            future.result(timeout=30)
            server.finish_shutdown()
        finally:
            sock.close()

    def test_draining_gauge_flips(self, live_server) -> None:
        server = live_server()
        assert server.client().metrics()["serve_draining"] == 0
        server.stop(drain=True)
        assert server.server.draining


def _read_http_response(sock: socket.socket) -> bytes:
    """Read one HTTP response (headers + Content-Length body)."""
    data = b""
    while b"\r\n\r\n" not in data:
        chunk = sock.recv(4096)
        if not chunk:
            return data
        data += chunk
    head, _, rest = data.partition(b"\r\n\r\n")
    length = 0
    for line in head.split(b"\r\n"):
        if line.lower().startswith(b"content-length:"):
            length = int(line.split(b":", 1)[1])
    while len(rest) < length:
        chunk = sock.recv(4096)
        if not chunk:
            break
        rest += chunk
    return head + b"\r\n\r\n" + rest
