"""Unit tests for the metrics layer: reservoir sampling + exposition."""

from __future__ import annotations

import pytest

from repro.serve.metrics import (
    DEFAULT_RESERVOIR_K,
    Reservoir,
    parse_metrics,
    render_metrics,
)


class TestReservoir:
    def test_exact_below_capacity(self) -> None:
        reservoir = Reservoir(k=100, seed=0)
        for value in [5.0, 1.0, 3.0, 2.0, 4.0]:
            reservoir.add(value)
        assert reservoir.percentile(0.0) == 1.0
        assert reservoir.percentile(0.5) == 3.0
        assert reservoir.percentile(1.0) == 5.0
        assert reservoir.count == 5
        assert reservoir.total == 15.0

    def test_memory_bounded(self) -> None:
        reservoir = Reservoir(k=64, seed=1)
        for value in range(10_000):
            reservoir.add(float(value))
        assert len(reservoir._samples) == 64
        assert reservoir.count == 10_000

    def test_deterministic_given_seed(self) -> None:
        a, b = Reservoir(k=32, seed=7), Reservoir(k=32, seed=7)
        for value in range(1000):
            a.add(float(value))
            b.add(float(value))
        assert a._samples == b._samples
        assert a.percentile(0.95) == b.percentile(0.95)

    def test_sampling_tracks_distribution(self) -> None:
        # 10k uniform values: the sampled p50 must land near the middle.
        reservoir = Reservoir(k=512, seed=42)
        for value in range(10_000):
            reservoir.add(float(value))
        assert 3500 <= reservoir.percentile(0.5) <= 6500

    def test_empty_percentile_is_zero(self) -> None:
        assert Reservoir(k=8).percentile(0.99) == 0.0

    def test_summary_keys(self) -> None:
        reservoir = Reservoir(k=8, seed=0)
        reservoir.add(1.0)
        summary = reservoir.summary()
        assert set(summary) == {"p50", "p95", "p99", "count", "sum"}

    def test_validation(self) -> None:
        with pytest.raises(ValueError):
            Reservoir(k=0)
        with pytest.raises(ValueError):
            Reservoir(k=8).percentile(1.5)

    def test_default_capacity(self) -> None:
        assert Reservoir().k == DEFAULT_RESERVOIR_K


class TestExposition:
    def test_render_parse_round_trip(self) -> None:
        latency = Reservoir(k=16, seed=3)
        for value in (0.1, 0.2, 0.3):
            latency.add(value)
        text = render_metrics(
            {"serve_requests_total": 7, "serve_errors_total": 0},
            {"serve_in_flight": 2.0},
            latency,
        )
        parsed = parse_metrics(text)
        assert parsed["serve_requests_total"] == 7
        assert parsed["serve_errors_total"] == 0
        assert parsed["serve_in_flight"] == 2.0
        assert parsed["serve_request_latency_seconds_count"] == 3
        assert parsed["serve_request_latency_seconds_sum"] == pytest.approx(0.6)
        assert parsed['serve_request_latency_seconds{quantile="0.5"}'] == pytest.approx(0.2)

    def test_type_lines_present(self) -> None:
        text = render_metrics({"a_total": 1}, {"b": 2.0}, Reservoir(k=4))
        assert "# TYPE a_total counter" in text
        assert "# TYPE b gauge" in text
        assert "# TYPE serve_request_latency_seconds summary" in text

    def test_names_sanitized(self) -> None:
        text = render_metrics({"serve:weird-name": 1}, {})
        assert "serve_weird_name 1" in text

    def test_no_latency_section_when_omitted(self) -> None:
        text = render_metrics({"a": 1}, {})
        assert "quantile" not in text
