"""Unit tests for the Mattson one-pass stack-distance simulator."""

import pytest

from repro.cache.config import CacheConfig
from repro.cache.onepass import (
    profile_all_depths,
    stack_distance_profile,
)
from repro.cache.simulator import simulate_trace
from repro.trace.synthetic import loop_nest_trace, random_trace, zipf_trace
from repro.trace.trace import Trace


class TestProfileBasics:
    def test_simple_distances(self):
        # Single set (depth 1): 0,1,0 -> distance of final 0 is 1.
        profile = stack_distance_profile(Trace([0, 1, 0]), depth=1)
        assert profile.cold == 2
        assert profile.histogram == {1: 1}

    def test_immediate_reuse_has_distance_zero(self):
        profile = stack_distance_profile(Trace([4, 4, 4]), depth=1)
        assert profile.histogram == {0: 2}

    def test_per_set_distances_ignore_other_sets(self):
        # depth 2: addresses 0,1 alternate but live in different sets.
        profile = stack_distance_profile(Trace([0, 1, 0, 1]), depth=2)
        assert profile.histogram == {0: 2}

    def test_depth_must_be_power_of_two(self):
        with pytest.raises(ValueError, match="power of two"):
            stack_distance_profile(Trace([0]), depth=3)

    def test_all_cold_trace(self):
        profile = stack_distance_profile(Trace([1, 2, 3]), depth=1)
        assert profile.cold == 3
        assert profile.histogram == {}
        assert profile.max_distance == -1
        assert profile.zero_miss_associativity == 1


class TestMissQueries:
    def test_misses_by_associativity(self):
        # depth 1, trace 0,1,2,0: distance of final 0 is 2.
        profile = stack_distance_profile(Trace([0, 1, 2, 0]), depth=1)
        assert profile.non_cold_misses(1) == 1
        assert profile.non_cold_misses(2) == 1
        assert profile.non_cold_misses(3) == 0

    def test_hits_complement_misses(self):
        trace = random_trace(300, 24, seed=1)
        profile = stack_distance_profile(trace, depth=2)
        for assoc in (1, 2, 4):
            assert (
                profile.hits(assoc)
                + profile.cold
                + profile.non_cold_misses(assoc)
                == len(trace)
            )

    def test_invalid_associativity_rejected(self):
        profile = stack_distance_profile(Trace([0]), depth=1)
        with pytest.raises(ValueError):
            profile.non_cold_misses(0)

    def test_min_associativity(self):
        profile = stack_distance_profile(Trace([0, 1, 2, 0, 1, 2]), depth=1)
        # distances: each revisit sees 2 distinct others -> all misses at A<=2
        assert profile.min_associativity(0) == 3
        assert profile.min_associativity(2) == 3
        assert profile.min_associativity(3) == 1

    def test_min_associativity_rejects_negative_budget(self):
        profile = stack_distance_profile(Trace([0]), depth=1)
        with pytest.raises(ValueError):
            profile.min_associativity(-1)

    def test_zero_miss_associativity_gives_zero_misses(self):
        trace = zipf_trace(500, 40, seed=2)
        profile = stack_distance_profile(trace, depth=4)
        assert profile.non_cold_misses(profile.zero_miss_associativity) == 0


class TestAgreementWithSimulator:
    """The inclusion property: one pass must equal per-config simulation."""

    @pytest.mark.parametrize("depth", [1, 2, 4, 8, 16])
    @pytest.mark.parametrize("assoc", [1, 2, 3, 4])
    def test_random_trace(self, depth, assoc):
        trace = random_trace(400, 48, seed=depth * 10 + assoc)
        profile = stack_distance_profile(trace, depth)
        simulated = simulate_trace(
            trace, CacheConfig(depth=depth, associativity=assoc)
        )
        assert profile.non_cold_misses(assoc) == simulated.non_cold_misses
        assert profile.cold == simulated.cold_misses

    def test_loop_trace(self):
        trace = loop_nest_trace(20, 10)
        for depth in (1, 4, 16):
            profile = stack_distance_profile(trace, depth)
            for assoc in (1, 2, 8):
                simulated = simulate_trace(
                    trace, CacheConfig(depth=depth, associativity=assoc)
                )
                assert profile.non_cold_misses(assoc) == simulated.non_cold_misses


class TestProfileAllDepths:
    def test_covers_every_power_of_two(self):
        trace = random_trace(100, 30, seed=0)
        profiles = profile_all_depths(trace, max_depth=8)
        assert sorted(profiles) == [1, 2, 4, 8]

    def test_rejects_non_power_max_depth(self):
        with pytest.raises(ValueError):
            profile_all_depths(Trace([0]), max_depth=6)

    def test_cold_count_is_depth_invariant(self):
        trace = random_trace(200, 25, seed=4)
        profiles = profile_all_depths(trace, max_depth=16)
        colds = {p.cold for p in profiles.values()}
        assert len(colds) == 1
