"""Unit tests for the composed two-level simulator."""

import pytest

from repro.cache.config import CacheConfig
from repro.cache.multilevel import TwoLevelSimulator, simulate_two_level
from repro.cache.simulator import miss_stream, simulate_trace
from repro.trace.synthetic import loop_nest_trace, random_trace, zipf_trace
from repro.trace.trace import Trace

L1 = CacheConfig(depth=4, associativity=1)
L2 = CacheConfig(depth=16, associativity=2)


class TestComposition:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_l2_equals_simulation_over_miss_stream(self, seed):
        """The composed run must equal miss-stream replay, counter for counter."""
        trace = zipf_trace(500, 90, seed=seed)
        composed = simulate_two_level(trace, L1, L2)
        stream, l1_result = miss_stream(trace, L1)
        l2_direct = simulate_trace(stream, L2)
        assert composed.l1.misses == l1_result.misses
        assert composed.l2.non_cold_misses == l2_direct.non_cold_misses
        assert composed.l2.cold_misses == l2_direct.cold_misses

    def test_l2_sees_exactly_the_l1_misses(self):
        trace = random_trace(300, 60, seed=3)
        composed = simulate_two_level(trace, L1, L2)
        assert composed.l2.accesses == composed.l1.misses

    def test_l1_line_granularity_at_l2(self):
        l1 = CacheConfig(depth=2, associativity=1, line_words=4)
        l2 = CacheConfig(depth=8, associativity=1)
        trace = Trace([0, 16, 0, 16])  # two L1 lines thrash set 0
        composed = simulate_two_level(trace, l1, l2)
        # L2 is indexed by L1-line address: lines 0 and 4.
        assert composed.l2.accesses == 4
        assert composed.l2.hits == 2  # both re-references hit in L2


class TestDerivedMetrics:
    def test_memory_accesses_and_global_rate(self):
        trace = loop_nest_trace(8, 10)
        perfect_l1 = CacheConfig(depth=8, associativity=1)
        composed = simulate_two_level(trace, perfect_l1, L2)
        # L1 captures everything after its cold fills.
        assert composed.l1.non_cold_misses == 0
        assert composed.memory_accesses == composed.l2.misses
        assert 0.0 <= composed.global_miss_rate <= 1.0

    def test_amat_ordering(self):
        """A bigger L2 can only lower (or keep) the AMAT."""
        trace = zipf_trace(600, 120, seed=4)
        small = simulate_two_level(
            trace, L1, CacheConfig(depth=8, associativity=1)
        )
        large = simulate_two_level(
            trace, L1, CacheConfig(depth=256, associativity=2)
        )
        assert large.amat <= small.amat

    def test_empty_trace(self):
        composed = simulate_two_level(Trace([]), L1, L2)
        assert composed.amat == 0.0
        assert composed.global_miss_rate == 0.0


class TestStatefulAPI:
    def test_access_returns_l1_hit(self):
        sim = TwoLevelSimulator(L1, L2)
        assert sim.access(0) is False  # cold
        assert sim.access(0) is True
