"""Unit tests for replacement policies."""

import random

import pytest

from repro.cache.config import CacheConfig, ReplacementKind
from repro.cache.policies import (
    FIFOSet,
    LRUSet,
    PLRUSet,
    RandomSet,
    make_set_policy,
)


class TestLRU:
    def test_fills_until_capacity_without_eviction(self):
        policy = LRUSet(2)
        assert policy.lookup(1) == (False, None)
        assert policy.lookup(2) == (False, None)

    def test_evicts_least_recently_used(self):
        policy = LRUSet(2)
        policy.lookup(1)
        policy.lookup(2)
        hit, evicted = policy.lookup(3)
        assert not hit and evicted == 1

    def test_hit_refreshes_recency(self):
        policy = LRUSet(2)
        policy.lookup(1)
        policy.lookup(2)
        policy.lookup(1)  # 1 becomes most recent
        _, evicted = policy.lookup(3)
        assert evicted == 2

    def test_hit_reports_true_and_no_eviction(self):
        policy = LRUSet(2)
        policy.lookup(9)
        assert policy.lookup(9) == (True, None)

    def test_contains_has_no_side_effects(self):
        policy = LRUSet(2)
        policy.lookup(1)
        policy.lookup(2)
        assert policy.contains(1)
        _, evicted = policy.lookup(3)
        assert evicted == 1  # contains() did not refresh 1


class TestFIFO:
    def test_evicts_oldest_fill_even_if_recently_hit(self):
        policy = FIFOSet(2)
        policy.lookup(1)
        policy.lookup(2)
        policy.lookup(1)  # hit: must NOT refresh
        _, evicted = policy.lookup(3)
        assert evicted == 1

    def test_differs_from_lru_on_same_sequence(self):
        fifo, lru = FIFOSet(2), LRUSet(2)
        for tag in (1, 2, 1):
            fifo.lookup(tag)
            lru.lookup(tag)
        assert fifo.lookup(3)[1] == 1
        assert lru.lookup(3)[1] == 2


class TestRandom:
    def test_deterministic_given_seeded_rng(self):
        def evictions(seed):
            policy = RandomSet(2, random.Random(seed))
            out = []
            for tag in range(10):
                out.append(policy.lookup(tag)[1])
            return out

        assert evictions(42) == evictions(42)

    def test_fills_empty_ways_before_evicting(self):
        policy = RandomSet(3, random.Random(0))
        assert policy.lookup(1)[1] is None
        assert policy.lookup(2)[1] is None
        assert policy.lookup(3)[1] is None
        assert policy.lookup(4)[1] is not None

    def test_victim_is_resident(self):
        policy = RandomSet(2, random.Random(1))
        policy.lookup(10)
        policy.lookup(20)
        _, evicted = policy.lookup(30)
        assert evicted in (10, 20)


class TestPLRU:
    def test_two_way_plru_is_exactly_lru(self):
        plru, lru = PLRUSet(2), LRUSet(2)
        rng = random.Random(3)
        for _ in range(300):
            tag = rng.randrange(5)
            hit_p, ev_p = plru.lookup(tag)
            hit_l, ev_l = lru.lookup(tag)
            assert hit_p == hit_l
            assert ev_p == ev_l

    def test_one_way_plru_degenerates_to_direct(self):
        policy = PLRUSet(1)
        policy.lookup(1)
        hit, evicted = policy.lookup(2)
        assert not hit and evicted == 1

    def test_four_way_never_evicts_most_recent(self):
        policy = PLRUSet(4)
        rng = random.Random(9)
        last = None
        for _ in range(500):
            tag = rng.randrange(8)
            _, evicted = policy.lookup(tag)
            if evicted is not None:
                assert evicted != last  # PLRU protects the MRU way
            last = tag

    def test_resident_tags_tracks_contents(self):
        policy = PLRUSet(2)
        policy.lookup(5)
        policy.lookup(6)
        assert sorted(policy.resident_tags()) == [5, 6]
        policy.lookup(7)
        assert 7 in policy.resident_tags()
        assert len(policy.resident_tags()) == 2


class TestFactory:
    @pytest.mark.parametrize(
        "kind,cls",
        [
            (ReplacementKind.LRU, LRUSet),
            (ReplacementKind.FIFO, FIFOSet),
            (ReplacementKind.RANDOM, RandomSet),
            (ReplacementKind.PLRU, PLRUSet),
        ],
    )
    def test_make_set_policy(self, kind, cls):
        config = CacheConfig(depth=2, associativity=2, replacement=kind)
        policy = make_set_policy(config, random.Random(0))
        assert isinstance(policy, cls)
        assert policy.associativity == 2
