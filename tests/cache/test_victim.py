"""Unit tests for the victim-buffer simulator."""

import pytest

from repro.cache.config import CacheConfig
from repro.cache.simulator import simulate_trace
from repro.cache.victim import VictimCacheSimulator, simulate_victim
from repro.trace.synthetic import loop_nest_trace, random_trace, zipf_trace
from repro.trace.trace import Trace

DM = CacheConfig(depth=4, associativity=1)


class TestBasics:
    def test_zero_entries_equals_plain_cache(self):
        trace = zipf_trace(400, 60, seed=0)
        with_victim = simulate_victim(trace, DM, victim_entries=0)
        plain = simulate_trace(trace, DM)
        assert with_victim.non_cold_misses == plain.non_cold_misses
        assert with_victim.cold_misses == plain.cold_misses
        assert with_victim.victim_hits == 0

    def test_counters_are_consistent(self):
        trace = random_trace(300, 50, seed=1)
        result = simulate_victim(trace, DM, victim_entries=2)
        assert (
            result.main_hits
            + result.victim_hits
            + result.cold_misses
            + result.non_cold_misses
            == result.accesses
            == len(trace)
        )

    def test_negative_entries_rejected(self):
        with pytest.raises(ValueError):
            VictimCacheSimulator(DM, victim_entries=-1)

    def test_access_return_value(self):
        sim = VictimCacheSimulator(DM, victim_entries=1)
        assert sim.access(0) is False  # cold
        assert sim.access(0) is True   # main hit


class TestVictimBehaviour:
    def test_thrash_pair_caught_by_one_entry(self):
        # 0 and 4 thrash set 0 of the DM cache; one victim entry catches
        # every bounce after the cold pair.
        trace = Trace([0, 4] * 10)
        result = simulate_victim(trace, DM, victim_entries=1)
        assert result.cold_misses == 2
        assert result.non_cold_misses == 0
        assert result.victim_hits == 18

    def test_swap_promotes_hot_line(self):
        sim = VictimCacheSimulator(DM, victim_entries=1)
        sim.access(0)   # cold
        sim.access(4)   # cold, evicts 0 to victim
        sim.access(0)   # victim hit, swap: 0 in main, 4 in victim
        assert sim.access(0) is True  # now a MAIN hit
        assert sim.main_hits == 1

    def test_victim_capacity_limits_coverage(self):
        # Three-way thrash needs two victim entries, not one.
        trace = Trace([0, 4, 8] * 8)
        one = simulate_victim(trace, DM, victim_entries=1)
        two = simulate_victim(trace, DM, victim_entries=2)
        assert one.non_cold_misses > 0
        assert two.non_cold_misses == 0

    def test_never_worse_than_plain_cache(self):
        for seed in range(3):
            trace = zipf_trace(400, 80, seed=seed)
            plain = simulate_trace(trace, DM).non_cold_misses
            for entries in (1, 2, 4):
                buffered = simulate_victim(trace, DM, entries)
                assert buffered.non_cold_misses <= plain

    def test_dm_plus_victim_tracks_two_way(self):
        """DM + big victim buffer catches at least what 2-way LRU catches.

        A victim buffer of >= depth entries holds every set's most recent
        victim, so it covers (at least) the second way of every set.
        """
        trace = zipf_trace(500, 90, seed=3)
        config = CacheConfig(depth=8, associativity=1)
        two_way = simulate_trace(
            trace, CacheConfig(depth=8, associativity=2)
        ).non_cold_misses
        buffered = simulate_victim(trace, config, victim_entries=8)
        assert buffered.non_cold_misses <= two_way * 1.5  # same ballpark

    def test_memory_fetches_property(self):
        trace = loop_nest_trace(12, 5)
        result = simulate_victim(trace, DM, 2)
        assert result.memory_fetches == result.cold_misses + result.non_cold_misses
        assert result.hits == result.main_hits + result.victim_hits
