"""Unit tests for the cache simulator."""

import pytest

from repro.cache.config import CacheConfig, ReplacementKind, WritePolicy
from repro.cache.result import SimulationResult
from repro.cache.simulator import CacheSimulator, simulate_many, simulate_trace
from repro.trace.reference import AccessKind
from repro.trace.trace import Trace


class TestBasicBehaviour:
    def test_first_access_is_cold_miss(self):
        sim = CacheSimulator(CacheConfig(depth=2, associativity=1))
        assert sim.access(0) is False
        assert sim.cold_misses == 1
        assert sim.non_cold_misses == 0

    def test_repeat_access_hits(self):
        sim = CacheSimulator(CacheConfig(depth=2, associativity=1))
        sim.access(0)
        assert sim.access(0) is True
        assert sim.hits == 1

    def test_direct_mapped_conflict(self):
        # depth 2: addresses 0 and 2 share set 0 and thrash each other.
        sim = CacheSimulator(CacheConfig(depth=2, associativity=1))
        for addr in (0, 2, 0, 2):
            sim.access(addr)
        result = sim.result()
        assert result.cold_misses == 2
        assert result.non_cold_misses == 2
        assert result.hits == 0

    def test_two_way_absorbs_the_same_conflict(self):
        sim = CacheSimulator(CacheConfig(depth=2, associativity=2))
        for addr in (0, 2, 0, 2):
            sim.access(addr)
        result = sim.result()
        assert result.non_cold_misses == 0
        assert result.hits == 2

    def test_distinct_sets_do_not_conflict(self):
        sim = CacheSimulator(CacheConfig(depth=2, associativity=1))
        for addr in (0, 1, 0, 1):
            sim.access(addr)
        assert sim.result().hits == 2

    def test_contains_is_side_effect_free(self):
        sim = CacheSimulator(CacheConfig(depth=2, associativity=1))
        assert not sim.contains(0)
        sim.access(0)
        assert sim.contains(0)
        assert sim.accesses == 1  # contains did not count as an access


class TestColdMissAccounting:
    def test_cold_misses_equal_unique_lines(self):
        trace = Trace([5, 9, 5, 13, 9, 5])
        result = simulate_trace(trace, CacheConfig(depth=4, associativity=1))
        assert result.cold_misses == 3

    def test_re_reference_after_eviction_is_non_cold(self):
        sim = CacheSimulator(CacheConfig(depth=1, associativity=1))
        sim.access(0)
        sim.access(1)  # evicts 0
        sim.access(0)  # miss, but not cold
        assert sim.cold_misses == 2
        assert sim.non_cold_misses == 1

    def test_multiword_lines_make_neighbours_share_cold_miss(self):
        config = CacheConfig(depth=2, associativity=1, line_words=4)
        result = simulate_trace(Trace([0, 1, 2, 3]), config)
        assert result.cold_misses == 1
        assert result.hits == 3


class TestWritePolicies:
    def test_write_back_counts_writeback_on_dirty_eviction(self):
        config = CacheConfig(depth=1, associativity=1)
        sim = CacheSimulator(config)
        sim.access(0, AccessKind.WRITE)  # dirty line 0
        sim.access(1)                    # evicts dirty line 0
        assert sim.writebacks == 1
        assert sim.write_throughs == 0

    def test_clean_eviction_does_not_write_back(self):
        sim = CacheSimulator(CacheConfig(depth=1, associativity=1))
        sim.access(0)
        sim.access(1)
        assert sim.writebacks == 0

    def test_write_through_counts_every_store(self):
        config = CacheConfig(
            depth=2, associativity=1, write_policy=WritePolicy.WRITE_THROUGH
        )
        sim = CacheSimulator(config)
        sim.access(0, AccessKind.WRITE)
        sim.access(0, AccessKind.WRITE)
        assert sim.write_throughs == 2
        assert sim.writebacks == 0

    def test_flush_writes_all_dirty_lines(self):
        sim = CacheSimulator(CacheConfig(depth=4, associativity=1))
        sim.access(0, AccessKind.WRITE)
        sim.access(1, AccessKind.WRITE)
        assert sim.flush() == 2
        assert sim.writebacks == 2
        assert sim.flush() == 0  # idempotent

    def test_rewriting_same_line_stays_one_dirty_entry(self):
        sim = CacheSimulator(CacheConfig(depth=1, associativity=1))
        sim.access(0, AccessKind.WRITE)
        sim.access(0, AccessKind.WRITE)
        assert sim.flush() == 1


class TestSimulateTrace:
    def test_counts_are_consistent(self):
        trace = Trace([1, 2, 1, 3, 1, 2], address_bits=4)
        result = simulate_trace(trace, CacheConfig(depth=2, associativity=1))
        assert result.accesses == len(trace)
        assert result.hits + result.misses == result.accesses

    def test_kinds_are_replayed(self):
        trace = Trace(
            [0, 0], kinds=[AccessKind.WRITE, AccessKind.READ]
        )
        config = CacheConfig(depth=1, associativity=1)
        sim = CacheSimulator(config)
        for i, addr in enumerate(trace):
            sim.access(addr, trace.kind(i))
        assert sim.flush() == 1

    def test_empty_trace(self):
        result = simulate_trace(Trace([]), CacheConfig(depth=2, associativity=1))
        assert result.accesses == 0
        assert result.miss_rate == 0.0

    def test_simulate_many_covers_all_configs(self):
        trace = Trace([0, 2, 0, 2])
        configs = [
            CacheConfig(depth=2, associativity=1),
            CacheConfig(depth=2, associativity=2),
        ]
        results = simulate_many(trace, configs)
        assert results[configs[0]].non_cold_misses == 2
        assert results[configs[1]].non_cold_misses == 0


class TestReplacementInteraction:
    def test_fifo_vs_lru_differ_on_crafted_trace(self):
        # 0,2,0,4: LRU evicts 2 for 4 (keeps hot 0); FIFO evicts 0.
        trace = Trace([0, 2, 0, 4, 0])
        lru = simulate_trace(
            trace, CacheConfig(depth=2, associativity=2)
        )
        fifo = simulate_trace(
            trace,
            CacheConfig(
                depth=2, associativity=2, replacement=ReplacementKind.FIFO
            ),
        )
        assert lru.hits == 2
        assert fifo.hits == 1

    def test_random_is_reproducible_via_seed(self):
        trace = Trace(list(range(8)) * 4)
        config = CacheConfig(
            depth=2, associativity=2, replacement=ReplacementKind.RANDOM, seed=5
        )
        first = simulate_trace(trace, config)
        second = simulate_trace(trace, config)
        assert first.hits == second.hits


class TestSimulationResult:
    def test_inconsistent_counts_rejected(self):
        config = CacheConfig(depth=2, associativity=1)
        with pytest.raises(ValueError, match="inconsistent"):
            SimulationResult(
                config=config, accesses=5, hits=1, cold_misses=1, non_cold_misses=1
            )

    def test_rates_and_budget(self):
        config = CacheConfig(depth=2, associativity=1)
        result = SimulationResult(
            config=config, accesses=10, hits=6, cold_misses=3, non_cold_misses=1
        )
        assert result.misses == 4
        assert result.miss_rate == pytest.approx(0.4)
        assert result.non_cold_miss_rate == pytest.approx(0.1)
        assert result.meets_budget(1)
        assert not result.meets_budget(0)
