"""Unit tests for CacheConfig."""

import pytest

from repro.cache.config import (
    CacheConfig,
    ReplacementKind,
    WritePolicy,
    is_power_of_two,
)


class TestIsPowerOfTwo:
    @pytest.mark.parametrize("value", [1, 2, 4, 1024])
    def test_powers(self, value):
        assert is_power_of_two(value)

    @pytest.mark.parametrize("value", [0, -2, 3, 12, 1023])
    def test_non_powers(self, value):
        assert not is_power_of_two(value)


class TestValidation:
    def test_depth_must_be_power_of_two(self):
        with pytest.raises(ValueError, match="depth"):
            CacheConfig(depth=3, associativity=1)

    def test_associativity_must_be_positive(self):
        with pytest.raises(ValueError, match="associativity"):
            CacheConfig(depth=4, associativity=0)

    def test_line_words_must_be_power_of_two(self):
        with pytest.raises(ValueError, match="line_words"):
            CacheConfig(depth=4, associativity=1, line_words=3)

    def test_plru_requires_power_of_two_ways(self):
        with pytest.raises(ValueError, match="PLRU"):
            CacheConfig(depth=4, associativity=3, replacement=ReplacementKind.PLRU)
        CacheConfig(depth=4, associativity=4, replacement=ReplacementKind.PLRU)

    def test_non_power_of_two_associativity_allowed_for_lru(self):
        CacheConfig(depth=4, associativity=3)


class TestDerivedFields:
    def test_index_and_offset_bits(self):
        config = CacheConfig(depth=64, associativity=2, line_words=4)
        assert config.index_bits == 6
        assert config.offset_bits == 2

    def test_depth_one_has_zero_index_bits(self):
        assert CacheConfig(depth=1, associativity=4).index_bits == 0

    def test_size_words(self):
        config = CacheConfig(depth=8, associativity=2, line_words=4)
        assert config.size_words == 64

    def test_paper_size_formula_with_unit_lines(self):
        # The paper computes the cache size as 2**log2(D) * A.
        config = CacheConfig(depth=512, associativity=2)
        assert config.size_words == 1024


class TestAddressMath:
    def test_unit_line_index_is_low_bits(self):
        config = CacheConfig(depth=16, associativity=1)
        assert config.set_index(0b1011_0101) == 0b0101
        assert config.tag(0b1011_0101) == 0b1011
        assert config.line_address(77) == 77

    def test_multiword_line_shifts_out_offset(self):
        config = CacheConfig(depth=4, associativity=1, line_words=4)
        # address 0b...yyxx -> offset xx, index yy
        assert config.set_index(0b011110) == 0b11
        assert config.tag(0b011110) == 0b01
        assert config.line_address(0b011110) == 0b0111

    def test_tag_index_line_reconstruction(self):
        config = CacheConfig(depth=8, associativity=2, line_words=2)
        address = 0x1A7
        rebuilt = (
            (config.tag(address) << config.index_bits | config.set_index(address))
            << config.offset_bits
        ) | (address & (config.line_words - 1))
        assert rebuilt == address

    def test_describe_mentions_everything(self):
        config = CacheConfig(
            depth=4,
            associativity=2,
            write_policy=WritePolicy.WRITE_THROUGH,
        )
        text = config.describe()
        assert "D=4" in text and "A=2" in text and "write-through" in text
