"""Content-addressing: trace digests and artifact keys."""

import subprocess
import sys

from repro.store import ArtifactKey, trace_digest
from repro.trace.trace import AccessKind, Trace
from repro.trace.synthetic import zipf_trace
from tests.conftest import PAPER_TRACE_BITS


def _paper_trace(name="paper-table-1"):
    return Trace.from_bit_strings(PAPER_TRACE_BITS, name=name)


class TestTraceDigest:
    def test_stable_within_a_process(self):
        assert trace_digest(_paper_trace()) == trace_digest(_paper_trace())

    def test_stable_across_processes(self):
        """SHA-256, not the salted builtin hash: a new interpreter agrees."""
        script = (
            "from repro.trace.trace import Trace\n"
            "from repro.store import trace_digest\n"
            f"trace = Trace.from_bit_strings({PAPER_TRACE_BITS!r})\n"
            "print(trace_digest(trace))\n"
        )
        out = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            check=True,
        )
        assert out.stdout.strip() == trace_digest(_paper_trace())

    def test_content_addressed_not_name_addressed(self):
        assert trace_digest(_paper_trace("a")) == trace_digest(_paper_trace("b"))

    def test_access_kinds_do_not_matter(self):
        """Every pipeline product depends only on the address sequence."""
        addresses = list(_paper_trace().addresses)
        reads = Trace(
            addresses, address_bits=4, kinds=[AccessKind.READ] * len(addresses)
        )
        writes = Trace(
            addresses, address_bits=4, kinds=[AccessKind.WRITE] * len(addresses)
        )
        assert trace_digest(reads) == trace_digest(writes)

    def test_addresses_matter(self):
        a = zipf_trace(200, 30, seed=1)
        b = zipf_trace(200, 30, seed=2)
        assert trace_digest(a) != trace_digest(b)

    def test_address_bits_matter(self):
        base = zipf_trace(100, 20, seed=5)
        widened = Trace(
            list(base.addresses), address_bits=base.address_bits + 3
        )
        assert trace_digest(base) != trace_digest(widened)

    def test_order_matters(self):
        fwd = Trace([1, 2], address_bits=2)
        rev = Trace([2, 1], address_bits=2)
        assert trace_digest(fwd) != trace_digest(rev)


class TestArtifactKey:
    def test_params_are_canonicalized(self):
        a = ArtifactKey.for_stage("d" * 64, "histograms", 1, max_level=3, x=1)
        b = ArtifactKey.for_stage("d" * 64, "histograms", 1, x=1, max_level=3)
        assert a == b
        assert a.digest == b.digest

    def test_every_coordinate_changes_the_digest(self):
        base = ArtifactKey.for_stage("d" * 64, "mrct", 1)
        assert base.digest != ArtifactKey.for_stage("e" * 64, "mrct", 1).digest
        assert base.digest != ArtifactKey.for_stage("d" * 64, "zerosets", 1).digest
        assert base.digest != ArtifactKey.for_stage("d" * 64, "mrct", 2).digest
        assert (
            base.digest
            != ArtifactKey.for_stage("d" * 64, "mrct", 1, max_level=2).digest
        )

    def test_digest_is_hex_and_stable(self):
        key = ArtifactKey.for_stage("a" * 64, "stripped", 1)
        assert len(key.digest) == 64
        assert key.digest == key.digest
        int(key.digest, 16)  # valid hex

    def test_str_is_informative(self):
        key = ArtifactKey.for_stage("f" * 64, "histograms", 1, max_level=4)
        text = str(key)
        assert "histograms" in text
        assert "max_level=4" in text
