"""Round-trip and corruption tests for the packed-MRCT stage codec."""

import struct

import pytest

from repro.core.vectorized import numpy_available
from repro.store import CorruptArtifact, PACKED_MRCT_CODEC
from repro.trace.strip import strip_trace
from repro.trace.synthetic import loop_nest_trace, zipf_trace

pytestmark = pytest.mark.skipif(not numpy_available(), reason="needs NumPy")


@pytest.fixture(scope="module", params=["loop", "zipf"])
def packed(request):
    from repro.core.prelude_fast import build_packed_mrct

    if request.param == "loop":
        trace = loop_nest_trace(32, 8)
    else:
        trace = zipf_trace(900, 120, seed=13)
    return build_packed_mrct(strip_trace(trace))


class TestRoundTrip:
    def test_exact_round_trip(self, packed):
        decoded = PACKED_MRCT_CODEC.decode(PACKED_MRCT_CODEC.encode(packed))
        assert decoded == packed

    def test_decoded_arrays_native_readonly_zero_copy(self, packed):
        import sys

        import numpy as np

        payload = PACKED_MRCT_CODEC.encode(packed)
        decoded = PACKED_MRCT_CODEC.decode(payload)
        assert decoded.matrix.dtype == np.uint64
        assert decoded.idents.dtype == np.int64
        assert decoded.weights.dtype == np.int64
        assert decoded.matrix.dtype.isnative
        # Decode returns read-only views: consumers share one buffer
        # (possibly an mmap of the entry file), so writes must raise.
        for arr in (decoded.matrix, decoded.idents, decoded.weights):
            assert not arr.flags.writeable
        with pytest.raises(ValueError):
            decoded.matrix[0, 0] ^= np.uint64(1)
        if sys.byteorder == "little":  # zero-copy only off the LE wire format
            raw = np.frombuffer(payload, dtype=np.uint8)
            for arr in (decoded.matrix, decoded.idents, decoded.weights):
                assert np.shares_memory(arr, raw)

    def test_empty_matrix_round_trips(self):
        from repro.core.prelude_fast import build_packed_mrct

        empty = build_packed_mrct(strip_trace(loop_nest_trace(4, 1)))
        assert empty.n_rows == 0
        assert PACKED_MRCT_CODEC.decode(PACKED_MRCT_CODEC.encode(empty)) == empty


class TestCorruption:
    def test_truncated_payload(self, packed):
        payload = PACKED_MRCT_CODEC.encode(packed)
        with pytest.raises(CorruptArtifact):
            PACKED_MRCT_CODEC.decode(payload[: len(payload) - 8])

    def test_trailing_garbage(self, packed):
        payload = PACKED_MRCT_CODEC.encode(packed)
        with pytest.raises(CorruptArtifact, match="trailing"):
            PACKED_MRCT_CODEC.decode(payload + b"\x00")

    def test_inconsistent_word_width(self, packed):
        payload = bytearray(PACKED_MRCT_CODEC.encode(packed))
        n_unique, words, rows = struct.unpack_from("<IIQ", payload)
        struct.pack_into("<IIQ", payload, 0, n_unique, words + 1, rows)
        with pytest.raises(CorruptArtifact, match="words"):
            PACKED_MRCT_CODEC.decode(bytes(payload))

    def test_out_of_range_identifier(self, packed):
        payload = bytearray(PACKED_MRCT_CODEC.encode(packed))
        header = struct.calcsize("<IIQ")
        struct.pack_into("<q", payload, header, -1)  # first ident negative
        with pytest.raises(CorruptArtifact, match="identifier"):
            PACKED_MRCT_CODEC.decode(bytes(payload))

    def test_nonpositive_weight(self, packed):
        payload = bytearray(PACKED_MRCT_CODEC.encode(packed))
        header = struct.calcsize("<IIQ")
        weights_offset = header + 8 * packed.n_rows
        struct.pack_into("<q", payload, weights_offset, 0)
        with pytest.raises(CorruptArtifact, match="weight"):
            PACKED_MRCT_CODEC.decode(bytes(payload))
