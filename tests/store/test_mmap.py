"""The memory-mapped warm read path: zero-copy hits, modes, corruption."""

import argparse
import tracemalloc

import pytest

from repro.core.vectorized import numpy_available
from repro.store import (
    ArtifactKey,
    ArtifactStore,
    MRCT_CODEC,
    PACKED_MRCT_CODEC,
    QUARANTINE_DIR,
    trace_digest,
)
from repro.trace.strip import strip_trace
from repro.trace.synthetic import zipf_trace

pytestmark = pytest.mark.skipif(not numpy_available(), reason="needs NumPy")


def _packed_entry(seed=17, refs=900, unique=120):
    from repro.core.prelude_fast import build_packed_mrct

    trace = zipf_trace(refs, unique, seed=seed)
    trace.name = f"zipf-{seed}"
    packed = build_packed_mrct(strip_trace(trace))
    key = ArtifactKey.for_stage(
        trace_digest(trace), PACKED_MRCT_CODEC.stage, PACKED_MRCT_CODEC.version
    )
    return key, packed


class TestModes:
    def test_auto_maps_zero_copy_codecs(self, tmp_path):
        key, packed = _packed_entry()
        ArtifactStore(tmp_path / "s").put(key, PACKED_MRCT_CODEC, packed)
        store = ArtifactStore(tmp_path / "s", memory_entries=0)
        got = store.get(key, PACKED_MRCT_CODEC)
        assert got == packed
        assert store.stats.mmap_hits == 1
        assert store.stats.hits == 1
        assert "mmap_hits" in store.stats.as_dict()
        assert not got.matrix.flags.writeable

    def test_auto_skips_codecs_without_zero_copy(self, tmp_path):
        from repro.core.mrct import build_mrct

        trace = zipf_trace(300, 40, seed=3)
        trace.name = "zipf-3"
        mrct = build_mrct(strip_trace(trace))
        key = ArtifactKey.for_stage(
            trace_digest(trace), MRCT_CODEC.stage, MRCT_CODEC.version
        )
        store = ArtifactStore(tmp_path / "s", memory_entries=0)
        store.put(key, MRCT_CODEC, mrct)
        got = store.get(key, MRCT_CODEC)
        assert got.sets == mrct.sets
        assert store.stats.mmap_hits == 0

    def test_never_disables_mapping(self, tmp_path):
        key, packed = _packed_entry()
        store = ArtifactStore(
            tmp_path / "s", memory_entries=0, mmap_reads="never"
        )
        store.put(key, PACKED_MRCT_CODEC, packed)
        assert store.get(key, PACKED_MRCT_CODEC) == packed
        assert store.stats.mmap_hits == 0

    def test_always_maps_any_codec(self, tmp_path):
        from repro.core.mrct import build_mrct

        trace = zipf_trace(300, 40, seed=3)
        trace.name = "zipf-3"
        mrct = build_mrct(strip_trace(trace))
        key = ArtifactKey.for_stage(
            trace_digest(trace), MRCT_CODEC.stage, MRCT_CODEC.version
        )
        store = ArtifactStore(
            tmp_path / "s", memory_entries=0, mmap_reads="always"
        )
        store.put(key, MRCT_CODEC, mrct)
        got = store.get(key, MRCT_CODEC)
        assert got.sets == mrct.sets
        assert store.stats.mmap_hits == 1

    def test_bool_aliases(self, tmp_path):
        assert ArtifactStore(tmp_path / "a", mmap_reads=True).mmap_reads == (
            "always"
        )
        assert ArtifactStore(tmp_path / "b", mmap_reads=False).mmap_reads == (
            "never"
        )

    def test_invalid_mode_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="mmap_reads"):
            ArtifactStore(tmp_path / "s", mmap_reads="sometimes")


class TestZeroCopy:
    def test_warm_hit_allocates_no_matrix_sized_buffer(self, tmp_path):
        """ISSUE acceptance: warm mmap decode is zero-copy."""
        key, packed = _packed_entry(seed=23, refs=6000, unique=900)
        ArtifactStore(tmp_path / "s").put(key, PACKED_MRCT_CODEC, packed)
        store = ArtifactStore(tmp_path / "s", memory_entries=0)
        matrix_bytes = packed.matrix.nbytes
        assert matrix_bytes > 100_000  # big enough to dominate overheads
        tracemalloc.start()
        try:
            got = store.get(key, PACKED_MRCT_CODEC)
            _, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        assert store.stats.mmap_hits == 1
        assert got == packed
        assert peak < matrix_bytes // 2

    def test_views_outlive_the_store(self, tmp_path):
        import numpy as np

        key, packed = _packed_entry()
        ArtifactStore(tmp_path / "s").put(key, PACKED_MRCT_CODEC, packed)
        store = ArtifactStore(tmp_path / "s", memory_entries=0)
        got = store.get(key, PACKED_MRCT_CODEC)
        del store  # the arrays keep the mapping alive on their own
        assert np.array_equal(got.matrix, packed.matrix)
        assert int(got.weights.sum()) == packed.total_conflict_sets


class TestCorruption:
    def test_corrupt_mapped_entry_quarantined(self, tmp_path):
        key, packed = _packed_entry()
        store = ArtifactStore(tmp_path / "s", memory_entries=0)
        store.put(key, PACKED_MRCT_CODEC, packed)
        path = store._entry_path(key)
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0xFF
        path.write_bytes(bytes(blob))
        assert store.get(key, PACKED_MRCT_CODEC) is None
        assert store.stats.misses == 1
        assert not path.exists()
        quarantined = list((tmp_path / "s" / QUARANTINE_DIR).glob("*"))
        assert len(quarantined) == 1
        assert quarantined[0].read_bytes() == bytes(blob)

    def test_empty_entry_file_is_a_miss(self, tmp_path):
        key, packed = _packed_entry()
        store = ArtifactStore(tmp_path / "s", memory_entries=0)
        store.put(key, PACKED_MRCT_CODEC, packed)
        path = store._entry_path(key)
        path.write_bytes(b"")  # mmap refuses zero-length maps
        assert store.get(key, PACKED_MRCT_CODEC) is None
        assert store.stats.mmap_hits == 0


class TestCliFlag:
    def test_resolve_store_honors_no_mmap(self, tmp_path):
        from repro.cli import _resolve_store

        args = argparse.Namespace(
            no_cache=False, cache_dir=str(tmp_path), no_mmap=True
        )
        assert _resolve_store(args).mmap_reads == "never"
        args.no_mmap = False
        assert _resolve_store(args).mmap_reads == "auto"
