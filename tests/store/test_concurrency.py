"""Store concurrency: the quarantine/rewrite race and eviction hammering.

The race under test: ``get`` reads corrupt bytes, and between that read
and its quarantine step a concurrent ``put`` atomically installs a
fresh, valid entry at the same path.  The old behavior renamed the path
unconditionally — quarantining (losing) the fresh entry.  The fixed
``_quarantine`` renames first, then compares the moved bytes against
the corrupt blob it actually read, restoring the entry on mismatch.
"""

from __future__ import annotations

import threading
import time

import pytest

import repro.store.fs as fs_module
from repro.core.mrct import build_mrct
from repro.store import (
    ArtifactKey,
    ArtifactStore,
    MRCT_CODEC,
    QUARANTINE_DIR,
    trace_digest,
)
from repro.trace.strip import strip_trace
from repro.trace.synthetic import zipf_trace


def _entry(seed: int = 5):
    trace = zipf_trace(400, 40, seed=seed)
    trace.name = f"conc-{seed}"
    key = ArtifactKey.for_stage(
        trace_digest(trace), MRCT_CODEC.stage, MRCT_CODEC.version
    )
    return key, build_mrct(strip_trace(trace))


def _quarantine_count(root) -> int:
    quarantine = root / QUARANTINE_DIR
    if not quarantine.is_dir():
        return 0
    return sum(1 for _ in quarantine.iterdir())


class TestQuarantineRace:
    def test_truly_corrupt_entry_still_quarantined(self, tmp_path) -> None:
        root = tmp_path / "s"
        store = ArtifactStore(root, memory_entries=0)
        key, mrct = _entry()
        store.put(key, MRCT_CODEC, mrct)
        path = store._entry_path(key)
        path.write_bytes(b"\x00garbage\x00")
        assert store.get(key, MRCT_CODEC) is None
        assert store.stats.corrupt == 1
        assert not path.exists()
        assert _quarantine_count(root) == 1

    def test_rewritten_entry_survives_stale_quarantine(
        self, tmp_path, monkeypatch
    ) -> None:
        """A put landing between corrupt-read and quarantine must win."""
        root = tmp_path / "s"
        writer = ArtifactStore(root, memory_entries=0)
        key, mrct = _entry()
        writer.put(key, MRCT_CODEC, mrct)
        path = writer._entry_path(key)
        good_blob = path.read_bytes()
        path.write_bytes(b"\x00torn-write\x00")

        real_unpack = fs_module.unpack_entry

        def racing_unpack(blob, version):
            try:
                return real_unpack(blob, version)
            except Exception:
                # deterministic interleave: the concurrent writer repairs
                # the entry after our corrupt read, before our quarantine
                path.write_bytes(good_blob)
                raise

        monkeypatch.setattr(fs_module, "unpack_entry", racing_unpack)
        reader = ArtifactStore(root, memory_entries=0)
        assert reader.get(key, MRCT_CODEC) is None  # the read *was* corrupt
        monkeypatch.setattr(fs_module, "unpack_entry", real_unpack)

        # the fresh entry was not quarantined: still readable, no corruption
        assert reader.stats.corrupt == 0
        assert _quarantine_count(root) == 0
        assert path.exists()
        fresh = ArtifactStore(root, memory_entries=0)
        got = fresh.get(key, MRCT_CODEC)
        assert got is not None
        assert got.sets == mrct.sets

    def test_quarantine_compares_moved_bytes(self, tmp_path) -> None:
        """Unit-level: _quarantine keeps an entry whose bytes changed."""
        root = tmp_path / "s"
        store = ArtifactStore(root, memory_entries=0)
        key, mrct = _entry()
        store.put(key, MRCT_CODEC, mrct)
        path = store._entry_path(key)
        fresh_blob = path.read_bytes()

        store._quarantine(path, ValueError("stale"), corrupt_blob=b"old-bytes")
        assert path.exists()
        assert path.read_bytes() == fresh_blob
        assert store.stats.corrupt == 0
        assert _quarantine_count(root) == 0

        store._quarantine(path, ValueError("real"), corrupt_blob=fresh_blob)
        assert not path.exists()
        assert store.stats.corrupt == 1
        assert _quarantine_count(root) == 1


class TestEvictionHammer:
    @pytest.mark.slow
    def test_two_clients_hammer_one_digest_under_lru_eviction(
        self, tmp_path
    ) -> None:
        """Two clients on the same digest + an LRU evictor: misses are
        fine, corruption/quarantine never happens, nothing crashes."""
        root = tmp_path / "s"
        key, mrct = _entry()
        stop = threading.Event()
        errors = []
        reads = {"hits": 0, "misses": 0}
        lock = threading.Lock()
        client_stores = []

        def client() -> None:
            store = ArtifactStore(root, max_bytes=None, memory_entries=0)
            client_stores.append(store)
            try:
                while not stop.is_set():
                    value = store.get(key, MRCT_CODEC)
                    if value is None:
                        with lock:
                            reads["misses"] += 1
                        store.put(key, MRCT_CODEC, mrct)
                    else:
                        with lock:
                            reads["hits"] += 1
                        if value.sets != mrct.sets:
                            raise AssertionError("decoded artifact mutated")
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        def evictor() -> None:
            store = ArtifactStore(root, max_bytes=None, memory_entries=0)
            try:
                while not stop.is_set():
                    store.prune(0)  # evict everything, repeatedly
                    time.sleep(0.001)
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        threads = [
            threading.Thread(target=client),
            threading.Thread(target=client),
            threading.Thread(target=evictor),
        ]
        for thread in threads:
            thread.start()
        time.sleep(1.5)
        stop.set()
        for thread in threads:
            thread.join(timeout=30)

        assert not errors, errors[:3]
        assert reads["hits"] + reads["misses"] > 10  # actually hammered
        # eviction causes misses, never corruption
        assert all(store.stats.corrupt == 0 for store in client_stores)
        assert _quarantine_count(root) == 0
