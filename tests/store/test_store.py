"""The artifact store: tiers, eviction, quarantine, concurrency, warm-start."""

import multiprocessing

import pytest

from repro.core.explorer import AnalyticalCacheExplorer
from repro.core.mrct import build_mrct
from repro.obs import Recorder
from repro.store import (
    ArtifactKey,
    ArtifactStore,
    MRCT_CODEC,
    QUARANTINE_DIR,
    default_cache_dir,
    trace_digest,
)
from repro.trace.strip import strip_trace
from repro.trace.synthetic import zipf_trace


def _make_trace(seed=21):
    trace = zipf_trace(600, 50, seed=seed)
    trace.name = f"zipf-{seed}"
    return trace


def _mrct_entry(trace):
    """A real (key, codec, value) triple for store exercises."""
    mrct = build_mrct(strip_trace(trace))
    key = ArtifactKey.for_stage(
        trace_digest(trace), MRCT_CODEC.stage, MRCT_CODEC.version
    )
    return key, mrct


class TestTiers:
    def test_miss_then_hit(self, tmp_path):
        store = ArtifactStore(tmp_path / "s")
        trace = _make_trace()
        key, mrct = _mrct_entry(trace)
        assert store.get(key, MRCT_CODEC) is None
        store.put(key, MRCT_CODEC, mrct)
        got = store.get(key, MRCT_CODEC)
        assert got.sets == mrct.sets
        assert store.stats.misses == 1
        assert store.stats.hits == 1
        assert store.stats.puts == 1

    def test_memory_tier_skips_disk(self, tmp_path):
        store = ArtifactStore(tmp_path / "s")
        key, mrct = _mrct_entry(_make_trace())
        store.put(key, MRCT_CODEC, mrct)
        first = store.get(key, MRCT_CODEC)
        assert first is store.get(key, MRCT_CODEC)  # decoded object reused
        assert store.stats.memory_hits >= 2  # put seeds the memory tier

    def test_fresh_instance_reads_from_disk(self, tmp_path):
        trace = _make_trace()
        key, mrct = _mrct_entry(trace)
        ArtifactStore(tmp_path / "s").put(key, MRCT_CODEC, mrct)
        cold = ArtifactStore(tmp_path / "s")
        got = cold.get(key, MRCT_CODEC)
        assert got.sets == mrct.sets
        assert cold.stats.memory_hits == 0
        assert cold.stats.bytes_read > 0

    def test_memory_tier_can_be_disabled(self, tmp_path):
        store = ArtifactStore(tmp_path / "s", memory_entries=0)
        key, mrct = _mrct_entry(_make_trace())
        store.put(key, MRCT_CODEC, mrct)
        store.get(key, MRCT_CODEC)
        assert store.stats.memory_hits == 0

    def test_recorder_counters_flow(self, tmp_path):
        store = ArtifactStore(tmp_path / "s")
        recorder = Recorder()
        key, mrct = _mrct_entry(_make_trace())
        store.get(key, MRCT_CODEC, recorder=recorder)
        store.put(key, MRCT_CODEC, mrct, recorder=recorder)
        fresh = ArtifactStore(tmp_path / "s")
        fresh.get(key, MRCT_CODEC, recorder=recorder)
        assert recorder.counters["store_misses"] == 1
        assert recorder.counters["store_hits"] == 1
        assert recorder.counters["store_bytes_written"] > 0
        assert recorder.counters["store_bytes_read"] > 0


class TestEviction:
    def test_lru_eviction_under_cap(self, tmp_path):
        store = ArtifactStore(tmp_path / "s", max_bytes=None)
        entries = []
        for seed in (1, 2, 3):
            key, mrct = _mrct_entry(_make_trace(seed))
            store.put(key, MRCT_CODEC, mrct)
            entries.append(key)
        total = store.total_bytes()
        assert total > 0
        # Touch the first entry so it becomes most-recently-used on disk.
        fresh = ArtifactStore(tmp_path / "s")
        fresh.get(entries[0], MRCT_CODEC)
        evicted = fresh.prune(max_bytes=total // 2)
        assert evicted >= 1
        assert fresh.total_bytes() <= total // 2
        assert fresh.stats.evictions == evicted
        # The freshly touched entry survived; an untouched one went first.
        survivors = {entry.path.stem for entry in fresh.entries()}
        assert entries[0].digest in survivors

    def test_put_auto_prunes_to_cap(self, tmp_path):
        key1, mrct1 = _mrct_entry(_make_trace(1))
        probe = ArtifactStore(tmp_path / "probe", max_bytes=None)
        probe.put(key1, MRCT_CODEC, mrct1)
        size = probe.total_bytes()
        store = ArtifactStore(tmp_path / "s", max_bytes=int(size * 1.5))
        store.put(key1, MRCT_CODEC, mrct1)
        key2, mrct2 = _mrct_entry(_make_trace(2))
        store.put(key2, MRCT_CODEC, mrct2)
        assert store.total_bytes() <= int(size * 1.5)
        assert store.stats.evictions >= 1

    def test_clear_removes_everything(self, tmp_path):
        store = ArtifactStore(tmp_path / "s")
        key, mrct = _mrct_entry(_make_trace())
        store.put(key, MRCT_CODEC, mrct)
        assert store.clear() == 1
        assert store.entries() == []
        fresh = ArtifactStore(tmp_path / "s")
        assert fresh.get(key, MRCT_CODEC) is None


class TestCorruption:
    def _entry_file(self, store):
        entries = store.entries()
        assert len(entries) == 1
        return entries[0].path

    def test_truncated_entry_is_a_quarantined_miss(self, tmp_path):
        store = ArtifactStore(tmp_path / "s")
        key, mrct = _mrct_entry(_make_trace())
        store.put(key, MRCT_CODEC, mrct)
        path = self._entry_file(store)
        path.write_bytes(path.read_bytes()[:-7])
        fresh = ArtifactStore(tmp_path / "s")
        assert fresh.get(key, MRCT_CODEC) is None
        assert fresh.stats.corrupt == 1
        assert fresh.stats.misses == 1
        quarantine = (tmp_path / "s" / QUARANTINE_DIR)
        assert quarantine.is_dir() and any(quarantine.iterdir())
        assert not path.exists()

    def test_bitflipped_entry_is_a_quarantined_miss(self, tmp_path):
        store = ArtifactStore(tmp_path / "s")
        key, mrct = _mrct_entry(_make_trace())
        store.put(key, MRCT_CODEC, mrct)
        path = self._entry_file(store)
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 2] ^= 0x40
        path.write_bytes(bytes(blob))
        fresh = ArtifactStore(tmp_path / "s")
        assert fresh.get(key, MRCT_CODEC) is None
        assert fresh.stats.corrupt == 1
        assert not path.exists()

    def test_recompute_after_quarantine_recovers(self, tmp_path):
        """A corrupt entry degrades to recompute-and-rewrite, not an error."""
        trace = _make_trace()
        store = ArtifactStore(tmp_path / "s")
        key, mrct = _mrct_entry(trace)
        store.put(key, MRCT_CODEC, mrct)
        path = self._entry_file(store)
        path.write_bytes(b"RARTgarbage")
        fresh = ArtifactStore(tmp_path / "s")
        assert fresh.get(key, MRCT_CODEC) is None
        fresh.put(key, MRCT_CODEC, mrct)
        again = ArtifactStore(tmp_path / "s")
        assert again.get(key, MRCT_CODEC).sets == mrct.sets


def _concurrent_writer(root, seed, results):
    trace = _make_trace(seed)
    key, mrct = _mrct_entry(trace)
    store = ArtifactStore(root)
    store.put(key, MRCT_CODEC, mrct)
    got = store.get(key, MRCT_CODEC)
    results.put((seed, got is not None and got.sets == mrct.sets))


class TestConcurrency:
    def test_two_process_writers_same_trace(self, tmp_path):
        """Two processes racing on the same key both succeed (atomic rename)
        and leave one valid entry behind."""
        root = str(tmp_path / "shared")
        results = multiprocessing.Queue()
        workers = [
            multiprocessing.Process(
                target=_concurrent_writer, args=(root, 77, results)
            )
            for _ in range(2)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join(timeout=60)
            assert worker.exitcode == 0
        outcomes = [results.get(timeout=10) for _ in range(2)]
        assert all(ok for _, ok in outcomes)
        # Exactly one live entry for the shared key, and it decodes.
        trace = _make_trace(77)
        key, mrct = _mrct_entry(trace)
        reader = ArtifactStore(root)
        assert len(reader.entries()) == 1
        assert reader.get(key, MRCT_CODEC).sets == mrct.sets
        assert reader.stats.corrupt == 0


class TestWarmStart:
    def test_second_exploration_hits_and_matches(self, tmp_path):
        trace = _make_trace()
        store = ArtifactStore(tmp_path / "s")
        cold = AnalyticalCacheExplorer(trace, store=store, engine="serial")
        cold_result = cold.explore(4)
        assert store.stats.puts > 0
        warm_store = ArtifactStore(tmp_path / "s")  # cold memory tier
        warm = AnalyticalCacheExplorer(trace, store=warm_store, engine="serial")
        warm_result = warm.explore(4)
        assert warm_store.stats.hits > 0
        assert warm_store.stats.puts == 0
        assert warm_result.to_json_dict() == cold_result.to_json_dict()

    def test_warm_start_crosses_engines(self, tmp_path):
        trace = _make_trace()
        store = ArtifactStore(tmp_path / "s")
        serial = AnalyticalCacheExplorer(
            trace, store=store, engine="serial"
        ).explore(2)
        for engine in ("streaming", "parallel", "vectorized", "auto", "bitmask"):
            warm_store = ArtifactStore(tmp_path / "s")
            result = AnalyticalCacheExplorer(
                trace, store=warm_store, engine=engine
            ).explore(2)
            assert result.to_json_dict() == serial.to_json_dict(), engine
            assert warm_store.stats.hits > 0, engine

    def test_bounded_max_level_truncates_full_entry(self, tmp_path):
        trace = _make_trace()
        store = ArtifactStore(tmp_path / "s")
        AnalyticalCacheExplorer(trace, store=store, engine="serial").explore(0)
        warm_store = ArtifactStore(tmp_path / "s")
        bounded = AnalyticalCacheExplorer(
            trace, max_depth=4, store=warm_store, engine="serial"
        )
        reference = AnalyticalCacheExplorer(
            trace, max_depth=4, engine="serial"
        )
        assert warm_store.stats.puts == 0 or warm_store.stats.hits > 0
        assert bounded.explore(0).to_json_dict() == reference.explore(0).to_json_dict()
        assert warm_store.stats.hits > 0

    def test_stats_describe_and_default_dir(self, tmp_path, monkeypatch):
        store = ArtifactStore(tmp_path / "s")
        key, mrct = _mrct_entry(_make_trace())
        store.put(key, MRCT_CODEC, mrct)
        summary = store.describe()
        assert summary["entries"] == 1
        assert summary["by_stage"]["mrct"]["entries"] == 1
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "env"))
        assert default_cache_dir() == str(tmp_path / "env")
        monkeypatch.delenv("REPRO_CACHE_DIR")
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path / "xdg"))
        assert default_cache_dir().startswith(str(tmp_path / "xdg"))
