"""StreamCheckpointCodec: round-trips, validation, store integration."""

from __future__ import annotations

import struct

import pytest

from repro.core.streaming import StreamingState
from repro.store import ArtifactStore
from repro.store.codec import (
    STAGE_CODECS,
    STREAM_CHECKPOINT_CODEC,
    CorruptArtifact,
)
from repro.stream import checkpoint_key

ADDRESSES = [1, 2, 3, 1, 2, 3, 7, 1, 9, 2, 3, 7, 1, 5, 2, 3]


def loaded_state(max_level=None, addresses=ADDRESSES) -> StreamingState:
    state = StreamingState(4, max_level=max_level)
    state.append(addresses)
    return state


class TestRoundTrip:
    @pytest.mark.parametrize("max_level", [None, 0, 2, 99])
    def test_snapshot_roundtrip_preserves_everything(self, max_level) -> None:
        state = loaded_state(max_level)
        blob = STREAM_CHECKPOINT_CODEC.encode(state.snapshot())
        restored = StreamingState.from_snapshot(
            STREAM_CHECKPOINT_CODEC.decode(blob)
        )
        assert restored.content_digest == state.content_digest
        assert restored.histograms() == state.histograms()
        assert restored.stack_addresses() == state.stack_addresses()
        assert restored.max_level == state.max_level
        # The restored state must remain appendable, bit-identically.
        state.append([11, 1, 2])
        restored.append([11, 1, 2])
        assert restored.histograms() == state.histograms()
        assert restored.content_digest == state.content_digest

    def test_empty_state_roundtrip(self) -> None:
        state = StreamingState(4)
        blob = STREAM_CHECKPOINT_CODEC.encode(state.snapshot())
        restored = StreamingState.from_snapshot(
            STREAM_CHECKPOINT_CODEC.decode(blob)
        )
        assert restored.total_refs == 0
        assert restored.content_digest == state.content_digest

    def test_encode_is_deterministic(self) -> None:
        a = STREAM_CHECKPOINT_CODEC.encode(loaded_state().snapshot())
        b = STREAM_CHECKPOINT_CODEC.encode(loaded_state().snapshot())
        assert a == b

    def test_registered_in_stage_codecs(self) -> None:
        assert (
            STAGE_CODECS[STREAM_CHECKPOINT_CODEC.stage]
            is STREAM_CHECKPOINT_CODEC
        )


class TestCorruption:
    def test_truncation_raises(self) -> None:
        blob = STREAM_CHECKPOINT_CODEC.encode(loaded_state().snapshot())
        for cut in (0, 8, len(blob) // 2, len(blob) - 1):
            with pytest.raises(CorruptArtifact):
                STREAM_CHECKPOINT_CODEC.decode(blob[:cut])

    def test_trailing_garbage_raises(self) -> None:
        blob = STREAM_CHECKPOINT_CODEC.encode(loaded_state().snapshot())
        with pytest.raises(CorruptArtifact):
            STREAM_CHECKPOINT_CODEC.decode(blob + b"\x00")

    def test_zero_address_bits_raises(self) -> None:
        blob = STREAM_CHECKPOINT_CODEC.encode(loaded_state().snapshot())
        with pytest.raises(CorruptArtifact, match="address_bits"):
            STREAM_CHECKPOINT_CODEC.decode(
                struct.pack("<I", 0) + blob[4:]
            )

    def test_repeated_stack_address_raises(self) -> None:
        snapshot = loaded_state().snapshot()
        snapshot["stack"] = [1] * len(snapshot["stack"])
        blob = STREAM_CHECKPOINT_CODEC.encode(snapshot)
        with pytest.raises(CorruptArtifact, match="repeats"):
            STREAM_CHECKPOINT_CODEC.decode(blob)

    def test_out_of_range_stack_address_raises(self) -> None:
        snapshot = loaded_state().snapshot()
        snapshot["stack"] = [1 << 10] + snapshot["stack"][1:]
        blob = STREAM_CHECKPOINT_CODEC.encode(snapshot)
        with pytest.raises(CorruptArtifact, match="out of range"):
            STREAM_CHECKPOINT_CODEC.decode(blob)

    def test_zero_occurrence_count_raises(self) -> None:
        snapshot = loaded_state().snapshot()
        snapshot["occurrences"] = [0] + snapshot["occurrences"][1:]
        blob = STREAM_CHECKPOINT_CODEC.encode(snapshot)
        with pytest.raises(CorruptArtifact, match="occurrence"):
            STREAM_CHECKPOINT_CODEC.decode(blob)

    def test_occurrences_exceeding_total_raise(self) -> None:
        snapshot = loaded_state().snapshot()
        snapshot["total_refs"] = 1
        blob = STREAM_CHECKPOINT_CODEC.encode(snapshot)
        with pytest.raises(CorruptArtifact, match="exceed"):
            STREAM_CHECKPOINT_CODEC.decode(blob)

    def test_level_count_mismatch_raises(self) -> None:
        snapshot = loaded_state().snapshot()
        snapshot["counts"] = snapshot["counts"][:-1]
        blob = STREAM_CHECKPOINT_CODEC.encode(snapshot)
        with pytest.raises(CorruptArtifact, match="levels"):
            STREAM_CHECKPOINT_CODEC.decode(blob)


class TestStoreIntegration:
    def test_put_get_through_the_store(self, tmp_path) -> None:
        store = ArtifactStore(tmp_path / "store")
        state = loaded_state()
        key = checkpoint_key(state.content_digest, None)
        store.put(key, STREAM_CHECKPOINT_CODEC, state.snapshot())
        snapshot = store.get(key, STREAM_CHECKPOINT_CODEC)
        restored = StreamingState.from_snapshot(snapshot)
        assert restored.histograms() == state.histograms()

    def test_keys_separate_bounds_and_digests(self) -> None:
        state = loaded_state()
        digest = state.content_digest
        assert checkpoint_key(digest, None) != checkpoint_key(digest, 3)
        other = loaded_state(addresses=ADDRESSES[:-1]).content_digest
        assert checkpoint_key(digest, None) != checkpoint_key(other, None)
