"""Versioned binary serialization: round-trips and corruption detection."""

import pytest

from repro.core.mrct import build_mrct
from repro.core.postlude import compute_level_histograms
from repro.core.zerosets import build_zero_one_sets
from repro.store import (
    CorruptArtifact,
    HISTOGRAMS_CODEC,
    MRCT_CODEC,
    STAGE_CODECS,
    STRIPPED_CODEC,
    ZEROSETS_CODEC,
    pack_entry,
    unpack_entry,
)
from repro.trace.strip import strip_trace
from repro.trace.synthetic import zipf_trace
from repro.trace.trace import Trace
from tests.conftest import PAPER_TRACE_BITS


@pytest.fixture(
    scope="module",
    params=["paper", "zipf"],
)
def pipeline(request):
    """A trace and every pipeline product derived from it."""
    if request.param == "paper":
        trace = Trace.from_bit_strings(PAPER_TRACE_BITS, name="paper-table-1")
    else:
        trace = zipf_trace(800, 60, seed=11)
    stripped = strip_trace(trace)
    zerosets = build_zero_one_sets(stripped)
    mrct = build_mrct(stripped)
    histograms = compute_level_histograms(zerosets, mrct)
    return trace, stripped, zerosets, mrct, histograms


class TestContainer:
    def test_round_trip(self):
        payload = b"the payload"
        assert unpack_entry(pack_entry(3, payload), 3) == payload

    def test_bad_magic(self):
        blob = b"XXXX" + pack_entry(1, b"p")[4:]
        with pytest.raises(CorruptArtifact, match="magic"):
            unpack_entry(blob, 1)

    def test_truncated_header(self):
        with pytest.raises(CorruptArtifact, match="header"):
            unpack_entry(b"RA", 1)

    def test_truncated_payload(self):
        blob = pack_entry(1, b"some payload bytes")
        with pytest.raises(CorruptArtifact, match="truncated"):
            unpack_entry(blob[:-5], 1)

    def test_flipped_bit_fails_checksum(self):
        blob = bytearray(pack_entry(1, b"sensitive data"))
        blob[-3] ^= 0x10
        with pytest.raises(CorruptArtifact, match="checksum"):
            unpack_entry(bytes(blob), 1)

    def test_codec_version_mismatch(self):
        blob = pack_entry(1, b"old format")
        with pytest.raises(CorruptArtifact, match="version"):
            unpack_entry(blob, 2)


class TestStageCodecs:
    def test_stripped_round_trip(self, pipeline):
        trace, stripped, *_ = pipeline
        payload = STRIPPED_CODEC.encode(stripped)
        decoded = STRIPPED_CODEC.decode(payload, context=trace)
        assert decoded.unique_addresses == stripped.unique_addresses
        assert list(decoded.id_sequence) == list(stripped.id_sequence)
        assert decoded.id_of == stripped.id_of
        assert decoded.address_bits == stripped.address_bits
        assert decoded.n == stripped.n
        assert decoded.trace is trace

    def test_stripped_needs_context(self, pipeline):
        _, stripped, *_ = pipeline
        with pytest.raises(ValueError, match="raw trace"):
            STRIPPED_CODEC.decode(STRIPPED_CODEC.encode(stripped))

    def test_stripped_rejects_wrong_trace(self, pipeline):
        trace, stripped, *_ = pipeline
        other = Trace(
            list(trace.addresses) + [0], address_bits=trace.address_bits
        )
        with pytest.raises(CorruptArtifact, match="references"):
            STRIPPED_CODEC.decode(STRIPPED_CODEC.encode(stripped), context=other)

    def test_zerosets_round_trip(self, pipeline):
        *_, zerosets, _, _ = pipeline
        decoded = ZEROSETS_CODEC.decode(ZEROSETS_CODEC.encode(zerosets))
        assert decoded == zerosets

    def test_mrct_round_trip(self, pipeline):
        *_, mrct, _ = pipeline
        decoded = MRCT_CODEC.decode(MRCT_CODEC.encode(mrct))
        assert decoded.n_unique == mrct.n_unique
        assert decoded.sets == mrct.sets

    def test_histograms_round_trip(self, pipeline):
        *_, histograms = pipeline
        decoded = HISTOGRAMS_CODEC.decode(HISTOGRAMS_CODEC.encode(histograms))
        assert sorted(decoded) == sorted(histograms)
        for level, histogram in histograms.items():
            assert decoded[level].level == histogram.level
            assert decoded[level].counts == histogram.counts

    def test_truncated_stage_payload_is_corrupt(self, pipeline):
        *_, mrct, _ = pipeline
        payload = MRCT_CODEC.encode(mrct)
        with pytest.raises(CorruptArtifact):
            MRCT_CODEC.decode(payload[: len(payload) // 2])

    def test_trailing_garbage_is_corrupt(self, pipeline):
        *_, zerosets, _, _ = pipeline
        with pytest.raises(CorruptArtifact, match="trailing"):
            ZEROSETS_CODEC.decode(ZEROSETS_CODEC.encode(zerosets) + b"\x00")

    def test_registry_covers_every_stage(self):
        assert sorted(STAGE_CODECS) == [
            "histograms",
            "mrct",
            "packed-mrct",
            "policy-misses",
            "stream-checkpoint",
            "stripped",
            "zerosets",
        ]
        for stage, codec in STAGE_CODECS.items():
            assert codec.stage == stage
            assert codec.version >= 1
