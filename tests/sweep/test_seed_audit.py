"""Deterministic-seed audit of the benchmark code.

Benchmark numbers are only comparable across runs when every synthetic
trace is generated from a pinned seed.  This walks the AST of every
file under ``benchmarks/`` (plus the serve load-smoke test, which
fabricates its own request corpus) and rejects any call to a seeded
generator that leans on the default seed instead of passing one
explicitly — a grep-proof regression gate for satellite drift.
"""

import ast
import glob
import os

#: Generators whose output depends on a ``seed`` parameter.  The pure
#: arithmetic generators (sequential/strided/loop_nest/interleaved) are
#: deterministic without one and stay out of scope.
SEEDED_GENERATORS = frozenset(
    {
        "random_trace",
        "zipf_trace",
        "markov_trace",
        "adversarial_lowbit_trace",
        "skewed_trace",
    }
)

ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), "..", ".."))

AUDITED_FILES = sorted(
    glob.glob(os.path.join(ROOT, "benchmarks", "*.py"))
) + [os.path.join(ROOT, "tests", "serve", "test_load_smoke.py")]


def called_name(node):
    """The terminal attribute/name a Call invokes, or None."""
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def seedless_calls(path):
    """(lineno, name) for every seeded-generator call without seed=."""
    with open(path, encoding="utf-8") as handle:
        tree = ast.parse(handle.read(), filename=path)
    violations = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        name = called_name(node)
        if name not in SEEDED_GENERATORS:
            continue
        keywords = {kw.arg for kw in node.keywords}
        if "seed" not in keywords:
            violations.append((node.lineno, name))
    return violations


def test_audit_covers_files():
    assert len(AUDITED_FILES) > 5
    for path in AUDITED_FILES:
        assert os.path.exists(path), path


def test_no_seedless_synthetic_traces_in_benchmarks():
    offenders = {}
    for path in AUDITED_FILES:
        violations = seedless_calls(path)
        if violations:
            offenders[os.path.relpath(path, ROOT)] = violations
    assert not offenders, (
        "seedless synthetic-generator calls make benchmark numbers "
        f"non-reproducible: {offenders}"
    )


def test_audit_detects_a_seedless_call(tmp_path):
    """The auditor itself must actually catch the pattern it polices."""
    sample = tmp_path / "bad_bench.py"
    sample.write_text(
        "from repro.trace.synthetic import zipf_trace\n"
        "trace = zipf_trace(100, 10)\n"
        "ok = zipf_trace(100, 10, seed=1)\n",
        encoding="utf-8",
    )
    assert seedless_calls(str(sample)) == [(2, "zipf_trace")]
