"""`repro sweep` end to end through the CLI entry point."""

import json

import pytest

from repro.cli import main
from repro.obs.manifest import validate_manifest
from repro.sweep import spec_from_dict, validate_sweep_report
from repro.sweep.spec import SPEC_SCHEMA


def write_spec(tmp_path, name="cli-tiny", **overrides):
    document = {
        "schema": SPEC_SCHEMA,
        "name": name,
        "axes": {
            "traces": ["loop:8x2"],
            "engines": ["serial"],
        },
        "budgets": [0],
        "execution": {"workers": 1, "timeout_s": 60.0, "retries": 0,
                      "backoff_s": 0.01},
    }
    document.update(overrides)
    path = tmp_path / f"{name}.yaml"
    path.write_text(spec_from_dict(document).to_yaml_text(), encoding="utf-8")
    return str(path)


def fake_baseline_file(tmp_path, wall_s):
    (tmp_path / "BENCH_fake.json").write_text(
        json.dumps(
            {
                "schema": "repro-bench-postlude/1",
                "python": "3.12.0",
                "repeats": 1,
                "platform": "test",
                "numpy": None,
                "results": [
                    {
                        "engine": "serial",
                        "trace": "loop-8x2",
                        "N": 16,
                        "N_prime": 8,
                        "levels": 4,
                        "wall_s": wall_s,
                        "peak_mem": 100,
                        "match": True,
                    }
                ],
            }
        ),
        encoding="utf-8",
    )


class TestPlan:
    def test_plan_output_is_byte_stable(self, tmp_path, capsys):
        spec = write_spec(tmp_path)
        assert main(["sweep", spec, "--plan"]) == 0
        first = capsys.readouterr().out
        assert main(["sweep", spec, "--plan"]) == 0
        second = capsys.readouterr().out
        assert first == second
        document = json.loads(first)
        assert document["schema"] == "repro-sweep-plan/1"
        assert [c["id"] for c in document["cells"]] == [
            "loop:8x2/serial/auto/cold/lru/L1"
        ]


class TestRun:
    def test_inline_run_writes_all_artifacts(self, tmp_path, capsys):
        spec = write_spec(tmp_path)
        report_path = tmp_path / "report.json"
        md_path = tmp_path / "report.md"
        manifest_path = tmp_path / "manifest.json"
        code = main(
            [
                "sweep",
                spec,
                "--pool",
                "inline",
                "--no-cache",
                "-o",
                str(report_path),
                "--markdown",
                str(md_path),
                "--manifest-out",
                str(manifest_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "sweep cli-tiny: 1 cells" in out
        assert "1 ok, 0 quarantined" in out

        report = json.loads(report_path.read_text(encoding="utf-8"))
        validate_sweep_report(report)
        assert report["summary"] == {
            "total": 1,
            "ok": 1,
            "quarantined": 0,
            "skipped": 0,
            "attempts": 1,
            "retries": 0,
            "timeouts": 0,
        }

        assert "# Sweep report: cli-tiny" in md_path.read_text(
            encoding="utf-8"
        )

        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        validate_manifest(manifest)
        assert manifest["engine"] == "sweep"
        assert manifest["sweep"]["sweep_cells_ok"] == 1

    def test_json_flag_prints_report(self, tmp_path, capsys):
        spec = write_spec(tmp_path)
        assert main(["sweep", spec, "--pool", "inline", "--no-cache",
                     "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        validate_sweep_report(report)

    def test_quarantined_cell_exits_nonzero(self, tmp_path, capsys):
        # A cell that cannot finish by its deadline: a trace big enough
        # that the process backend's first poll finds the worker still
        # alive past --timeout, kills it, and quarantines the cell.
        spec = write_spec(
            tmp_path,
            name="cli-hang",
            axes={"traces": ["zipf:60000:800:1"], "engines": ["serial"]},
        )
        code = main(
            [
                "sweep",
                spec,
                "--pool",
                "process",
                "--no-cache",
                "--timeout",
                "0.01",
                "--retries",
                "0",
            ]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "1 quarantined" in out
        assert "killed after" in out


class TestRegressions:
    def run_against_baseline(self, tmp_path, extra_args):
        spec = write_spec(
            tmp_path,
            name="cli-reg",
            report={"tolerance": 0.001, "baselines": ["BENCH_fake.json"]},
        )
        # Baseline so fast any real run regresses past tolerance.
        fake_baseline_file(tmp_path, wall_s=1e-07)
        argv = [
            "sweep",
            spec,
            "--pool",
            "inline",
            "--no-cache",
            "--baseline-dir",
            str(tmp_path),
        ] + extra_args
        return main(argv)

    def test_regression_reported_but_exit_zero_by_default(
        self, tmp_path, capsys
    ):
        assert self.run_against_baseline(tmp_path, []) == 0
        assert "regression" in capsys.readouterr().out

    def test_fail_on_regression_exits_nonzero(self, tmp_path, capsys):
        code = self.run_against_baseline(tmp_path, ["--fail-on-regression"])
        assert code == 1
        assert "regression" in capsys.readouterr().out

    def test_tolerance_override_suppresses_regression(self, tmp_path, capsys):
        code = self.run_against_baseline(
            tmp_path, ["--fail-on-regression", "--tolerance", "1e12"]
        )
        assert code == 0
