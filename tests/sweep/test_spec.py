"""Sweep spec parsing: strictness, trace grammar, validation."""

import pytest

from repro.sweep import SPEC_SCHEMA, SweepSpecError, load_spec, spec_from_dict
from repro.sweep.spec import parse_trace_entry, spec_from_yaml


def minimal_document(**overrides):
    document = {
        "schema": SPEC_SCHEMA,
        "name": "t",
        "axes": {
            "traces": ["loop:8x2"],
            "engines": ["serial"],
        },
        "budgets": [0],
    }
    document.update(overrides)
    return document


class TestParsing:
    def test_minimal_spec(self):
        spec = spec_from_dict(minimal_document())
        assert spec.name == "t"
        assert spec.traces == ("loop:8x2",)
        assert spec.engines == ("serial",)
        assert spec.preludes == ("auto",)
        assert spec.warmth == ("cold",)
        assert spec.policies == ("lru",)
        assert spec.levels == (1,)

    def test_schema_field_required(self):
        with pytest.raises(SweepSpecError, match="schema"):
            spec_from_dict({"name": "t", "axes": {}})

    def test_not_a_mapping(self):
        with pytest.raises(SweepSpecError, match="mapping"):
            spec_from_dict(["not", "a", "spec"])

    def test_missing_axes(self):
        with pytest.raises(SweepSpecError, match="name.*axes|axes"):
            spec_from_dict({"schema": SPEC_SCHEMA, "name": "t"})

    def test_missing_trace_axis(self):
        document = minimal_document()
        del document["axes"]["traces"]
        with pytest.raises(SweepSpecError, match="traces/engines"):
            spec_from_dict(document)

    def test_full_document_round_trips(self):
        document = {
            "schema": SPEC_SCHEMA,
            "name": "full",
            "seed": 7,
            "scale": "small",
            "axes": {
                "traces": ["crc", "zipf:400:64:1"],
                "engines": ["serial", "vectorized"],
                "preludes": ["fast", "python"],
                "warmth": ["cold", "warm"],
                "policies": ["lru", "fifo"],
                "levels": [1, 2],
            },
            "budgets": [0, 8],
            "percents": [5.0],
            "max_depth": 64,
            "l2_depth": 16,
            "include": [{"trace": "crc", "engine": "serial", "prelude": "auto"}],
            "exclude": [{"engine": "vectorized", "policy": "fifo"}],
            "execution": {
                "workers": 3,
                "timeout_s": 10.0,
                "retries": 2,
                "backoff_s": 0.5,
            },
            "report": {"tolerance": 2.0, "baselines": ["BENCH_postlude.json"]},
        }
        spec = spec_from_dict(document)
        assert spec.to_dict() == document
        assert spec_from_dict(spec.to_dict()) == spec


class TestStrictness:
    """Unknown fields fail loudly, mirroring the serve wire protocol."""

    def test_unknown_top_level_field(self):
        with pytest.raises(SweepSpecError, match="unknown fields.*'workerz'"):
            spec_from_dict(minimal_document(workerz=3))

    def test_unknown_axis(self):
        document = minimal_document()
        document["axes"]["engins"] = ["serial"]
        with pytest.raises(SweepSpecError, match="spec.axes.*engins"):
            spec_from_dict(document)

    def test_unknown_execution_field(self):
        document = minimal_document(execution={"worker_count": 2})
        with pytest.raises(SweepSpecError, match="spec.execution"):
            spec_from_dict(document)

    def test_unknown_report_field(self):
        document = minimal_document(report={"toleranse": 1.0})
        with pytest.raises(SweepSpecError, match="spec.report"):
            spec_from_dict(document)

    def test_unknown_rule_axis(self):
        document = minimal_document(exclude=[{"colour": "red"}])
        with pytest.raises(SweepSpecError, match="exclude\\[0\\]"):
            spec_from_dict(document)

    def test_empty_rule(self):
        document = minimal_document(include=[{}])
        with pytest.raises(SweepSpecError, match="at least one axis"):
            spec_from_dict(document)


class TestAxisValidation:
    def test_unknown_engine(self):
        document = minimal_document()
        document["axes"]["engines"] = ["warp-drive"]
        with pytest.raises(ValueError):
            spec_from_dict(document)

    def test_unknown_workload(self):
        document = minimal_document()
        document["axes"]["traces"] = ["quicksort3000"]
        with pytest.raises(SweepSpecError, match="unknown workload"):
            spec_from_dict(document)

    def test_unknown_prelude(self):
        document = minimal_document()
        document["axes"]["preludes"] = ["turbo"]
        with pytest.raises(SweepSpecError, match="preludes"):
            spec_from_dict(document)

    def test_unknown_policy(self):
        document = minimal_document()
        document["axes"]["policies"] = ["mru"]
        with pytest.raises(SweepSpecError, match="policies"):
            spec_from_dict(document)

    def test_bad_warmth(self):
        document = minimal_document()
        document["axes"]["warmth"] = ["lukewarm"]
        with pytest.raises(SweepSpecError, match="warmth"):
            spec_from_dict(document)

    def test_bad_level(self):
        document = minimal_document()
        document["axes"]["levels"] = [3]
        with pytest.raises(SweepSpecError, match="levels"):
            spec_from_dict(document)

    def test_duplicate_axis_entries(self):
        document = minimal_document()
        document["axes"]["engines"] = ["serial", "serial"]
        with pytest.raises(SweepSpecError, match="duplicate"):
            spec_from_dict(document)

    def test_budget_or_percent_required(self):
        document = minimal_document()
        document["budgets"] = []
        with pytest.raises(SweepSpecError, match="budget or percent"):
            spec_from_dict(document)

    def test_max_depth_power_of_two(self):
        with pytest.raises(SweepSpecError, match="power of two"):
            spec_from_dict(minimal_document(max_depth=48))

    def test_negative_budget(self):
        with pytest.raises(SweepSpecError, match="budgets"):
            spec_from_dict(minimal_document(budgets=[-1]))

    def test_bad_scale(self):
        with pytest.raises(SweepSpecError, match="scale"):
            spec_from_dict(minimal_document(scale="gigantic"))


class TestTraceGrammar:
    def test_workload_entry(self):
        assert parse_trace_entry("crc") == {"kind": "workload", "name": "crc"}

    def test_loop_entry(self):
        assert parse_trace_entry("loop:1024x100") == {
            "kind": "loop",
            "footprint": 1024,
            "iterations": 100,
        }

    def test_loop_mix_entry(self):
        assert parse_trace_entry("loop-mix:512x150") == {
            "kind": "loop-mix",
            "footprint": 512,
            "iterations": 150,
        }

    def test_zipf_entry_with_seed(self):
        assert parse_trace_entry("zipf:400:64:9") == {
            "kind": "zipf",
            "n": 400,
            "unique": 64,
            "seed": 9,
        }

    def test_zipf_entry_default_seed(self):
        assert parse_trace_entry("zipf:400:64", default_seed=5)["seed"] == 5

    def test_markov_entry(self):
        assert parse_trace_entry("markov:60000:1000:0.9:3") == {
            "kind": "markov",
            "n": 60000,
            "unique": 1000,
            "locality": 0.9,
            "seed": 3,
        }

    def test_random_entry(self):
        assert parse_trace_entry("random:100:16") == {
            "kind": "random",
            "n": 100,
            "footprint": 16,
            "seed": 0,
        }

    def test_unknown_generator(self):
        with pytest.raises(SweepSpecError, match="unknown synthetic"):
            parse_trace_entry("fractal:10:2")

    def test_malformed_parameters(self):
        with pytest.raises(SweepSpecError, match="bad synthetic"):
            parse_trace_entry("loop:axb")
        with pytest.raises(SweepSpecError, match="bad synthetic"):
            parse_trace_entry("zipf:100")


class TestYaml:
    def test_yaml_round_trip(self):
        spec = spec_from_dict(minimal_document())
        assert spec_from_yaml(spec.to_yaml_text()) == spec

    def test_invalid_yaml(self):
        with pytest.raises(SweepSpecError, match="not valid YAML"):
            spec_from_yaml("{unclosed: [")

    def test_load_spec(self, tmp_path):
        spec = spec_from_dict(minimal_document())
        path = tmp_path / "spec.yaml"
        path.write_text(spec.to_yaml_text(), encoding="utf-8")
        assert load_spec(str(path)) == spec

    def test_committed_specs_parse(self):
        import os

        root = os.path.join(os.path.dirname(__file__), "..", "..")
        sweeps = os.path.join(root, "benchmarks", "sweeps")
        names = sorted(os.listdir(sweeps))
        assert names, "benchmarks/sweeps must carry committed specs"
        for name in names:
            spec = load_spec(os.path.join(sweeps, name))
            assert spec.name == os.path.splitext(name)[0]
