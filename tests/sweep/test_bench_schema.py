"""The unified bench validator round-trips every committed artifact."""

import copy
import json
import os
import sys

import pytest

from repro.sweep.schema import BENCH_SCHEMAS, validate_bench

ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), "..", ".."))

BENCH_FILES = {
    "postlude": "BENCH_postlude.json",
    "prelude": "BENCH_prelude.json",
    "store": "BENCH_store.json",
    "parallel": "BENCH_parallel.json",
    "serve": "BENCH_serve.json",
    "stream": "BENCH_stream.json",
}


def load(name):
    with open(os.path.join(ROOT, BENCH_FILES[name]), encoding="utf-8") as fh:
        return json.load(fh)


class TestCommittedRoundTrip:
    @pytest.mark.parametrize("name", sorted(BENCH_FILES))
    def test_committed_document_validates(self, name):
        document = load(name)
        schema = validate_bench(document)
        assert schema == f"repro-bench-{name}/1"

    @pytest.mark.parametrize("name", sorted(BENCH_FILES))
    def test_harness_delegate_accepts_committed_document(self, name):
        """Each bench module's validate_results is the unified validator."""
        bench_dir = os.path.join(ROOT, "benchmarks")
        sys.path.insert(0, bench_dir)
        try:
            module = __import__(f"bench_{name}")
        finally:
            sys.path.remove(bench_dir)
        module.validate_results(load(name))
        with pytest.raises(ValueError, match="schema"):
            module.validate_results({"schema": "repro-bench-wrong/1"})

    def test_registry_covers_every_committed_schema(self):
        committed = {load(name)["schema"] for name in BENCH_FILES}
        assert committed == set(BENCH_SCHEMAS)


class TestRejections:
    def test_unknown_schema(self):
        with pytest.raises(ValueError, match="unknown bench schema"):
            validate_bench({"schema": "repro-bench-quantum/1"})

    def test_not_a_dict(self):
        with pytest.raises(ValueError, match="JSON object"):
            validate_bench(["rows"])

    def test_expect_mismatch(self):
        document = load("postlude")
        with pytest.raises(ValueError, match="repro-bench-prelude/1"):
            validate_bench(document, expect="repro-bench-prelude/1")

    def test_missing_row_field(self):
        document = copy.deepcopy(load("postlude"))
        del document["results"][0]["wall_s"]
        with pytest.raises(ValueError, match="result fields"):
            validate_bench(document)

    def test_extra_row_field(self):
        document = copy.deepcopy(load("prelude"))
        document["results"][0]["bonus"] = 1
        with pytest.raises(ValueError, match="result fields"):
            validate_bench(document)

    def test_divergent_row_rejected(self):
        document = copy.deepcopy(load("postlude"))
        document["results"][0]["match"] = False
        with pytest.raises(ValueError, match="diverged"):
            validate_bench(document)

    def test_negative_measurement_rejected(self):
        document = copy.deepcopy(load("postlude"))
        document["results"][0]["wall_s"] = -0.1
        with pytest.raises(ValueError, match="negative"):
            validate_bench(document)

    def test_store_warm_miss_rejected(self):
        document = copy.deepcopy(load("store"))
        document["results"][0]["warm_hits"] = 0
        with pytest.raises(ValueError, match="never hit the store"):
            validate_bench(document)

    def test_parallel_unknown_engine_rejected(self):
        document = copy.deepcopy(load("parallel"))
        document["results"][0]["engine"] = "serial"
        with pytest.raises(ValueError, match="unexpected engine"):
            validate_bench(document)

    def test_serve_request_accounting_enforced(self):
        document = copy.deepcopy(load("serve"))
        document["results"]["server"]["requests_total"] += 1
        with pytest.raises(ValueError, match="requests"):
            validate_bench(document)

    def test_stream_checkpoint_divergence_rejected(self):
        document = copy.deepcopy(load("stream"))
        document["results"]["checkpoint"]["roundtrip_ok"] = False
        with pytest.raises(ValueError, match="round-trip"):
            validate_bench(document)

    def test_stream_oversized_tail_rejected(self):
        document = copy.deepcopy(load("stream"))
        document["config"]["tail_refs"] = document["config"]["total_refs"]
        with pytest.raises(ValueError, match="tail"):
            validate_bench(document)

    def test_summary_errors_rejected(self):
        document = copy.deepcopy(load("serve"))
        document["summary"]["errors"] = 3
        with pytest.raises(ValueError, match="failed or diverged"):
            validate_bench(document)
