"""Sweep cells produce byte-identical results to the legacy bench paths.

``repro.sweep.scheduler.run_cell`` must be a *relabelling* of the
direct ``explore_request`` call the benchmark harnesses make — same
trace resolution, same scenario, same report — or the migrated
benchmarks would silently measure something else.  These tests pin the
equivalence exactly: ``ExplorationReport.to_json_dict()`` is a pure
deterministic function of the inputs, so equality is ``==``, not
approx.
"""

from repro.core.request import ExplorationRequest, explore_request
from repro.scenario.spec import ScenarioSpec
from repro.sweep import SweepScheduler, plan_sweep, spec_from_dict
from repro.sweep.scheduler import resolve_trace
from repro.sweep.spec import SPEC_SCHEMA

BUDGETS = (0, 8)


def make_plan(traces, engines, preludes=("auto",)):
    return plan_sweep(
        spec_from_dict(
            {
                "schema": SPEC_SCHEMA,
                "name": "parity",
                "axes": {
                    "traces": list(traces),
                    "engines": list(engines),
                    "preludes": list(preludes),
                },
                "budgets": list(BUDGETS),
            }
        )
    )


def legacy_report(entry, engine, prelude="auto"):
    """The report the pre-sweep bench path computes for one config."""
    trace = resolve_trace(entry)
    request = ExplorationRequest.single(
        trace,
        budgets=BUDGETS,
        scenario=ScenarioSpec(engine=engine, prelude=prelude),
    )
    return explore_request(request).to_json_dict()


def test_sweep_cells_match_direct_exploration():
    plan = make_plan(
        traces=("loop:16x4", "zipf:400:64:1"),
        engines=("serial", "vectorized"),
    )
    run = SweepScheduler(plan, kind="inline").run()
    assert all(record.status == "ok" for record in run.records)
    by_id = {record.cell_id: record for record in run.records}
    for cell in plan.cells:
        record = by_id[cell.cell_id]
        assert record.report == legacy_report(cell.trace, cell.engine), (
            cell.cell_id
        )


def test_trace_names_match_bench_conventions():
    plan = make_plan(traces=("loop:16x4", "zipf:400:64:1"), engines=("serial",))
    run = SweepScheduler(plan, kind="inline").run()
    assert sorted(record.trace_name for record in run.records) == [
        "loop-16x4",
        "zipf-400-64",
    ]


def test_prelude_pipelines_agree():
    """bench_prelude's core assertion, via the sweep path: the python

    and fast preludes feed the engines identical inputs, so exploration
    results must be identical across the prelude axis."""
    plan = make_plan(
        traces=("loop:16x4",),
        engines=("vectorized",),
        preludes=("python", "fast"),
    )
    run = SweepScheduler(plan, kind="inline").run()
    reports = [record.report for record in run.records]
    assert len(reports) == 2
    assert reports[0] == reports[1]
    assert reports[0] == legacy_report("loop:16x4", "vectorized", "python")


def test_process_backend_matches_inline():
    """Worker isolation must not change results (fork-safe execution)."""
    plan = make_plan(traces=("loop:16x4",), engines=("serial",))
    inline = SweepScheduler(plan, kind="inline").run()
    process = SweepScheduler(plan, kind="process").run()
    assert [r.status for r in process.records] == ["ok", ] * len(plan.cells)
    assert [r.report for r in process.records] == [
        r.report for r in inline.records
    ]
