"""Scheduler edge cases: retries, quarantine, timeouts, DAG gating.

The injected executables are module-level so the ``process`` backend
(which forks one worker per attempt) can run them too.
"""

import time

import pytest

from repro.obs.manifest import validate_manifest
from repro.sweep import SweepScheduler, plan_sweep, spec_from_dict
from repro.sweep.spec import SPEC_SCHEMA


def make_plan(**overrides):
    document = {
        "schema": SPEC_SCHEMA,
        "name": "sched-test",
        "axes": {
            "traces": ["loop:8x2", "zipf:100:16:1"],
            "engines": ["serial"],
        },
        "budgets": [0],
        "execution": {"workers": 2, "timeout_s": 30.0, "retries": 1,
                      "backoff_s": 0.01},
    }
    for key, value in overrides.items():
        if key in ("traces", "engines", "preludes", "warmth", "policies", "levels"):
            document["axes"][key] = value
        else:
            document[key] = value
    return plan_sweep(spec_from_dict(document))


def fake_payload(coords):
    return {
        "trace_name": str(coords["trace"]),
        "engine": str(coords["engine"]),
        "wall_s": 0.001,
        "report": {"mode": "single"},
    }


def ok_execute(coords, context):
    return fake_payload(coords)


def fail_zipf_execute(coords, context):
    if "zipf" in str(coords["trace"]):
        raise RuntimeError("injected failure")
    return fake_payload(coords)


def fail_cold_loop_execute(coords, context):
    if coords["trace"] == "loop:8x2" and coords["warmth"] == "cold":
        raise RuntimeError("injected producer failure")
    return fake_payload(coords)


def hang_zipf_execute(coords, context):
    if "zipf" in str(coords["trace"]):
        time.sleep(60)
    return fake_payload(coords)


_FLAKY_CALLS = []


def flaky_once_execute(coords, context):
    if "zipf" in str(coords["trace"]) and not _FLAKY_CALLS:
        _FLAKY_CALLS.append(coords["trace"])
        raise RuntimeError("transient failure")
    return fake_payload(coords)


def records_by_id(run):
    return {record.cell_id: record for record in run.records}


class TestHappyPath:
    @pytest.mark.parametrize("kind", ["inline", "thread"])
    def test_all_cells_complete(self, kind):
        plan = make_plan()
        run = SweepScheduler(plan, kind=kind, execute=ok_execute).run()
        assert [r.status for r in run.records] == ["ok", "ok"]
        assert run.counters["sweep_cells_ok"] == 2
        assert run.counters["sweep_attempts"] == 2
        assert run.counters["sweep_retries"] == 0

    def test_records_follow_plan_order(self):
        plan = make_plan(warmth=["cold", "warm"])
        run = SweepScheduler(plan, kind="inline", execute=ok_execute).run()
        assert [r.cell_id for r in run.records] == list(
            plan.topological_order()
        )

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            SweepScheduler(make_plan(), kind="fiber")


class TestRetries:
    def test_flaky_cell_retries_then_succeeds(self):
        _FLAKY_CALLS.clear()
        plan = make_plan()
        run = SweepScheduler(
            plan, kind="inline", execute=flaky_once_execute
        ).run()
        records = records_by_id(run)
        flaky = records["zipf:100:16:1/serial/auto/cold/lru/L1"]
        assert flaky.status == "ok"
        assert flaky.attempts == 2
        assert run.counters["sweep_retries"] == 1
        assert run.counters["sweep_cells_quarantined"] == 0

    def test_retry_exhaustion_quarantines_without_aborting_siblings(self):
        plan = make_plan()
        run = SweepScheduler(
            plan, kind="inline", execute=fail_zipf_execute, retries=2
        ).run()
        records = records_by_id(run)
        bad = records["zipf:100:16:1/serial/auto/cold/lru/L1"]
        good = records["loop:8x2/serial/auto/cold/lru/L1"]
        assert bad.status == "quarantined"
        assert bad.attempts == 3  # initial + 2 retries
        assert "injected failure" in bad.error
        assert good.status == "ok"
        assert run.counters["sweep_cells_quarantined"] == 1
        assert run.counters["sweep_retries"] == 2

    def test_zero_retries_quarantines_immediately(self):
        plan = make_plan()
        run = SweepScheduler(
            plan, kind="inline", execute=fail_zipf_execute, retries=0
        ).run()
        bad = records_by_id(run)["zipf:100:16:1/serial/auto/cold/lru/L1"]
        assert bad.status == "quarantined"
        assert bad.attempts == 1
        assert run.counters["sweep_retries"] == 0


class TestDependencyGating:
    def test_quarantine_skips_transitive_dependents(self):
        # cold -> warm both levels: failing the cold L1 producer must
        # skip warm L1, cold L2 and warm L2 — but not the zipf chain.
        plan = make_plan(warmth=["cold", "warm"], levels=[1, 2])
        run = SweepScheduler(
            plan, kind="inline", execute=fail_cold_loop_execute, retries=0
        ).run()
        records = records_by_id(run)
        assert records["loop:8x2/serial/auto/cold/lru/L1"].status == "quarantined"
        for skipped_id in (
            "loop:8x2/serial/auto/warm/lru/L1",
            "loop:8x2/serial/auto/cold/lru/L2",
            "loop:8x2/serial/auto/warm/lru/L2",
        ):
            record = records[skipped_id]
            assert record.status == "skipped"
            assert record.attempts == 0
            assert "quarantined" in record.error
        for ok_id in (
            "zipf:100:16:1/serial/auto/cold/lru/L1",
            "zipf:100:16:1/serial/auto/warm/lru/L1",
        ):
            assert records[ok_id].status == "ok"
        assert run.counters["sweep_cells_skipped"] == 3

    def test_warm_runs_after_its_cold_producer(self):
        seen = []

        def tracking_execute(coords, context):
            seen.append((coords["trace"], coords["warmth"]))
            return fake_payload(coords)

        plan = make_plan(warmth=["cold", "warm"])
        SweepScheduler(plan, kind="inline", execute=tracking_execute).run()
        for trace in ("loop:8x2", "zipf:100:16:1"):
            assert seen.index((trace, "cold")) < seen.index((trace, "warm"))


class TestTimeouts:
    def test_process_timeout_kills_worker_and_records_partial_manifest(self):
        plan = make_plan()
        start = time.monotonic()
        run = SweepScheduler(
            plan,
            kind="process",
            execute=hang_zipf_execute,
            timeout_s=0.5,
            retries=0,
        ).run()
        elapsed = time.monotonic() - start
        assert elapsed < 30, "the hung worker was not killed at its deadline"
        records = records_by_id(run)
        hung = records["zipf:100:16:1/serial/auto/cold/lru/L1"]
        assert hung.status == "quarantined"
        assert hung.timeouts == 1
        assert "killed after" in hung.error
        # The scheduler-side partial manifest must be a valid document.
        validate_manifest(hung.manifest)
        assert hung.manifest["counters"] == {"sweep_timeouts": 1}
        assert hung.manifest["phases"][0]["name"] == "sweep:cell-timeout"
        assert records["loop:8x2/serial/auto/cold/lru/L1"].status == "ok"
        assert run.counters["sweep_timeouts"] == 1

    def test_thread_timeout_abandons_the_attempt(self):
        plan = make_plan()
        run = SweepScheduler(
            plan,
            kind="thread",
            execute=hang_zipf_execute,
            timeout_s=0.2,
            retries=0,
            workers=4,
        ).run()
        hung = records_by_id(run)["zipf:100:16:1/serial/auto/cold/lru/L1"]
        assert hung.status == "quarantined"
        assert "abandoned after" in hung.error


class TestProcessBackend:
    def test_worker_crash_is_an_error_not_a_hang(self):
        plan = make_plan()
        run = SweepScheduler(
            plan, kind="process", execute=fail_zipf_execute, retries=0
        ).run()
        bad = records_by_id(run)["zipf:100:16:1/serial/auto/cold/lru/L1"]
        assert bad.status == "quarantined"
        assert "injected failure" in bad.error
