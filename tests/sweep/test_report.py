"""Report aggregation, baseline diffing, and document validation."""

import copy
import json

import pytest

from repro.obs.manifest import MANIFEST_SCHEMA, environment_info
from repro.sweep import (
    SWEEP_REPORT_SCHEMA,
    build_report,
    plan_sweep,
    render_markdown,
    spec_from_dict,
    validate_sweep_report,
)
from repro.sweep.scheduler import CellRecord, SweepRun
from repro.sweep.spec import SPEC_SCHEMA


def make_plan(**overrides):
    document = {
        "schema": SPEC_SCHEMA,
        "name": "report-test",
        "axes": {
            "traces": ["loop:8x2"],
            "engines": ["serial", "vectorized"],
        },
        "budgets": [0],
        "report": {
            "tolerance": 0.5,
            "baselines": ["BENCH_fake.json"],
        },
    }
    document.update(overrides)
    return plan_sweep(spec_from_dict(document))


def make_manifest(engine, wall_s):
    return {
        "schema": MANIFEST_SCHEMA,
        "engine": engine,
        "requested_engine": engine,
        "options": {},
        "trace": {"name": "loop-8x2", "n": 16, "n_unique": 8,
                  "address_bits": 4},
        "wall_s": wall_s,
        "phases": [
            {"name": "sweep:cell", "duration_s": wall_s, "counters": {},
             "children": []}
        ],
        "counters": {},
        "memory": {},
        "environment": environment_info(),
    }


def make_run(plan, wall_by_engine=None):
    wall_by_engine = wall_by_engine or {}
    records = []
    for cell in plan.cells:
        wall = wall_by_engine.get(cell.engine, 0.01)
        records.append(
            CellRecord(
                cell_id=cell.cell_id,
                coords=cell.coords(),
                status="ok",
                attempts=1,
                wall_s=wall,
                trace_name="loop-8x2",
                engine=cell.engine,
                report={"mode": "single"},
                manifest=make_manifest(cell.engine, wall),
            )
        )
    n = len(records)
    return SweepRun(
        records=records,
        wall_s=sum(r.wall_s for r in records),
        counters={
            "sweep_cells_total": n,
            "sweep_cells_ok": n,
            "sweep_cells_quarantined": 0,
            "sweep_cells_skipped": 0,
            "sweep_attempts": n,
            "sweep_retries": 0,
            "sweep_timeouts": 0,
        },
    )


def fake_baseline(serial_wall, vectorized_wall):
    """A minimal valid repro-bench-postlude/1 document."""
    return {
        "schema": "repro-bench-postlude/1",
        "python": "3.12.0",
        "repeats": 1,
        "platform": "test",
        "numpy": None,
        "results": [
            {
                "engine": engine,
                "trace": "loop-8x2",
                "N": 16,
                "N_prime": 8,
                "levels": 4,
                "wall_s": wall,
                "peak_mem": 100,
                "match": True,
            }
            for engine, wall in (
                ("serial", serial_wall),
                ("vectorized", vectorized_wall),
            )
        ],
    }


class TestBuildReport:
    def test_report_validates_and_carries_cells(self, tmp_path):
        plan = make_plan(report={"tolerance": 0.5, "baselines": []})
        report = build_report(plan, make_run(plan))
        validate_sweep_report(report)
        assert report["schema"] == SWEEP_REPORT_SCHEMA
        assert report["name"] == "report-test"
        assert report["plan_fingerprint"] == plan.fingerprint()
        assert len(report["cells"]) == 2
        assert report["summary"]["ok"] == 2

    def test_regression_flagged_past_tolerance(self, tmp_path):
        plan = make_plan()
        (tmp_path / "BENCH_fake.json").write_text(
            json.dumps(fake_baseline(serial_wall=0.2, vectorized_wall=0.1))
        )
        # serial 0.4s vs baseline 0.2s = 2.0x > 1.5x tolerance bar;
        # vectorized 0.12s vs 0.1s = 1.2x, within bar.
        run = make_run(plan, {"serial": 0.4, "vectorized": 0.12})
        report = build_report(plan, run, baseline_dir=str(tmp_path))
        assert len(report["regressions"]) == 1
        entry = report["regressions"][0]
        assert entry["cell"] == "loop:8x2/serial/auto/cold/lru/L1"
        assert entry["ratio"] == pytest.approx(2.0)
        files = report["baselines"]["files"]["BENCH_fake.json"]
        assert files["matched"] == 2

    def test_missing_baseline_recorded_not_fatal(self, tmp_path):
        plan = make_plan()
        report = build_report(plan, make_run(plan), baseline_dir=str(tmp_path))
        entry = report["baselines"]["files"]["BENCH_fake.json"]
        assert "error" in entry
        assert report["regressions"] == []

    def test_invalid_baseline_recorded_not_fatal(self, tmp_path):
        plan = make_plan()
        (tmp_path / "BENCH_fake.json").write_text('{"schema": "nonsense"}')
        report = build_report(plan, make_run(plan), baseline_dir=str(tmp_path))
        assert "error" in report["baselines"]["files"]["BENCH_fake.json"]

    def test_non_cold_cells_do_not_match_baselines(self, tmp_path):
        plan = make_plan(
            axes={
                "traces": ["loop:8x2"],
                "engines": ["serial"],
                "warmth": ["cold", "warm"],
            },
        )
        (tmp_path / "BENCH_fake.json").write_text(
            json.dumps(fake_baseline(0.2, 0.1))
        )
        run = make_run(plan, {"serial": 10.0})
        report = build_report(plan, run, baseline_dir=str(tmp_path))
        comparisons = report["baselines"]["files"]["BENCH_fake.json"][
            "comparisons"
        ]
        assert [c["cell"] for c in comparisons] == [
            "loop:8x2/serial/auto/cold/lru/L1"
        ]


class TestValidation:
    def make_valid(self):
        plan = make_plan(report={"tolerance": 0.5, "baselines": []})
        return build_report(plan, make_run(plan))

    def test_rejects_wrong_schema(self):
        report = self.make_valid()
        report["schema"] = "nope"
        with pytest.raises(ValueError, match="schema"):
            validate_sweep_report(report)

    def test_rejects_summary_count_mismatch(self):
        report = self.make_valid()
        report["summary"]["ok"] = 99
        with pytest.raises(ValueError, match="summary.ok"):
            validate_sweep_report(report)

    def test_rejects_total_cells_mismatch(self):
        report = self.make_valid()
        report["summary"]["total"] = 5
        with pytest.raises(ValueError, match="summary.total"):
            validate_sweep_report(report)

    def test_rejects_bad_cell_status(self):
        report = self.make_valid()
        report["cells"][0]["status"] = "exploded"
        with pytest.raises(ValueError, match="status"):
            validate_sweep_report(report)

    def test_rejects_ok_cell_without_manifest(self):
        report = self.make_valid()
        del report["cells"][0]["manifest"]
        with pytest.raises(ValueError, match="manifest"):
            validate_sweep_report(report)

    def test_rejects_invalid_embedded_manifest(self):
        report = self.make_valid()
        report["cells"][0]["manifest"]["wall_s"] = -1
        with pytest.raises(ValueError, match="manifest"):
            validate_sweep_report(report)

    def test_rejects_quarantined_cell_without_error(self):
        report = self.make_valid()
        cell = report["cells"][0]
        cell["status"] = "quarantined"
        del cell["report"]
        report["summary"]["ok"] = 1
        report["summary"]["quarantined"] = 1
        with pytest.raises(ValueError, match="error"):
            validate_sweep_report(report)

    def test_rejects_unflagged_regression_entry(self):
        report = self.make_valid()
        report["regressions"] = [{"cell": "x", "regression": False}]
        with pytest.raises(ValueError, match="regressions"):
            validate_sweep_report(report)


class TestMarkdown:
    def test_markdown_lists_cells_and_regressions(self, tmp_path):
        plan = make_plan()
        (tmp_path / "BENCH_fake.json").write_text(
            json.dumps(fake_baseline(0.2, 0.1))
        )
        run = make_run(plan, {"serial": 0.4, "vectorized": 0.12})
        report = build_report(plan, run, baseline_dir=str(tmp_path))
        text = render_markdown(report)
        assert "# Sweep report: report-test" in text
        assert "loop:8x2/serial/auto/cold/lru/L1" in text
        assert "## Regressions" in text
        assert "2.00x" in text
        assert "BENCH_fake.json" in text

    def test_markdown_without_regressions(self):
        plan = make_plan(report={"tolerance": 0.5, "baselines": []})
        report = build_report(plan, make_run(plan))
        text = render_markdown(report)
        assert "No regressions" in text

    def test_markdown_marks_failed_cells(self):
        plan = make_plan(report={"tolerance": 0.5, "baselines": []})
        run = make_run(plan)
        record = run.records[0]
        record.status = "quarantined"
        record.error = "boom"
        record.report = None
        run.counters["sweep_cells_ok"] = 1
        run.counters["sweep_cells_quarantined"] = 1
        report = build_report(plan, run)
        assert "**quarantined**" in render_markdown(report)
