"""Plan expansion: matrix rules, structural deps, cycles, stability."""

import json

import pytest

from repro.sweep import Cell, Plan, PlanError, plan_sweep, spec_from_dict
from repro.sweep.spec import SPEC_SCHEMA


def make_spec(**overrides):
    document = {
        "schema": SPEC_SCHEMA,
        "name": "plan-test",
        "axes": {
            "traces": ["loop:8x2", "zipf:100:16:1"],
            "engines": ["serial", "vectorized"],
        },
        "budgets": [0],
    }
    for key, value in overrides.items():
        if key in ("traces", "engines", "preludes", "warmth", "policies", "levels"):
            document["axes"][key] = value
        else:
            document[key] = value
    return spec_from_dict(document)


def cell_ids(plan):
    return [cell.cell_id for cell in plan.cells]


class TestExpansion:
    def test_cartesian_product(self):
        plan = plan_sweep(make_spec())
        assert len(plan.cells) == 4  # 2 traces x 2 engines
        assert plan.cells[0].cell_id == "loop:8x2/serial/auto/cold/lru/L1"

    def test_axis_order_is_declaration_order(self):
        plan = plan_sweep(make_spec())
        assert cell_ids(plan) == [
            "loop:8x2/serial/auto/cold/lru/L1",
            "loop:8x2/vectorized/auto/cold/lru/L1",
            "zipf:100:16:1/serial/auto/cold/lru/L1",
            "zipf:100:16:1/vectorized/auto/cold/lru/L1",
        ]

    def test_include_pins_axes_and_ranges_free_ones(self):
        # Pinning prelude leaves trace x engine free: adds 4 cells.
        plan = plan_sweep(make_spec(include=[{"prelude": "python"}]))
        python_cells = [c for c in plan.cells if c.prelude == "python"]
        assert len(python_cells) == 4
        assert len(plan.cells) == 8

    def test_include_full_pin_adds_one_cell(self):
        plan = plan_sweep(
            make_spec(
                include=[
                    {
                        "trace": "loop:8x2",
                        "engine": "serial",
                        "prelude": "python",
                        "warmth": "cold",
                        "policy": "lru",
                        "level": 1,
                    }
                ]
            )
        )
        assert len(plan.cells) == 5
        assert "loop:8x2/serial/python/cold/lru/L1" in cell_ids(plan)

    def test_exclude_subset_match(self):
        plan = plan_sweep(make_spec(exclude=[{"engine": "vectorized"}]))
        assert all(cell.engine == "serial" for cell in plan.cells)
        assert len(plan.cells) == 2

    def test_exclude_multi_axis_rule_is_conjunction(self):
        plan = plan_sweep(
            make_spec(exclude=[{"engine": "vectorized", "trace": "loop:8x2"}])
        )
        assert "loop:8x2/vectorized/auto/cold/lru/L1" not in cell_ids(plan)
        assert len(plan.cells) == 3

    def test_include_duplicates_are_deduped(self):
        plan = plan_sweep(
            make_spec(include=[{"trace": "loop:8x2"}])  # overlaps the product
        )
        ids = cell_ids(plan)
        assert len(ids) == len(set(ids)) == 4

    def test_everything_excluded_is_an_error(self):
        with pytest.raises(PlanError, match="zero cells"):
            plan_sweep(make_spec(exclude=[{"policy": "lru"}]))

    def test_expansion_golden(self):
        """The full include/exclude pipeline against a written-out matrix."""
        plan = plan_sweep(
            make_spec(
                warmth=["cold", "warm"],
                include=[{"trace": "loop:8x2", "engine": "serial",
                          "prelude": "fast", "warmth": "cold"}],
                exclude=[{"trace": "zipf:100:16:1", "warmth": "warm"}],
            )
        )
        assert cell_ids(plan) == [
            "loop:8x2/serial/auto/cold/lru/L1",
            "loop:8x2/serial/auto/warm/lru/L1",
            "loop:8x2/vectorized/auto/cold/lru/L1",
            "loop:8x2/vectorized/auto/warm/lru/L1",
            "zipf:100:16:1/serial/auto/cold/lru/L1",
            "zipf:100:16:1/vectorized/auto/cold/lru/L1",
            "loop:8x2/serial/fast/cold/lru/L1",
        ]


class TestDependencies:
    def test_warm_depends_on_cold(self):
        plan = plan_sweep(make_spec(warmth=["cold", "warm"]))
        warm = plan.cell("loop:8x2/serial/auto/warm/lru/L1")
        assert plan.dependencies(warm) == ("loop:8x2/serial/auto/cold/lru/L1",)

    def test_level2_depends_on_level1(self):
        plan = plan_sweep(make_spec(levels=[1, 2]))
        l2 = plan.cell("loop:8x2/serial/auto/cold/lru/L2")
        assert plan.dependencies(l2) == ("loop:8x2/serial/auto/cold/lru/L1",)

    def test_cold_cells_are_independent(self):
        plan = plan_sweep(make_spec())
        assert all(not plan.dependencies(cell) for cell in plan.cells)

    def test_warm_without_cold_producer_fails(self):
        with pytest.raises(PlanError, match="no cold producer"):
            plan_sweep(
                make_spec(
                    warmth=["cold", "warm"],
                    exclude=[{"warmth": "cold", "engine": "serial"}],
                )
            )

    def test_level2_without_level1_fails(self):
        with pytest.raises(PlanError, match="no level-1 winner"):
            plan_sweep(
                make_spec(
                    levels=[1, 2],
                    exclude=[{"level": 1, "trace": "loop:8x2"}],
                )
            )

    def test_topological_order_respects_deps(self):
        plan = plan_sweep(make_spec(warmth=["cold", "warm"], levels=[1, 2]))
        order = plan.topological_order()
        for cell in plan.cells:
            for dep in plan.dependencies(cell):
                assert order.index(dep) < order.index(cell.cell_id)


class TestCycles:
    """Plan construction rejects cyclic graphs — at plan time, loudly."""

    def _cells(self):
        return (
            Cell("loop:8x2", "serial", "auto", "cold", "lru", 1),
            Cell("loop:8x2", "vectorized", "auto", "cold", "lru", 1),
        )

    def test_self_cycle(self):
        a, b = self._cells()
        with pytest.raises(PlanError, match="cycle"):
            Plan(
                spec=make_spec(),
                cells=(a, b),
                depends_on={a.cell_id: (a.cell_id,)},
            )

    def test_two_cell_cycle_names_the_stuck_cells(self):
        a, b = self._cells()
        with pytest.raises(PlanError, match="cycle") as excinfo:
            Plan(
                spec=make_spec(),
                cells=(a, b),
                depends_on={
                    a.cell_id: (b.cell_id,),
                    b.cell_id: (a.cell_id,),
                },
            )
        assert a.cell_id in str(excinfo.value)
        assert b.cell_id in str(excinfo.value)

    def test_unknown_dependency_rejected(self):
        a, b = self._cells()
        with pytest.raises(PlanError, match="unknown cell"):
            Plan(spec=make_spec(), cells=(a,), depends_on={a.cell_id: ("ghost",)})

    def test_unknown_cell_in_map_rejected(self):
        a, b = self._cells()
        with pytest.raises(PlanError, match="unknown cell"):
            Plan(spec=make_spec(), cells=(a,), depends_on={"ghost": ()})


class TestStability:
    def test_plan_json_is_byte_stable(self):
        spec = make_spec(warmth=["cold", "warm"])
        assert plan_sweep(spec).to_json() == plan_sweep(spec).to_json()

    def test_fingerprint_matches_rebuild(self):
        spec = make_spec()
        assert plan_sweep(spec).fingerprint() == plan_sweep(spec).fingerprint()

    def test_fingerprint_changes_with_spec(self):
        base = plan_sweep(make_spec()).fingerprint()
        changed = plan_sweep(make_spec(seed=1)).fingerprint()
        assert base != changed

    def test_plan_document_shape(self):
        plan = plan_sweep(make_spec(warmth=["cold", "warm"]))
        document = json.loads(plan.to_json())
        assert document["schema"] == "repro-sweep-plan/1"
        assert document["fingerprint"] == plan.fingerprint()
        by_id = {cell["id"]: cell for cell in document["cells"]}
        warm = by_id["loop:8x2/serial/auto/warm/lru/L1"]
        assert warm["depends_on"] == ["loop:8x2/serial/auto/cold/lru/L1"]
        assert warm["coords"]["warmth"] == "warm"
