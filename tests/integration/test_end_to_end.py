"""End-to-end: kernel execution -> traces -> analytical DSE -> simulation check.

This is the paper's whole flow on real (VM-generated) traces, at tiny
scale so it stays fast.
"""

import pytest

from repro.core.explorer import AnalyticalCacheExplorer
from repro.core.validation import assert_all_valid, validate_instances
from repro.explore.compare import compare_methods
from repro.explore.space import DesignSpace
from repro.trace.stats import compute_statistics

KERNELS = ["crc", "fir", "ucbqsort", "engine"]


@pytest.mark.parametrize("name", KERNELS)
def test_data_trace_exploration_validates_against_simulator(tiny_runs, name):
    trace = tiny_runs[name].data_trace
    explorer = AnalyticalCacheExplorer(trace)
    for percent in (5, 20):
        result = explorer.explore_percent(percent)
        assert_all_valid(validate_instances(trace, result))


@pytest.mark.parametrize("name", KERNELS)
def test_instruction_trace_exploration_validates(tiny_runs, name):
    trace = tiny_runs[name].instruction_trace
    explorer = AnalyticalCacheExplorer(trace)
    result = explorer.explore_percent(10)
    records = validate_instances(trace, result)
    assert all(r.ok for r in records)


def test_methods_agree_on_a_real_kernel_trace(tiny_runs):
    trace = tiny_runs["qurt"].data_trace
    budget = compute_statistics(trace).budget(10)
    space = DesignSpace(min_depth=2, max_depth=64, max_associativity=8)
    comparison = compare_methods(trace, budget, space)
    assert comparison.agreement(), comparison.disagreements()


def test_instruction_traces_prefer_direct_mapped_quickly(tiny_runs):
    """Code is loop-dominated: modest depths reach A=1 within small budgets."""
    trace = tiny_runs["crc"].instruction_trace
    result = AnalyticalCacheExplorer(trace).explore_percent(5)
    final = result.instances[-1]
    assert final.associativity == 1


def test_stats_reflect_trace_shape(tiny_runs):
    run = tiny_runs["bcnt"]
    stats = compute_statistics(run.instruction_trace)
    # Instruction working sets are tiny relative to trace length.
    assert stats.n_unique < stats.n / 10
