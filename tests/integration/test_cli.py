"""Integration tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.trace.io import write_trace
from repro.trace.synthetic import loop_nest_trace, zipf_trace


@pytest.fixture
def trace_file(tmp_path):
    path = tmp_path / "demo.din"
    write_trace(zipf_trace(300, 40, seed=0), path)
    return str(path)


class TestStats:
    def test_prints_table(self, trace_file, capsys):
        assert main(["stats", trace_file]) == 0
        out = capsys.readouterr().out
        assert "Benchmark" in out and "Max. Misses" in out


class TestExplore:
    def test_absolute_budget(self, trace_file, capsys):
        assert main(["explore", trace_file, "--budget", "5"]) == 0
        out = capsys.readouterr().out
        assert "K=5" in out
        assert "Depth D" in out

    def test_percent_budget(self, trace_file, capsys):
        assert main(["explore", trace_file, "--percent", "10"]) == 0
        assert "miss budget" in capsys.readouterr().out

    def test_max_depth(self, trace_file, capsys):
        assert main(["explore", trace_file, "--budget", "0", "--max-depth", "8"]) == 0
        out = capsys.readouterr().out
        assert " 16 " not in out


class TestProfileTelemetry:
    def _load_valid_manifest(self, path):
        import json

        from repro.obs import validate_manifest

        document = json.loads(path.read_text())
        validate_manifest(document)
        return document

    def test_explore_profile_writes_valid_manifest(
        self, tmp_path, trace_file, capsys
    ):
        manifest_file = tmp_path / "m.json"
        assert main(
            ["explore", trace_file, "--budget", "5",
             "--profile", str(manifest_file)]
        ) == 0
        captured = capsys.readouterr()
        assert "Depth D" in captured.out  # exploration output intact
        assert "wrote run manifest" in captured.err
        document = self._load_valid_manifest(manifest_file)
        assert document["requested_engine"] == "auto"
        assert document["trace"]["n"] == 300

    def test_explore_profile_keeps_json_stdout_clean(
        self, tmp_path, trace_file, capsys
    ):
        import json

        manifest_file = tmp_path / "m.json"
        assert main(
            ["explore", trace_file, "--budget", "5", "--json",
             "--profile", str(manifest_file)]
        ) == 0
        json.loads(capsys.readouterr().out)  # stdout is pure result JSON
        self._load_valid_manifest(manifest_file)

    def test_profile_prints_phase_tree(self, trace_file, capsys):
        assert main(["profile", trace_file, "--budget", "5"]) == 0
        out = capsys.readouterr().out
        assert "load-trace" in out
        assert "engine:" in out
        assert "prelude:mrct" in out
        assert "postlude:optimal-pairs" in out
        assert "total" in out
        assert "memory:" in out  # tracemalloc sampling on by default

    def test_profile_json_mode(self, trace_file, capsys):
        import json

        from repro.obs import MANIFEST_SCHEMA, validate_manifest

        assert main(
            ["profile", trace_file, "--budget", "5", "--no-memory", "--json"]
        ) == 0
        document = json.loads(capsys.readouterr().out)
        validate_manifest(document)
        assert document["schema"] == MANIFEST_SCHEMA
        assert document["memory"] == {}

    def test_profile_writes_manifest_file(self, tmp_path, trace_file, capsys):
        manifest_file = tmp_path / "profile.json"
        assert main(
            ["profile", trace_file, "--engine", "parallel",
             "--processes", "2", "-o", str(manifest_file)]
        ) == 0
        document = self._load_valid_manifest(manifest_file)
        assert document["engine"] == "parallel"
        assert document["options"] == {"processes": 2}
        assert "wrote run manifest" in capsys.readouterr().err

    def test_profile_defaults_to_percent_budget(self, trace_file, capsys):
        assert main(["profile", trace_file]) == 0
        out = capsys.readouterr().out
        assert "statistics" in out  # budget derivation shows as a phase


class TestSimulate:
    def test_reports_counters(self, trace_file, capsys):
        assert main(
            ["simulate", trace_file, "--depth", "4", "--assoc", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "non-cold misses" in out
        assert "D=4 A=2" in out

    def test_alternate_replacement(self, trace_file, capsys):
        assert main(
            [
                "simulate", trace_file,
                "--depth", "4", "--assoc", "2", "--replacement", "fifo",
            ]
        ) == 0
        assert "fifo" in capsys.readouterr().out


class TestCompare:
    def test_agreement_reported(self, trace_file, capsys):
        assert main(
            [
                "compare", trace_file,
                "--budget", "5", "--max-depth", "16", "--max-assoc", "4",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "agreement: True" in out
        assert "speedup" in out


class TestEmitAndWorkloads:
    def test_emit_writes_trace(self, tmp_path, capsys):
        out_file = tmp_path / "crc.din"
        assert main(
            ["emit", "crc", "--kind", "data", "--scale", "tiny", "-o", str(out_file)]
        ) == 0
        assert out_file.exists()
        assert "wrote" in capsys.readouterr().out

    def test_workloads_table(self, capsys):
        assert main(["workloads", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        for name in ("adpcm", "crc", "ucbqsort"):
            assert name in out
        assert "jpeg" not in out
        assert "MISMATCH" not in out

    def test_workloads_with_extras(self, capsys):
        assert main(["workloads", "--scale", "tiny", "--extras"]) == 0
        out = capsys.readouterr().out
        for name in ("jpeg", "summin", "v42", "whet"):
            assert name in out
        assert "MISMATCH" not in out

    def test_explore_json_output(self, tmp_path, capsys):
        import json

        from repro.core.instance import ExplorationResult
        from repro.trace.io import write_trace
        from repro.trace.synthetic import zipf_trace

        path = tmp_path / "j.din"
        write_trace(zipf_trace(200, 30, seed=5), path)
        assert main(["explore", str(path), "--budget", "3", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        rebuilt = ExplorationResult.from_json_dict(payload)
        assert rebuilt.budget == 3
        assert all(m <= 3 for m in rebuilt.misses)


class TestLineSize:
    def test_sweep_table(self, trace_file, capsys):
        assert main(
            ["linesize", trace_file, "--budget", "5", "--lines", "1", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "line-size sweep" in out
        assert "least traffic" in out


class TestCompact:
    def test_writes_stripped_trace(self, tmp_path, trace_file, capsys):
        out_file = tmp_path / "stripped.din"
        assert main(
            ["compact", trace_file, "-o", str(out_file), "--filter-depth", "2"]
        ) == 0
        assert out_file.exists()
        out = capsys.readouterr().out
        assert "depths >= 2" in out


class TestRobustness:
    def test_policy_table(self, trace_file, capsys):
        assert main(["robustness", trace_file, "--percent", "10"]) == 0
        out = capsys.readouterr().out
        assert "fifo" in out and "plru" in out and "random" in out


class TestCost:
    def test_cost_table(self, trace_file, capsys):
        assert main(["cost", trace_file, "--budget", "5"]) == 0
        out = capsys.readouterr().out
        assert "Run energy" in out
        assert "min energy" in out


class TestEmitUnified:
    def test_unified_kind(self, tmp_path, capsys):
        out_file = tmp_path / "u.din"
        assert main(
            ["emit", "crc", "--kind", "unified", "--scale", "tiny",
             "-o", str(out_file)]
        ) == 0
        from repro.trace.io import read_trace
        from repro.trace.reference import AccessKind

        trace = read_trace(out_file)
        kinds = {trace.kind(i) for i in range(len(trace))}
        assert AccessKind.FETCH in kinds
        assert AccessKind.READ in kinds


class TestPhases:
    def test_phase_table(self, trace_file, capsys):
        assert main(
            ["phases", trace_file, "--percent", "10", "--phases", "3"]
        ) == 0
        out = capsys.readouterr().out
        assert "phase exploration: 3 phases" in out
        assert "Words saved" in out


class TestHierarchy:
    def test_l2_table(self, trace_file, capsys):
        assert main(
            [
                "hierarchy", trace_file,
                "--percent", "10", "--l1-depth", "8",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "L1 (D=8" in out
        assert "optimal L2 instances" in out


class TestConflicts:
    def test_conflict_table(self, trace_file, capsys):
        assert main(["conflicts", trace_file, "--depth", "4"]) == 0
        out = capsys.readouterr().out
        assert "conflicting rows" in out or "conflict-free" in out

    def test_conflict_free_message(self, tmp_path, capsys):
        from repro.trace.io import write_trace
        from repro.trace.synthetic import loop_nest_trace

        path = tmp_path / "loop.din"
        write_trace(loop_nest_trace(8, 5), path)
        assert main(["conflicts", str(path), "--depth", "8"]) == 0
        assert "conflict-free" in capsys.readouterr().out


class TestCurves:
    def test_capacity_curve_csv(self, trace_file, capsys):
        assert main(["curves", trace_file]) == 0
        out = capsys.readouterr().out
        assert out.startswith("capacity_words,misses,depth,associativity")

    def test_associativity_curve_to_file(self, tmp_path, trace_file, capsys):
        out_file = tmp_path / "c.csv"
        assert main(
            ["curves", trace_file, "--depth", "4", "-o", str(out_file)]
        ) == 0
        assert "wrote" in capsys.readouterr().out
        assert out_file.read_text().startswith("associativity,misses")


class TestDisasm:
    def test_lists_kernel(self, capsys):
        assert main(["disasm", "crc", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "crc:" in out
        assert "halt" in out
        assert "expected checksum" in out


class TestReport:
    def test_report_to_stdout(self, trace_file, capsys):
        assert main(["report", trace_file]) == 0
        out = capsys.readouterr().out
        assert "# Cache design report" in out
        assert "energy-optimal" in out

    def test_report_to_file(self, tmp_path, trace_file, capsys):
        out_file = tmp_path / "r.md"
        assert main(["report", trace_file, "-o", str(out_file)]) == 0
        assert "wrote report" in capsys.readouterr().out
        assert "## Trace statistics" in out_file.read_text()


class TestPaperExample:
    def test_prints_all_artifacts(self, capsys):
        assert main(["paper-example"]) == 0
        out = capsys.readouterr().out
        assert "Table 3" in out
        assert "(D=2, A=3)" in out


class TestCache:
    def test_explore_twice_warm_start_identical_json(
        self, tmp_path, trace_file, capsys
    ):
        import json

        cache_dir = str(tmp_path / "store")
        argv = [
            "explore", trace_file, "--budget", "5", "--json",
            "--cache-dir", cache_dir,
        ]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert main(argv) == 0
        warm = capsys.readouterr().out
        assert warm == cold  # byte-identical result JSON
        json.loads(warm)

    def test_cache_stats_clear_and_prune(self, tmp_path, trace_file, capsys):
        cache_dir = str(tmp_path / "store")
        assert main(
            ["explore", trace_file, "--budget", "5", "--cache-dir", cache_dir]
        ) == 0
        capsys.readouterr()
        assert main(["cache", "stats", "--cache-dir", cache_dir]) == 0
        out = capsys.readouterr().out
        assert "entries: 4" in out
        for stage in ("histograms", "mrct", "stripped", "zerosets"):
            assert stage in out
        assert main(
            ["cache", "prune", "--cache-dir", cache_dir, "--max-bytes", "1"]
        ) == 0
        assert "evicted 4" in capsys.readouterr().out
        assert main(["cache", "clear", "--cache-dir", cache_dir]) == 0
        assert "removed 0 entries" in capsys.readouterr().out

    def test_cache_stats_json(self, tmp_path, trace_file, capsys):
        import json

        cache_dir = str(tmp_path / "store")
        assert main(
            ["explore", trace_file, "--budget", "0", "--cache-dir", cache_dir]
        ) == 0
        capsys.readouterr()
        assert main(["cache", "stats", "--cache-dir", cache_dir, "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["entries"] == 4
        assert summary["root"] == cache_dir

    def test_env_var_enables_and_no_cache_disables(
        self, tmp_path, trace_file, capsys, monkeypatch
    ):
        cache_dir = tmp_path / "env-store"
        monkeypatch.setenv("REPRO_CACHE_DIR", str(cache_dir))
        assert main(
            ["explore", trace_file, "--budget", "0", "--no-cache"]
        ) == 0
        assert not cache_dir.exists()
        assert main(["explore", trace_file, "--budget", "0"]) == 0
        assert cache_dir.is_dir()

    def test_profile_manifest_records_store_counters(
        self, tmp_path, trace_file, capsys
    ):
        import json

        cache_dir = str(tmp_path / "store")
        argv = [
            "profile", trace_file, "--budget", "5", "--json", "--no-memory",
            "--cache-dir", cache_dir,
        ]
        assert main(argv) == 0
        cold = json.loads(capsys.readouterr().out)
        assert cold["counters"].get("store_bytes_written", 0) > 0
        assert main(argv) == 0
        warm = json.loads(capsys.readouterr().out)
        assert warm["counters"]["store_hits"] > 0

    def test_help_lists_registry_engines(self, capsys):
        with pytest.raises(SystemExit):
            main(["--help"])
        out = capsys.readouterr().out
        assert "serial, parallel, parallel-shm, streaming, vectorized, auto" in out
        assert "bitmask -> serial" in out


class TestParser:
    def test_missing_subcommand_errors(self):
        with pytest.raises(SystemExit):
            main([])

    def test_explore_requires_a_budget_flag(self, trace_file):
        with pytest.raises(SystemExit):
            main(["explore", trace_file])


class TestScenarioFlags:
    def test_explore_help_groups_scenario_flags(self, capsys):
        with pytest.raises(SystemExit):
            main(["explore", "--help"])
        out = capsys.readouterr().out
        assert "scenario options" in out
        assert "--policy" in out and "--l2-depth" in out
        assert "--cost-model" in out

    def test_fifo_policy_noted_in_the_table(self, trace_file, capsys):
        assert main(
            ["explore", trace_file, "--budget", "5", "--policy", "fifo"]
        ) == 0
        out = capsys.readouterr().out
        assert "policy: fifo" in out
        assert "Depth D" in out

    def test_l2_and_cost_sections_print(self, trace_file, capsys):
        assert main(
            ["explore", trace_file, "--percent", "10",
             "--l2-depth", "8", "--cost-model", "energy"]
        ) == 0
        out = capsys.readouterr().out
        assert "L2 instances behind L1" in out
        assert "cost ranking (energy)" in out

    def test_baseline_json_has_no_scenario_key(self, trace_file, capsys):
        import json

        assert main(
            ["explore", trace_file, "--budget", "5", "--json"]
        ) == 0
        document = json.loads(capsys.readouterr().out)
        assert "scenario" not in document

    def test_scenario_json_carries_the_section(self, trace_file, capsys):
        import json

        assert main(
            ["explore", trace_file, "--budget", "5", "--json",
             "--policy", "fifo", "--cost-model", "area"]
        ) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["scenario"]["policy"] == "fifo"
        assert document["scenario"]["cost"]["model"] == "area"

    def test_bad_l2_depth_fails_cleanly(self, trace_file, capsys):
        assert main(
            ["explore", trace_file, "--budget", "5", "--l2-depth", "3"]
        ) == 1
        assert "explore failed" in capsys.readouterr().err

    def test_stream_materializes_for_scenarios(self, trace_file, capsys):
        assert main(
            ["stream", trace_file, "--budget", "5", "--policy", "fifo"]
        ) == 0
        captured = capsys.readouterr()
        assert "materializing" in captured.err
        assert "policy fifo" in captured.out

    def test_submit_and_stream_expose_the_flags(self, capsys):
        for command in ("submit", "stream"):
            with pytest.raises(SystemExit):
                main([command, "--help"])
            out = capsys.readouterr().out
            assert "--policy" in out and "--l2-depth" in out
