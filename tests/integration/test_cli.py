"""Integration tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.trace.io import write_trace
from repro.trace.synthetic import loop_nest_trace, zipf_trace


@pytest.fixture
def trace_file(tmp_path):
    path = tmp_path / "demo.din"
    write_trace(zipf_trace(300, 40, seed=0), path)
    return str(path)


class TestStats:
    def test_prints_table(self, trace_file, capsys):
        assert main(["stats", trace_file]) == 0
        out = capsys.readouterr().out
        assert "Benchmark" in out and "Max. Misses" in out


class TestExplore:
    def test_absolute_budget(self, trace_file, capsys):
        assert main(["explore", trace_file, "--budget", "5"]) == 0
        out = capsys.readouterr().out
        assert "K=5" in out
        assert "Depth D" in out

    def test_percent_budget(self, trace_file, capsys):
        assert main(["explore", trace_file, "--percent", "10"]) == 0
        assert "miss budget" in capsys.readouterr().out

    def test_max_depth(self, trace_file, capsys):
        assert main(["explore", trace_file, "--budget", "0", "--max-depth", "8"]) == 0
        out = capsys.readouterr().out
        assert " 16 " not in out


class TestSimulate:
    def test_reports_counters(self, trace_file, capsys):
        assert main(
            ["simulate", trace_file, "--depth", "4", "--assoc", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "non-cold misses" in out
        assert "D=4 A=2" in out

    def test_alternate_replacement(self, trace_file, capsys):
        assert main(
            [
                "simulate", trace_file,
                "--depth", "4", "--assoc", "2", "--replacement", "fifo",
            ]
        ) == 0
        assert "fifo" in capsys.readouterr().out


class TestCompare:
    def test_agreement_reported(self, trace_file, capsys):
        assert main(
            [
                "compare", trace_file,
                "--budget", "5", "--max-depth", "16", "--max-assoc", "4",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "agreement: True" in out
        assert "speedup" in out


class TestEmitAndWorkloads:
    def test_emit_writes_trace(self, tmp_path, capsys):
        out_file = tmp_path / "crc.din"
        assert main(
            ["emit", "crc", "--kind", "data", "--scale", "tiny", "-o", str(out_file)]
        ) == 0
        assert out_file.exists()
        assert "wrote" in capsys.readouterr().out

    def test_workloads_table(self, capsys):
        assert main(["workloads", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        for name in ("adpcm", "crc", "ucbqsort"):
            assert name in out
        assert "jpeg" not in out
        assert "MISMATCH" not in out

    def test_workloads_with_extras(self, capsys):
        assert main(["workloads", "--scale", "tiny", "--extras"]) == 0
        out = capsys.readouterr().out
        for name in ("jpeg", "summin", "v42", "whet"):
            assert name in out
        assert "MISMATCH" not in out

    def test_explore_json_output(self, tmp_path, capsys):
        import json

        from repro.core.instance import ExplorationResult
        from repro.trace.io import write_trace
        from repro.trace.synthetic import zipf_trace

        path = tmp_path / "j.din"
        write_trace(zipf_trace(200, 30, seed=5), path)
        assert main(["explore", str(path), "--budget", "3", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        rebuilt = ExplorationResult.from_json_dict(payload)
        assert rebuilt.budget == 3
        assert all(m <= 3 for m in rebuilt.misses)


class TestLineSize:
    def test_sweep_table(self, trace_file, capsys):
        assert main(
            ["linesize", trace_file, "--budget", "5", "--lines", "1", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "line-size sweep" in out
        assert "least traffic" in out


class TestCompact:
    def test_writes_stripped_trace(self, tmp_path, trace_file, capsys):
        out_file = tmp_path / "stripped.din"
        assert main(
            ["compact", trace_file, "-o", str(out_file), "--filter-depth", "2"]
        ) == 0
        assert out_file.exists()
        out = capsys.readouterr().out
        assert "depths >= 2" in out


class TestRobustness:
    def test_policy_table(self, trace_file, capsys):
        assert main(["robustness", trace_file, "--percent", "10"]) == 0
        out = capsys.readouterr().out
        assert "fifo" in out and "plru" in out and "random" in out


class TestCost:
    def test_cost_table(self, trace_file, capsys):
        assert main(["cost", trace_file, "--budget", "5"]) == 0
        out = capsys.readouterr().out
        assert "Run energy" in out
        assert "min energy" in out


class TestEmitUnified:
    def test_unified_kind(self, tmp_path, capsys):
        out_file = tmp_path / "u.din"
        assert main(
            ["emit", "crc", "--kind", "unified", "--scale", "tiny",
             "-o", str(out_file)]
        ) == 0
        from repro.trace.io import read_trace
        from repro.trace.reference import AccessKind

        trace = read_trace(out_file)
        kinds = {trace.kind(i) for i in range(len(trace))}
        assert AccessKind.FETCH in kinds
        assert AccessKind.READ in kinds


class TestPhases:
    def test_phase_table(self, trace_file, capsys):
        assert main(
            ["phases", trace_file, "--percent", "10", "--phases", "3"]
        ) == 0
        out = capsys.readouterr().out
        assert "phase exploration: 3 phases" in out
        assert "Words saved" in out


class TestHierarchy:
    def test_l2_table(self, trace_file, capsys):
        assert main(
            [
                "hierarchy", trace_file,
                "--percent", "10", "--l1-depth", "8",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "L1 (D=8" in out
        assert "optimal L2 instances" in out


class TestConflicts:
    def test_conflict_table(self, trace_file, capsys):
        assert main(["conflicts", trace_file, "--depth", "4"]) == 0
        out = capsys.readouterr().out
        assert "conflicting rows" in out or "conflict-free" in out

    def test_conflict_free_message(self, tmp_path, capsys):
        from repro.trace.io import write_trace
        from repro.trace.synthetic import loop_nest_trace

        path = tmp_path / "loop.din"
        write_trace(loop_nest_trace(8, 5), path)
        assert main(["conflicts", str(path), "--depth", "8"]) == 0
        assert "conflict-free" in capsys.readouterr().out


class TestCurves:
    def test_capacity_curve_csv(self, trace_file, capsys):
        assert main(["curves", trace_file]) == 0
        out = capsys.readouterr().out
        assert out.startswith("capacity_words,misses,depth,associativity")

    def test_associativity_curve_to_file(self, tmp_path, trace_file, capsys):
        out_file = tmp_path / "c.csv"
        assert main(
            ["curves", trace_file, "--depth", "4", "-o", str(out_file)]
        ) == 0
        assert "wrote" in capsys.readouterr().out
        assert out_file.read_text().startswith("associativity,misses")


class TestDisasm:
    def test_lists_kernel(self, capsys):
        assert main(["disasm", "crc", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "crc:" in out
        assert "halt" in out
        assert "expected checksum" in out


class TestReport:
    def test_report_to_stdout(self, trace_file, capsys):
        assert main(["report", trace_file]) == 0
        out = capsys.readouterr().out
        assert "# Cache design report" in out
        assert "energy-optimal" in out

    def test_report_to_file(self, tmp_path, trace_file, capsys):
        out_file = tmp_path / "r.md"
        assert main(["report", trace_file, "-o", str(out_file)]) == 0
        assert "wrote report" in capsys.readouterr().out
        assert "## Trace statistics" in out_file.read_text()


class TestPaperExample:
    def test_prints_all_artifacts(self, capsys):
        assert main(["paper-example"]) == 0
        out = capsys.readouterr().out
        assert "Table 3" in out
        assert "(D=2, A=3)" in out


class TestParser:
    def test_missing_subcommand_errors(self):
        with pytest.raises(SystemExit):
            main([])

    def test_explore_requires_a_budget_flag(self, trace_file):
        with pytest.raises(SystemExit):
            main(["explore", trace_file])
