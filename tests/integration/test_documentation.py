"""Documentation integrity: the docs must describe the repository that exists.

Guards against doc rot: every bench target DESIGN.md names must exist,
every example README.md lists must exist, every CLI subcommand the docs
mention must be registered, and the README's quickstart code must run.
"""

import pathlib
import re

import pytest

ROOT = pathlib.Path(__file__).resolve().parents[2]


def _read(name: str) -> str:
    return (ROOT / name).read_text(encoding="utf-8")


class TestDesignDocument:
    def test_every_named_bench_exists(self):
        design = _read("DESIGN.md")
        targets = set(re.findall(r"benchmarks/(test_[a-z0-9_]+\.py)", design))
        assert targets, "DESIGN.md must name bench targets"
        for target in targets:
            assert (ROOT / "benchmarks" / target).exists(), target

    def test_every_named_module_exists(self):
        design = _read("DESIGN.md")
        # Module names appear as '    name.py' rows in the inventory.
        modules = set(re.findall(r"^\s+([a-z_]+\.py)\s", design, re.M))
        assert modules
        all_py = {p.name for p in (ROOT / "src" / "repro").rglob("*.py")}
        for module in modules:
            assert module in all_py, module

    def test_mentions_the_paper_check(self):
        assert "Ghosh" in _read("DESIGN.md")


class TestReadme:
    def test_every_listed_example_exists(self):
        readme = _read("README.md")
        examples = set(re.findall(r"examples/([a-z_]+\.py)", readme))
        assert len(examples) >= 8
        for example in examples:
            assert (ROOT / "examples" / example).exists(), example

    def test_every_mentioned_cli_command_is_registered(self):
        from repro.cli import build_parser

        parser = build_parser()
        subcommands = set()
        for action in parser._actions:
            if hasattr(action, "choices") and action.choices:
                subcommands.update(action.choices)
        readme = _read("README.md")
        mentioned = set(re.findall(r"^repro ([a-z-]+)", readme, re.M))
        assert mentioned
        for command in mentioned:
            assert command in subcommands, command

    def test_quickstart_code_runs(self):
        readme = _read("README.md")
        blocks = re.findall(r"```python\n(.*?)```", readme, re.S)
        assert blocks, "README must contain a python quickstart"
        namespace = {}
        exec(blocks[0], namespace)  # noqa: S102 - running our own docs
        assert "result" in namespace


class TestDocsDirectory:
    @pytest.mark.parametrize(
        "name",
        ["algorithm.md", "architecture.md", "extensions.md",
         "workloads.md", "isa.md", "api.md"],
    )
    def test_docs_exist_and_are_substantial(self, name):
        text = _read(f"docs/{name}")
        assert len(text) > 1000, name

    def test_extensions_doc_names_real_test_files(self):
        text = _read("docs/extensions.md")
        targets = set(re.findall(r"test_[a-z0-9_]+\.py", text))
        known = {p.name for p in (ROOT / "benchmarks").glob("test_*.py")}
        known |= {p.name for p in (ROOT / "tests").rglob("test_*.py")}
        for target in targets:
            assert target in known, target

    def test_workloads_doc_covers_all_kernels(self):
        from repro.workloads import ALL_WORKLOAD_NAMES

        text = _read("docs/workloads.md")
        for name in ALL_WORKLOAD_NAMES:
            assert f"`{name}`" in text, name


class TestExperimentsDocument:
    def test_every_mentioned_test_target_exists(self):
        """EXPERIMENTS references benches and tests; all must exist."""
        text = _read("EXPERIMENTS.md")
        targets = set(re.findall(r"test_[a-z0-9_]+", text))
        known = {p.stem for p in (ROOT / "benchmarks").glob("test_*.py")}
        known |= {p.stem for p in (ROOT / "tests").rglob("test_*.py")}
        for target in targets:
            matches = [k for k in known if k.startswith(target)]
            assert matches, target
