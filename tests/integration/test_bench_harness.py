"""The benchmark harness run in-process on a tiny panel.

Loads ``benchmarks/bench_postlude.py`` by path (benchmarks/ is not a
package), runs the quick panel, and validates the emitted JSON against
the documented schema — including that ``validate_results`` actually
rejects malformed documents.
"""

import copy
import importlib.util
import json
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture(scope="module")
def bench():
    path = REPO_ROOT / "benchmarks" / "bench_postlude.py"
    spec = importlib.util.spec_from_file_location("bench_postlude", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def document(bench, tmp_path_factory):
    output = tmp_path_factory.mktemp("bench") / "BENCH_postlude.json"
    exit_code = bench.main(
        [
            "-o",
            str(output),
            "--quick",
            "--repeats",
            "1",
            "--no-workloads",
            "--no-memory",
        ]
    )
    assert exit_code == 0
    with open(output, encoding="utf-8") as handle:
        return json.load(handle)


def test_emitted_json_matches_schema(bench, document):
    bench.validate_results(document)  # must not raise
    assert document["schema"] == bench.SCHEMA


def test_every_result_row_has_exact_schema_fields(bench, document):
    for row in document["results"]:
        assert set(row) == set(bench.RESULT_FIELDS)
        for field, kind in bench.RESULT_FIELDS.items():
            assert isinstance(row[field], kind), field


def test_all_engines_timed_on_all_quick_traces(bench, document):
    from repro.core import engines

    expected_engines = set(engines.engine_names(include_auto=False))
    traces = {row["trace"] for row in document["results"]}
    assert len(traces) == len(bench.synthetic_panel(quick=True))
    for trace in traces:
        timed = {
            row["engine"]
            for row in document["results"]
            if row["trace"] == trace
        }
        assert timed == expected_engines, trace


def test_all_engines_matched_serial(document):
    assert all(row["match"] for row in document["results"])
    assert all(row["wall_s"] >= 0 for row in document["results"])


def test_summary_reports_largest_synthetic_speedup(document):
    summary = document["summary"]
    largest = max(document["results"], key=lambda row: row["N"])
    assert summary["largest_synthetic_trace"] == largest["trace"]
    assert summary["vectorized_speedup"] == pytest.approx(
        summary["serial_wall_s"] / summary["vectorized_wall_s"]
    )


@pytest.mark.parametrize(
    "mutation",
    [
        lambda doc: doc.update(schema="bogus/0"),
        lambda doc: doc.pop("results"),
        lambda doc: doc.update(results=[]),
        lambda doc: doc["results"][0].pop("wall_s"),
        lambda doc: doc["results"][0].update(wall_s=-1.0),
        lambda doc: doc["results"][0].update(match=False),
        lambda doc: doc["results"][0].update(extra_field=1),
        lambda doc: doc["summary"].pop("vectorized_speedup"),
    ],
    ids=[
        "wrong-schema",
        "no-results",
        "empty-results",
        "missing-field",
        "negative-wall",
        "mismatch",
        "extra-field",
        "summary-missing-key",
    ],
)
def test_validate_results_rejects_malformed_documents(bench, document, mutation):
    broken = copy.deepcopy(document)
    mutation(broken)
    with pytest.raises(ValueError):
        bench.validate_results(broken)


def test_committed_bench_results_meet_speedup_floor(bench):
    """The checked-in BENCH_postlude.json must validate and show the
    >= 3x serial-to-vectorized speedup on the largest synthetic trace."""
    path = REPO_ROOT / "BENCH_postlude.json"
    with open(path, encoding="utf-8") as handle:
        committed = json.load(handle)
    bench.validate_results(committed)
    assert committed["summary"]["vectorized_speedup"] >= 3.0
