"""Public-API contract: ``__all__`` lists are accurate and complete.

Every name a package exports must exist, be importable, and carry a
docstring; and docs/api.md must not reference names that do not exist.
"""

import importlib
import pathlib
import re

import pytest

PACKAGES = [
    "repro",
    "repro.trace",
    "repro.isa",
    "repro.workloads",
    "repro.cache",
    "repro.core",
    "repro.explore",
    "repro.scenario",
    "repro.analysis",
    "repro.obs",
    "repro.store",
    "repro.serve",
    "repro.stream",
    "repro.sweep",
]

ROOT = pathlib.Path(__file__).resolve().parents[2]


@pytest.mark.parametrize("package_name", PACKAGES)
def test_all_names_exist_and_are_documented(package_name):
    package = importlib.import_module(package_name)
    exported = getattr(package, "__all__", None)
    assert exported, f"{package_name} must define __all__"
    assert len(exported) == len(set(exported)), "duplicate __all__ entries"
    for name in exported:
        assert hasattr(package, name), f"{package_name}.{name} missing"
        obj = getattr(package, name)
        if callable(obj) or isinstance(obj, type):
            assert obj.__doc__, f"{package_name}.{name} lacks a docstring"


@pytest.mark.parametrize("package_name", PACKAGES)
def test_star_import_is_clean(package_name):
    namespace = {}
    exec(f"from {package_name} import *", namespace)  # noqa: S102
    package = importlib.import_module(package_name)
    for name in package.__all__:
        assert name in namespace


def test_api_doc_backtick_names_resolve():
    """Every `backticked` identifier in docs/api.md must exist somewhere."""
    text = (ROOT / "docs" / "api.md").read_text(encoding="utf-8")
    candidates = set(re.findall(r"`([A-Za-z_][A-Za-z0-9_.]*)`", text))
    # Restrict to plain identifiers (skip paths, dotted call examples).
    names = {
        c for c in candidates
        if "." not in c and not c.endswith("_trace") or c.endswith("_trace")
    }
    universe = set()
    for package_name in PACKAGES:
        package = importlib.import_module(package_name)
        universe.update(dir(package))
    # Submodule-level names the doc mentions with module prefixes.
    for module_name in (
        "repro.trace.strip",
        "repro.cache.simulator",
        "repro.cache.onepass",
        "repro.core.validation",
        "repro.isa.errors",
        "repro.core.streaming",
        "repro.trace.io",
        "repro.sweep.scheduler",
    ):
        universe.update(dir(importlib.import_module(module_name)))
    universe.update(PACKAGES)
    # Engine and pool-kind names are registry strings, not identifiers.
    universe.update(
        {"repro", "bitmask", "serial", "streaming", "parallel", "vectorized", "auto"}
    )
    universe.update({"process", "thread", "inline"})
    # Scenario registry strings and spec field names.
    universe.update({"lru", "fifo", "energy", "area", "time"})
    universe.update({"policy", "l2_depth", "cost_model", "scenario"})
    missing = sorted(
        name
        for name in names
        if name not in universe
        and not name.startswith(("read_/", "write_"))
        and not name.islower() is False  # keep everything; filtered below
    )
    # Allow documented method references like .run() captured without dots
    # and format artifacts.
    allowed_extra = {
        "run", "step", "dump_registers", "instruction_trace", "data_trace",
        "combined_trace", "disassemble", "symbol", "to_json_dict",
        "reconfiguration_benefit", "to_line_trace", "gz", "rbt",
        "unified_trace", "verified", "init", "__init__", "misses_at_node",
    }
    real_missing = [n for n in missing if n not in allowed_extra]
    assert not real_missing, f"docs/api.md references unknown names: {real_missing}"
