"""Run the usage examples embedded in module docstrings.

Several public classes carry ``Example:`` doctest blocks; this test
executes every doctest in the package so documented examples can never
drift from the code.
"""

import doctest
import importlib
import pkgutil

import repro


def _iter_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield importlib.import_module(info.name)


def test_all_module_doctests_pass():
    total_tests = 0
    for module in _iter_modules():
        results = doctest.testmod(
            module, verbose=False, report=True, raise_on_error=False
        )
        assert results.failed == 0, f"doctest failure in {module.__name__}"
        total_tests += results.attempted
    # Guard against the doctests silently disappearing.
    assert total_tests >= 5, f"expected at least 5 doctests, ran {total_tests}"
