"""Structural checks on every kernel's assembly program.

Beyond checksum verification, the programs themselves must be
well-formed: they assemble, deposit their result at a `result:` label,
keep code and data in disjoint regions, and never touch memory outside
the machine's address space.
"""

import pytest

from repro.isa.assembler import assemble
from repro.isa.instructions import Opcode
from repro.workloads import ALL_WORKLOAD_NAMES, get_workload, run_workload_by_name


@pytest.fixture(scope="module", params=ALL_WORKLOAD_NAMES)
def kernel(request):
    workload = get_workload(request.param, scale="tiny")
    program = assemble(workload.source, name=workload.name)
    return workload, program


class TestProgramStructure:
    def test_assembles_and_has_result_label(self, kernel):
        workload, program = kernel
        assert workload.result_symbol in program.symbols

    def test_ends_with_halt(self, kernel):
        _, program = kernel
        assert program.instructions[-1].op is Opcode.HALT

    def test_code_and_data_regions_disjoint(self, kernel):
        _, program = kernel
        code_end = program.code_base + program.code_words
        assert code_end <= program.data_base

    def test_data_fits_address_space(self, kernel):
        _, program = kernel
        top = program.data_base + program.data_words
        assert top <= 1 << program.address_bits

    def test_all_branch_targets_inside_code(self, kernel):
        _, program = kernel
        count = program.code_words
        for instruction in program.instructions:
            if instruction.op in (
                Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE,
                Opcode.BLTU, Opcode.BGEU,
            ):
                assert 0 <= instruction.c < count
            elif instruction.op in (Opcode.J, Opcode.JAL):
                assert 0 <= instruction.a < count

    def test_reasonable_code_size(self, kernel):
        workload, program = kernel
        # Real kernels, not stubs: at least a dozen instructions, and
        # small enough to be believable embedded code.
        assert 12 <= program.code_words <= 200, workload.name


class TestRuntimeStructure:
    @pytest.mark.parametrize("name", ALL_WORKLOAD_NAMES)
    def test_memory_accesses_stay_in_data_segment(self, name):
        run = run_workload_by_name(name, scale="tiny")
        program = run.machine.program
        low = program.data_base
        high = 1 << program.address_bits
        for addr in run.data_trace:
            assert low <= addr < high, (name, hex(addr))

    @pytest.mark.parametrize("name", ALL_WORKLOAD_NAMES)
    def test_every_instruction_reachable_instructions_executed(self, name):
        run = run_workload_by_name(name, scale="tiny")
        executed = set(run.instruction_trace)
        # At least half the static code runs on the tiny inputs (no
        # large dead regions accidentally assembled in).
        assert len(executed) >= run.machine.program.code_words // 2, name
