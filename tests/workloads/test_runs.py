"""Integration tests: every kernel must execute correctly on the VM.

The tiny-scale runs come from a session-scoped fixture (conftest) because
assembling + executing all 12 kernels is the expensive part.
"""

import pytest

from repro.trace.reference import AccessKind
from repro.workloads import (
    WORKLOAD_NAMES,
    get_workload,
    list_workloads,
    run_workload,
)
from repro.workloads.registry import clear_caches, run_workload_by_name


class TestRegistry:
    def test_twelve_workloads_in_paper_order(self):
        names = list_workloads()
        assert len(names) == 12
        assert names == sorted(names)  # the paper lists them alphabetically
        assert names[0] == "adpcm" and names[-1] == "ucbqsort"

    def test_unknown_name_raises_with_candidates(self):
        with pytest.raises(KeyError, match="available"):
            get_workload("nonesuch")

    def test_builds_are_cached(self):
        assert get_workload("crc", "tiny") is get_workload("crc", "tiny")

    def test_scales_produce_different_sizes(self):
        tiny = get_workload("bcnt", "tiny")
        default = get_workload("bcnt", "default")
        assert tiny.params["words"] < default.params["words"]

    def test_clear_caches(self):
        first = get_workload("crc", "tiny")
        clear_caches()
        assert get_workload("crc", "tiny") is not first


class TestAllKernelsVerify:
    def test_all_twelve_ran(self, tiny_runs):
        assert set(tiny_runs) == set(WORKLOAD_NAMES)

    @pytest.mark.parametrize("name", WORKLOAD_NAMES)
    def test_checksum_matches_golden_model(self, tiny_runs, name):
        run = tiny_runs[name]
        assert run.verified
        assert run.checksum == run.workload.expected

    @pytest.mark.parametrize("name", WORKLOAD_NAMES)
    def test_traces_are_nonempty_and_sized_consistently(self, tiny_runs, name):
        run = tiny_runs[name]
        assert len(run.instruction_trace) == run.machine.instructions_executed
        assert len(run.instruction_trace) > 100
        assert len(run.data_trace) > 0

    @pytest.mark.parametrize("name", WORKLOAD_NAMES)
    def test_data_trace_has_reads_and_writes(self, tiny_runs, name):
        dtrace = tiny_runs[name].data_trace
        kinds = {dtrace.kind(i) for i in range(len(dtrace))}
        assert AccessKind.READ in kinds
        assert AccessKind.WRITE in kinds  # every kernel stores its result

    @pytest.mark.parametrize("name", WORKLOAD_NAMES)
    def test_instruction_trace_addresses_are_code_addresses(self, tiny_runs, name):
        run = tiny_runs[name]
        code_words = run.machine.program.code_words
        assert all(0 <= addr < code_words for addr in run.instruction_trace)

    @pytest.mark.parametrize("name", WORKLOAD_NAMES)
    def test_data_trace_addresses_are_data_addresses(self, tiny_runs, name):
        run = tiny_runs[name]
        base = run.machine.program.data_base
        assert all(addr >= base for addr in run.data_trace)


class TestRunWorkload:
    def test_checksum_mismatch_is_fatal(self):
        workload = get_workload("crc", "tiny")
        bad = type(workload)(
            name=workload.name,
            description=workload.description,
            source=workload.source,
            expected=workload.expected ^ 1,
        )
        with pytest.raises(AssertionError, match="checksum mismatch"):
            run_workload(bad)

    def test_run_cache_returns_same_object(self):
        first = run_workload_by_name("qurt", "tiny")
        second = run_workload_by_name("qurt", "tiny")
        assert first is second

    def test_trace_names_include_kernel_name(self, tiny_runs):
        run = tiny_runs["fir"]
        assert run.instruction_trace.name == "fir.inst"
        assert run.data_trace.name == "fir.data"
