"""Unit tests for the extra PowerStone kernels (jpeg, summin, v42, whet)."""

import pytest

from repro.trace.reference import AccessKind
from repro.workloads import (
    ALL_WORKLOAD_NAMES,
    EXTRA_WORKLOAD_NAMES,
    WORKLOAD_NAMES,
    list_workloads,
    run_workload_by_name,
)
from repro.workloads import jpeg, summin, v42, whet
from repro.workloads.common import LCG, WORD_MASK


class TestRegistryExtras:
    def test_extras_not_in_paper_set(self):
        assert not set(EXTRA_WORKLOAD_NAMES) & set(WORKLOAD_NAMES)
        assert set(ALL_WORKLOAD_NAMES) == set(WORKLOAD_NAMES) | set(
            EXTRA_WORKLOAD_NAMES
        )

    def test_list_workloads_flag(self):
        assert len(list_workloads()) == 12
        assert len(list_workloads(include_extras=True)) == 16
        assert "jpeg" in list_workloads(include_extras=True)
        assert "jpeg" not in list_workloads()


@pytest.fixture(scope="module")
def extra_runs():
    return {
        name: run_workload_by_name(name, scale="tiny")
        for name in EXTRA_WORKLOAD_NAMES
    }


class TestExtraKernelsVerify:
    @pytest.mark.parametrize("name", EXTRA_WORKLOAD_NAMES)
    def test_checksum_matches_golden(self, extra_runs, name):
        run = extra_runs[name]
        assert run.verified

    @pytest.mark.parametrize("name", EXTRA_WORKLOAD_NAMES)
    def test_traces_well_formed(self, extra_runs, name):
        run = extra_runs[name]
        assert len(run.instruction_trace) == run.machine.instructions_executed
        assert len(run.data_trace) > 0
        kinds = {run.data_trace.kind(i) for i in range(len(run.data_trace))}
        assert AccessKind.READ in kinds and AccessKind.WRITE in kinds


class TestJpegGolden:
    def test_cosine_matrix_row_zero_is_flat(self):
        matrix = jpeg.cosine_matrix()
        assert len(set(matrix[:8])) == 1  # DC basis row is constant

    def test_dc_coefficient_dominates_flat_block(self):
        # A flat block has all its energy in the DC coefficient, so the
        # checksum of a flat block equals that of any other flat block
        # with the same level.
        flat = [100] * 64
        assert jpeg.golden([flat]) == jpeg.golden([list(flat)])

    def test_quant_table_positive(self):
        assert all(q > 0 for q in jpeg.quant_table())

    def test_golden_sensitive_to_pixels(self):
        a = [100] * 64
        b = [100] * 32 + [0] * 32  # strong vertical edge
        assert jpeg.golden([a]) != jpeg.golden([b])


class TestSumminGolden:
    def test_exact_match_found(self):
        codebook = [[0] * 16, [5] * 16, [9] * 16]
        inputs = [[5] * 16]
        # best index 1, distance 0 -> checksum = 0*31 + 1, + 0.
        assert summin.golden(codebook, inputs) == 1

    def test_early_exit_does_not_change_answer(self):
        codebook, inputs = summin.make_inputs(8)
        # Recompute without any early exit.
        def brute(vector):
            distances = [
                sum(abs(a - b) for a, b in zip(vector, cand))
                for cand in codebook
            ]
            best = min(distances)
            return distances.index(best), best

        checksum = 0
        for vector in inputs:
            index, distance = brute(vector)
            checksum = (checksum * 31 + index) & WORD_MASK
            checksum = (checksum + distance) & WORD_MASK
        assert checksum == summin.golden(codebook, inputs)


class TestV42Golden:
    def test_repetitive_input_compresses(self):
        data = [3, 7] * 100
        _, emitted = v42.golden(data)
        assert emitted < 110

    def test_single_symbol_stream(self):
        checksum, emitted = v42.golden([4] * 50)
        assert emitted < 15  # match lengths grow linearly

    def test_all_distinct_pairs_emit_per_symbol(self):
        data = list(range(16))
        _, emitted = v42.golden(data)
        assert emitted == 16

    def test_deterministic(self):
        data = LCG(9).words(300, bound=16)
        assert v42.golden(data) == v42.golden(data)


class TestWhetGolden:
    def test_deterministic(self):
        seeds = LCG(1).words(32, bound=4096)
        assert whet.golden(seeds, 10) == whet.golden(seeds, 10)

    def test_sine_table_monotone_quarter_wave(self):
        table = whet.sine_table()
        assert table[0] == 0
        assert table[-1] == 1 << 12
        assert all(b >= a for a, b in zip(table, table[1:]))

    def test_cycles_change_result(self):
        seeds = LCG(2).words(32, bound=4096)
        assert whet.golden(seeds, 4) != whet.golden(seeds, 5)
