"""Unit tests for the workloads' golden models (Python reference code)."""

import pytest

from repro.workloads import adpcm, bcnt, blit, compress, crc, des, engine
from repro.workloads import fir, g3fax, pocsag, qurt, ucbqsort
from repro.workloads.common import LCG, WORD_MASK, scaled, words_directive


class TestLCG:
    def test_deterministic(self):
        assert LCG(1).words(10) == LCG(1).words(10)

    def test_bounded(self):
        assert all(0 <= v < 17 for v in LCG(2).words(100, bound=17))

    def test_bad_bound(self):
        with pytest.raises(ValueError):
            LCG(0).below(0)

    def test_known_first_value(self):
        # Numerical Recipes LCG from seed 0: 1013904223.
        assert LCG(0).next() == 1013904223


class TestHelpers:
    def test_scaled(self):
        assert scaled(100, "default") == 100
        assert scaled(100, "small") == 50
        assert scaled(100, "tiny") == 12
        assert scaled(100, "large") == 200

    def test_scaled_minimum(self):
        assert scaled(8, "tiny", minimum=4) == 4

    def test_scaled_unknown_scale(self):
        with pytest.raises(ValueError, match="unknown scale"):
            scaled(10, "huge")

    def test_words_directive_wraps(self):
        text = words_directive(list(range(20)), per_line=8)
        assert text.count(".word") == 3

    def test_words_directive_masks_to_32_bits(self):
        assert str((1 << 33) + 5 & WORD_MASK) in words_directive([(1 << 33) + 5])

    def test_words_directive_rejects_empty(self):
        with pytest.raises(ValueError):
            words_directive([])


class TestCrcGolden:
    def test_standard_check_vector(self):
        # CRC-32 of ASCII "123456789" is the universal check value.
        message = [ord(c) for c in "123456789"]
        assert crc.golden(message) == 0xCBF43926

    def test_table_first_entries(self):
        table = crc.crc_table()
        assert table[0] == 0
        assert table[1] == 0x77073096  # classic table constant


class TestBcntGolden:
    def test_popcount_table(self):
        table = bcnt.popcount_table()
        assert table[0] == 0
        assert table[0xFF] == 8
        assert table[0b1010] == 2

    def test_golden_counts_bits(self):
        assert bcnt.golden([0xF, 0xF0]) == 8
        assert bcnt.golden([0xFFFFFFFF]) == 32


class TestFirGolden:
    def test_identity_filter(self):
        # Single-tap filter with coefficient 1 sums the signal prefix.
        signal = [1, 2, 3, 4]
        assert fir.golden(signal, [1]) == sum(signal[:3]) & WORD_MASK

    def test_wraparound(self):
        assert fir.golden([1 << 31, 0, 0], [2, 1]) == 0  # 2*2^31 wraps to 0


class TestBlitGolden:
    def test_simple_shift_merge(self):
        # One row, two words, shift 4: verify the carry chain.
        src = [0xAABBCCDD, 0x11223344]
        dst = [0, 0, 0]
        checksum = blit.golden(src, dst, rows=1, row_words=2, shift=4)
        merged0 = 0xAABBCCDD >> 4
        merged1 = ((0xAABBCCDD << 28) & WORD_MASK) | (0x11223344 >> 4)
        spill = (0x11223344 << 28) & WORD_MASK
        assert checksum == (merged0 + merged1 + spill) & WORD_MASK


class TestPocsagGolden:
    def test_valid_codeword_has_zero_syndrome(self):
        for message in (0, 1, 0x155555, (1 << 21) - 1):
            assert pocsag.syndrome(pocsag.bch_encode(message)) == 0

    def test_corrupted_codeword_detected(self):
        codeword = pocsag.bch_encode(0x12345)
        for bit in (0, 7, 30):
            assert pocsag.syndrome(codeword ^ (1 << bit)) != 0

    def test_bch_encode_rejects_wide_message(self):
        with pytest.raises(ValueError):
            pocsag.bch_encode(1 << 21)

    def test_every_third_codeword_corrupted(self):
        words = pocsag.make_codewords(9)
        syndromes = [pocsag.syndrome(w) for w in words]
        assert all(s == 0 for s in syndromes[0::3])
        assert all(s == 0 for s in syndromes[1::3])
        assert all(s != 0 for s in syndromes[2::3])


class TestQurtGolden:
    @pytest.mark.parametrize("value", [0, 1, 2, 3, 4, 15, 16, 17, 99980001])
    def test_isqrt_newton(self, value):
        root = qurt.isqrt_newton(value)
        assert root * root <= value < (root + 1) * (root + 1)

    def test_isqrt_rejects_negative(self):
        with pytest.raises(ValueError):
            qurt.isqrt_newton(-1)

    def test_real_roots_case(self):
        # x^2 - 5x + 6 = 0 -> roots 3 and 2.
        checksum = qurt.golden([(1, -5, 6)], passes=1)
        assert checksum == (3 + 3 * 2) & WORD_MASK

    def test_complex_roots_take_marker_path(self):
        # x^2 + x + 10 -> disc = 1 - 40 < 0.
        disc = 1 - 40
        expected = (0x9E3779B9 + disc) & WORD_MASK
        assert qurt.golden([(1, 1, 10)], passes=1) == expected

    def test_multiple_passes_accumulate(self):
        one = qurt.golden([(1, -5, 6)], passes=1)
        three = qurt.golden([(1, -5, 6)], passes=3)
        assert three == (3 * one) & WORD_MASK


class TestEngineGolden:
    def test_flat_map_interpolates_to_constant(self):
        flat_map = [500] * (16 * 16)
        checksum = engine.golden(flat_map, [(100, 100), (3000, 2000)])
        assert checksum == (2 * 500) & WORD_MASK  # no knock, two samples

    def test_knock_limit_branch(self):
        hot_map = [1000] * (16 * 16)  # every value > limit of 700
        checksum = engine.golden(hot_map, [(0, 0)])
        assert checksum == 1 << 24  # one retard, zero advance


class TestDesGolden:
    def test_feistel_is_decryptable(self):
        """Running rounds with reversed keys undoes the cipher (swap form)."""
        sboxes, round_keys, _ = des.make_inputs(1)
        left, right = 0x01234567, 0x89ABCDEF
        el, er = des.encrypt_block(left, right, round_keys, sboxes)
        # Decrypt: swap halves, run with reversed keys, swap back.
        dl, dr = des.encrypt_block(er, el, list(reversed(round_keys)), sboxes)
        assert (dr, dl) == (left, right)

    def test_golden_depends_on_keys(self):
        sboxes, round_keys, blocks = des.make_inputs(4)
        other_keys = [(k + 1) & WORD_MASK for k in round_keys]
        assert des.golden(blocks, round_keys, sboxes) != des.golden(
            blocks, other_keys, sboxes
        )


class TestCompressGolden:
    def test_repetitive_input_compresses(self):
        data = [1, 2] * 100
        _, emitted = compress.golden(data)
        assert emitted < len(data) // 2  # dictionary pays off

    def test_incompressible_prefix_emits_per_symbol(self):
        # All-distinct pairs early on: every step emits.
        data = list(range(16)) * 2
        checksum, emitted = compress.golden(data)
        assert emitted >= 16

    def test_deterministic(self):
        data = LCG(5).words(200, bound=16)
        assert compress.golden(data) == compress.golden(data)


class TestG3faxGolden:
    def test_consumed_codes_reported(self):
        pool = LCG(1).words(4096, bound=64)
        checksum, consumed = g3fax.golden(2, pool)
        assert 0 < consumed < len(pool)

    def test_all_black_line_checksum(self):
        # Code 63 -> run 63; force alternating colors but measure one line.
        checksum, _ = g3fax.golden(1, [63] * 200)
        assert isinstance(checksum, int)

    def test_run_table_values(self):
        table = g3fax.make_run_table()
        assert table[0] == 1
        assert table[63] == 63


class TestUcbqsortGolden:
    def test_checksum_reflects_sorted_order(self):
        data = [3, 1, 2]
        # sorted: [1,2,3] -> 1*1 + 2*2 + 3*3 = 14
        assert ucbqsort.golden(data) == 14

    def test_permutation_invariance(self):
        assert ucbqsort.golden([5, 4, 3, 2, 1]) == ucbqsort.golden([1, 2, 3, 4, 5])
