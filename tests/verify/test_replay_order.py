"""Corpus replay ordering: newest failures replay first.

The bug this pins down: ``load_corpus`` used to return artifacts in
directory-name order (``<kind>-<digest12>`` — effectively random), so
under ``--max-traces`` or a wall-clock budget a freshly persisted
failure could sit behind a pile of old regression seeds and never get
replayed.  Replay order must be manifest-mtime descending, name
ascending on ties, and the runner must consume the corpus in that
order.
"""

from __future__ import annotations

import os

from repro.trace.trace import Trace
from repro.verify import VerifyConfig, run_verify
from repro.verify.corpus import (
    CrashArtifact,
    load_corpus,
    save_crash,
    seed_regression_corpus,
)


def _artifact(index: int) -> CrashArtifact:
    low = index % 32
    return CrashArtifact(
        kind="grid",
        name=f"crash-{index}",
        trace=Trace([low, low + 1, low] * 3, address_bits=6),
        detail=f"synthetic failure {index}",
    )


def _stamp(artifact_dir: str, when: float) -> None:
    manifest = os.path.join(artifact_dir, "crash.json")
    os.utime(manifest, (when, when))


class TestLoadOrder:
    def test_newest_first(self, tmp_path) -> None:
        root = str(tmp_path / "corpus")
        base = 1_700_000_000.0
        dirs = {}
        for index in range(4):
            dirs[index] = save_crash(root, _artifact(index))
        # oldest -> newest: 2, 0, 3, 1
        for index, age in ((2, 40.0), (0, 30.0), (3, 20.0), (1, 10.0)):
            _stamp(dirs[index], base - age)
        names = [artifact.name for artifact in load_corpus(root)]
        assert names == ["crash-1", "crash-3", "crash-0", "crash-2"]

    def test_ties_break_by_path_ascending(self, tmp_path) -> None:
        root = str(tmp_path / "corpus")
        dirs = [save_crash(root, _artifact(index)) for index in range(3)]
        for entry_dir in dirs:
            _stamp(entry_dir, 1_700_000_000.0)
        loaded = load_corpus(root)
        assert [artifact.path for artifact in loaded] == sorted(
            artifact.path for artifact in loaded
        )

    def test_mtime_recorded_on_load_and_save(self, tmp_path) -> None:
        root = str(tmp_path / "corpus")
        artifact = _artifact(0)
        save_crash(root, artifact)
        assert artifact.mtime > 0
        loaded = load_corpus(root)[0]
        assert loaded.mtime == artifact.mtime

    def test_fresh_crash_outranks_regression_seeds(self, tmp_path) -> None:
        root = str(tmp_path / "corpus")
        seed_regression_corpus(root)
        for artifact in load_corpus(root):
            _stamp(artifact.path, 1_600_000_000.0)  # old seeds
        fresh_dir = save_crash(root, _artifact(9))
        _stamp(fresh_dir, 1_700_000_000.0)
        assert load_corpus(root)[0].name == "crash-9"


class TestRunnerConsumesNewestFirst:
    def test_max_traces_budget_reaches_fresh_failure(
        self, tmp_path, monkeypatch
    ) -> None:
        """With a replay cap smaller than the corpus, the newest entry
        must be the *first* one replayed — the whole point of the fix."""
        import repro.verify.runner as runner_module

        root = str(tmp_path / "corpus")
        base = 1_700_000_000.0
        for index in range(6):
            _stamp(save_crash(root, _artifact(index)), base - 100.0 + index)
        fresh_dir = save_crash(root, _artifact(77))
        _stamp(fresh_dir, base)

        seen = []
        real_run_grid = runner_module.run_grid

        def spying_run_grid(trace, *args, **kwargs):
            seen.append(trace.name)
            return real_run_grid(trace, *args, **kwargs)

        monkeypatch.setattr(runner_module, "run_grid", spying_run_grid)
        config = VerifyConfig(
            seed=0,
            max_traces=2,  # far fewer than the 7 corpus entries
            engines=("serial",),
            preludes=("python",),
            include_warm=False,
            laws="none",
            corpus_dir=root,
            shrink=False,
        )
        report = run_verify(config)
        assert report.stopped_by == "max-traces"
        assert report.corpus_replayed == 2
        assert seen[0] == "crash-77"  # newest replays first
        assert seen == ["crash-77", "crash-5"]  # then next-newest
