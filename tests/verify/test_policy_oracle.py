"""The policy oracle: FIFO hybrid vs the simulator across the corpus."""

import itertools

import pytest

from repro.verify import VerifyConfig, policy_divergences, run_grid, run_verify
from repro.verify.generators import anchor_entries, corpus_stream


class TestPolicyOracle:
    def test_fifo_is_bit_identical_across_the_anchor_corpus(self):
        # The tentpole acceptance bar: every (trace, depth, assoc) cell.
        for entry in anchor_entries():
            divergences = policy_divergences(
                entry.trace, entry.budgets, policies=("fifo",)
            )
            assert not divergences, (entry.name, divergences)

    def test_fifo_holds_on_a_fuzz_slice(self):
        for entry in itertools.islice(corpus_stream(seed=3), 14, 22):
            divergences = policy_divergences(
                entry.trace, entry.budgets, policies=("fifo",)
            )
            assert not divergences, (entry.name, divergences)

    def test_lru_policy_is_skipped(self):
        entry = anchor_entries()[0]
        assert policy_divergences(entry.trace, entry.budgets, policies=("lru",)) == []

    def test_grid_carries_the_policy_axis(self):
        entry = anchor_entries()[0]
        outcome = run_grid(
            entry.trace,
            entry.budgets,
            processes=1,
            policies=("fifo",),
        )
        assert outcome.ok

    def test_runner_config_validates_policies(self):
        with pytest.raises(ValueError, match="unknown policy"):
            VerifyConfig(policies=("mru",))

    def test_runner_smoke_with_policy_axis(self):
        report = run_verify(
            VerifyConfig(
                max_traces=3,
                policies=("fifo",),
                corpus_dir=None,
                include_warm=False,
                engines=("serial",),
                preludes=("python",),
                laws="none",
            )
        )
        assert report.ok
        assert report.traces == 3
