"""Delta-debugging trace shrinking: minimal, deterministic, budgeted."""

from repro.trace.trace import Trace
from repro.verify.shrink import shrink_trace


def _trace(addresses):
    return Trace(list(addresses), name="shrink-input")


class TestDdmin:
    def test_single_culprit_shrinks_to_one_reference(self):
        trace = _trace([1, 4, 2, 7, 3, 6, 5, 0, 2, 4])
        result = shrink_trace(trace, lambda t: 7 in list(t))
        assert list(result.trace) == [7]
        assert not result.exhausted

    def test_ordered_pair_shrinks_to_two_references(self):
        def predicate(t):
            addrs = list(t)
            return 3 in addrs and 9 in addrs and addrs.index(3) < addrs.index(9)

        trace = _trace([5, 3, 1, 1, 8, 9, 2, 3, 9, 4])
        result = shrink_trace(trace, predicate)
        assert len(result.trace) == 2
        assert list(result.trace) == [3, 9]

    def test_result_still_fails_the_predicate(self):
        predicate = lambda t: len(t) >= 4  # noqa: E731
        result = shrink_trace(_trace(range(40)), predicate)
        assert predicate(result.trace)
        assert len(result.trace) == 4

    def test_shrinking_is_deterministic(self):
        predicate = lambda t: sum(list(t)) >= 10  # noqa: E731
        trace = _trace([9, 1, 3, 3, 3, 1, 9])
        a = shrink_trace(trace, predicate)
        b = shrink_trace(trace, predicate)
        assert list(a.trace) == list(b.trace)
        assert a.checks == b.checks


class TestCanonicalization:
    def test_surviving_addresses_are_renamed_densely(self):
        # Any 4 references fail, so the shrunk addresses canonicalize
        # to first-occurrence ranks (all < 4).
        result = shrink_trace(
            _trace([100, 200, 300, 400, 500, 600]), lambda t: len(t) >= 4
        )
        assert len(result.trace) == 4
        assert all(addr < 4 for addr in result.trace)

    def test_canonicalization_is_skipped_when_it_breaks_the_failure(self):
        # The failure depends on the literal address 7: renaming would
        # lose it, so the shrinker must keep the original labels.
        result = shrink_trace(_trace([2, 7, 5]), lambda t: 7 in list(t))
        assert list(result.trace) == [7]


class TestBudgets:
    def test_max_checks_is_respected(self):
        calls = []

        def predicate(t):
            calls.append(len(t))
            return True

        result = shrink_trace(_trace(range(64)), predicate, max_checks=5)
        assert result.checks <= 6  # the in-flight check may finish
        assert len(calls) == result.checks

    def test_exhausted_flags_an_unfinished_shrink(self):
        result = shrink_trace(
            _trace(range(64)), lambda t: len(t) >= 60, max_checks=2
        )
        assert result.exhausted
        assert len(result.trace) >= 60  # still a valid reproducer
