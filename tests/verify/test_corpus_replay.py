"""The failure corpus: persistence, loading, and full-grid replay."""

import json
import os

import pytest

from repro.trace.trace import Trace
from repro.verify import VerifyConfig, run_verify
from repro.verify.corpus import (
    CRASH_SCHEMA,
    CrashArtifact,
    load_corpus,
    regression_entries,
    save_crash,
    seed_regression_corpus,
)
from repro.verify.oracle import run_grid


class TestRegressionEntries:
    def test_the_known_tricky_shapes_are_pinned(self):
        names = [entry.name for entry in regression_entries()]
        assert names == [
            "reg-single-reference",
            "reg-all-unique",
            "reg-n1-wide-bits",
            "reg-budget0-conflict",
        ]
        for entry in regression_entries():
            assert 0 in entry.budgets

    @pytest.mark.slow
    def test_every_regression_entry_passes_the_full_grid(self):
        for entry in regression_entries():
            outcome = run_grid(entry.trace, entry.budgets, simulate=True)
            assert outcome.ok, (
                entry.name,
                [d.as_dict() for d in outcome.divergences],
            )


class TestPersistence:
    def test_save_load_round_trips(self, tmp_path):
        artifact = CrashArtifact(
            kind="grid",
            name="roundtrip",
            trace=Trace([1, 2, 1, 2], address_bits=7, name="roundtrip"),
            budgets=(0, 3),
            cell="vectorized/fast/cold",
            detail="example",
            shrunk_from=40,
            seed=9,
        )
        path = save_crash(str(tmp_path), artifact)
        assert os.path.isfile(os.path.join(path, "trace.trace"))
        loaded = load_corpus(str(tmp_path))
        assert len(loaded) == 1
        got = loaded[0]
        assert list(got.trace) == [1, 2, 1, 2]
        assert got.trace.address_bits == 7
        assert got.budgets == (0, 3)
        assert got.cell == "vectorized/fast/cold"
        assert got.shrunk_from == 40

    def test_saving_is_idempotent(self, tmp_path):
        artifact = CrashArtifact(
            kind="grid", name="dup", trace=Trace([3, 3, 3], name="dup")
        )
        first = save_crash(str(tmp_path), artifact)
        second = save_crash(str(tmp_path), artifact)
        assert first == second
        assert len(load_corpus(str(tmp_path))) == 1

    def test_corrupt_artifacts_are_skipped(self, tmp_path):
        seed_regression_corpus(str(tmp_path))
        bad = tmp_path / "grid-deadbeef0000"
        bad.mkdir()
        (bad / "crash.json").write_text("{not json")
        (bad / "trace.trace").write_text("zz\n")
        loaded = load_corpus(str(tmp_path))
        assert len(loaded) == len(regression_entries())

    def test_crash_manifest_schema(self, tmp_path):
        artifact = CrashArtifact(
            kind="invariant", name="law", trace=Trace([0, 1]), law="rotate"
        )
        path = save_crash(str(tmp_path), artifact)
        with open(os.path.join(path, "crash.json")) as fh:
            doc = json.load(fh)
        assert doc["schema"] == CRASH_SCHEMA
        assert doc["kind"] == "invariant"
        assert doc["law"] == "rotate"
        assert doc["trace_len"] == 2


class TestSeededReplay:
    def test_seeding_writes_one_artifact_per_entry(self, tmp_path):
        count = seed_regression_corpus(str(tmp_path), seed=1)
        assert count == len(regression_entries())
        assert seed_regression_corpus(str(tmp_path), seed=1) == count  # idempotent
        assert len(load_corpus(str(tmp_path))) == count

    def test_seeded_corpus_replays_clean_through_the_grid(self, tmp_path):
        seed_regression_corpus(str(tmp_path))
        # max_traces covers disk replay + built-in regressions only; the
        # runner replays the on-disk corpus first.
        report = run_verify(
            VerifyConfig(
                max_traces=2 * len(regression_entries()),
                corpus_dir=str(tmp_path),
                laws="none",
            )
        )
        assert report.ok, [f.as_dict() for f in report.failures]
        assert report.corpus_replayed == 2 * len(regression_entries())
