"""The differential oracle grid: agreement, and fault detection."""

import pytest

from repro.core.instance import CacheInstance, ExplorationResult
from repro.verify.oracle import (
    REFERENCE_CELL,
    GridCell,
    grid_cells,
    result_signature,
    run_grid,
)


def _bump_last_assoc(result):
    """A corrupted copy of ``result``: last instance gets one extra way."""
    instances = list(result.instances)
    last = instances[-1]
    instances[-1] = CacheInstance(
        depth=last.depth, associativity=last.associativity + 1
    )
    return ExplorationResult(
        budget=result.budget,
        instances=instances,
        misses=list(result.misses),
        trace_name=result.trace_name,
    )


class TestGridEnumeration:
    def test_reference_cell_is_always_first(self):
        cells = grid_cells()
        assert cells[0] == REFERENCE_CELL
        assert len(cells) == len(set(cells))

    def test_subset_still_contains_the_reference(self):
        cells = grid_cells(engines=("vectorized",), preludes=("fast",))
        assert cells[0] == REFERENCE_CELL
        assert GridCell("vectorized", "fast", "cold") in cells

    def test_cold_only_grid_has_no_warm_cells(self):
        cells = grid_cells(include_warm=False)
        assert all(cell.warmth == "cold" for cell in cells)

    def test_unknown_prelude_is_rejected(self):
        with pytest.raises(ValueError):
            grid_cells(preludes=("turbo",))

    def test_unknown_engine_is_rejected(self):
        with pytest.raises(ValueError):
            grid_cells(engines=("quantum",))


class TestGridAgreement:
    def test_paper_trace_full_grid_zero_divergences(self, paper_trace):
        outcome = run_grid(paper_trace, budgets=(0, 2), simulate=True)
        assert outcome.ok, [d.as_dict() for d in outcome.divergences]
        assert outcome.cells_run == len(grid_cells())
        assert outcome.reference  # reference results are exported

    def test_signatures_are_order_sensitive_and_exact(self, paper_trace):
        outcome = run_grid(
            paper_trace, budgets=(0,), cells=(REFERENCE_CELL,), simulate=False
        )
        signature = result_signature(outcome.reference)
        assert signature[0][0] == 0
        assert (2, 3, 0) in signature[0][1]  # depth 2 needs 3 ways, 0 misses


class TestFaultDetection:
    def test_tampered_cell_is_caught_as_grid_divergence(self, paper_trace):
        target = GridCell("vectorized", "fast", "cold")

        def tamper(cell, result):
            if cell == target:
                return _bump_last_assoc(result)
            return result

        outcome = run_grid(
            paper_trace,
            budgets=(0,),
            cells=(REFERENCE_CELL, target),
            tamper=tamper,
            simulate=False,
        )
        assert not outcome.ok
        assert [d.kind for d in outcome.divergences] == ["grid"]
        assert outcome.divergences[0].cell == target.label()

    def test_tampered_reference_is_caught_by_the_simulator(self, paper_trace):
        def tamper(cell, result):
            if cell == REFERENCE_CELL:
                return _bump_last_assoc(result)
            return result

        outcome = run_grid(
            paper_trace,
            budgets=(0,),
            cells=(REFERENCE_CELL,),
            tamper=tamper,
            simulate=True,
        )
        # The corrupted A is over-provisioned: minimality flags it even
        # though it still meets the budget.
        assert not outcome.ok
        assert any(d.kind == "minimality" for d in outcome.divergences)
