"""The append-equivalence oracle: chunkings, detection, grid wiring."""

from __future__ import annotations

import pytest

from repro.core.streaming import StreamingState
from repro.trace.trace import Trace
from repro.verify import run_grid, stream_divergences
from repro.verify.oracle import random_chunk_splits

TRACE = Trace(
    [1, 2, 3, 1, 2, 3, 7, 1, 9, 2, 3, 7, 1, 5, 2, 3],
    address_bits=4,
    name="oracle",
)


class TestRandomChunkSplits:
    @pytest.mark.parametrize("n", [1, 2, 7, 20])
    def test_every_chunking_partitions_the_range(self, n) -> None:
        for chunking in random_chunk_splits(n, splits=3, seed=5):
            covered = []
            for start, stop in chunking:
                assert start < stop
                covered.extend(range(start, stop))
            assert covered == list(range(n))

    def test_boundary_chunkings_always_present(self) -> None:
        chunkings = random_chunk_splits(9, splits=0, seed=0)
        assert [(i, i + 1) for i in range(9)] in chunkings
        assert [(0, 9)] in chunkings

    def test_deterministic_in_seed(self) -> None:
        assert random_chunk_splits(12, 4, 9) == random_chunk_splits(12, 4, 9)
        assert random_chunk_splits(12, 4, 9) != random_chunk_splits(12, 4, 10)

    def test_empty_trace_has_the_empty_chunking(self) -> None:
        assert random_chunk_splits(0, splits=5, seed=1) == [[]]


class TestStreamDivergences:
    def test_healthy_pipeline_is_clean(self) -> None:
        assert stream_divergences(TRACE, budgets=(0, 2), splits=3) == []

    def test_empty_trace_is_clean(self) -> None:
        assert stream_divergences(Trace([], address_bits=3)) == []

    def test_detects_a_tampered_session(self, monkeypatch) -> None:
        """Break the streaming kernel; the oracle must notice."""
        original = StreamingState.histograms

        def tampered(self):
            histograms = original(self)
            if 0 in histograms and histograms[0].counts:
                first = next(iter(histograms[0].counts))
                histograms[0].counts[first] += 1
            return histograms

        monkeypatch.setattr(StreamingState, "histograms", tampered)
        divergences = stream_divergences(TRACE, budgets=(0,), splits=0)
        assert divergences
        assert all(d.kind == "stream" for d in divergences)
        assert any("histograms diverge" in d.detail for d in divergences)

    def test_divergence_names_the_chunking(self, monkeypatch) -> None:
        monkeypatch.setattr(
            StreamingState, "histograms", lambda self: {}
        )
        divergences = stream_divergences(TRACE, splits=0)
        cells = {d.cell for d in divergences}
        assert f"stream/{len(TRACE)} chunks" in cells  # per-reference
        assert "stream/1 chunks" in cells  # single append


class TestGridWiring:
    def test_grid_runs_the_stream_oracle(self) -> None:
        outcome = run_grid(
            TRACE, budgets=(0,), simulate=False, stream_splits=1
        )
        assert outcome.divergences == []

    def test_grid_can_skip_the_stream_oracle(self, monkeypatch) -> None:
        def boom(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("stream oracle ran despite stream_splits=-1")

        monkeypatch.setattr(
            "repro.verify.oracle.stream_divergences", boom
        )
        outcome = run_grid(
            TRACE, budgets=(0,), simulate=False, stream_splits=-1
        )
        assert outcome.divergences == []

    def test_grid_surfaces_stream_divergences(self, monkeypatch) -> None:
        monkeypatch.setattr(
            StreamingState, "histograms", lambda self: {}
        )
        outcome = run_grid(
            TRACE, budgets=(0,), simulate=False, stream_splits=0
        )
        kinds = {d.kind for d in outcome.divergences}
        # The tamper also breaks the streaming engine's grid cell, so
        # "grid" divergences may appear too — "stream" must be among them.
        assert "stream" in kinds
