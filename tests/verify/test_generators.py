"""The verification corpus: deterministic, paper-first, well-formed."""

import itertools

from repro.verify.generators import (
    PAPER_TRACE_BITS,
    anchor_entries,
    corpus_stream,
    default_budgets,
    paper_trace,
)

from tests.conftest import PAPER_TRACE_BITS as CONFTEST_BITS


class TestPaperAnchor:
    def test_paper_example_is_corpus_entry_zero(self):
        first = next(corpus_stream(seed=0))
        assert first.name == "paper-table-1"
        assert list(first.trace) == list(paper_trace())
        assert 0 in first.budgets

    def test_paper_trace_bits_match_test_fixture(self):
        # The corpus and the test suite must agree on the paper's trace.
        assert list(PAPER_TRACE_BITS) == list(CONFTEST_BITS)


class TestAnchors:
    def test_anchor_battery_covers_boundary_shapes(self):
        names = [entry.name for entry in anchor_entries()]
        for required in (
            "paper-table-1",
            "single-reference",
            "single-unique-n1",
            "all-unique",
            "stride-pow2",
            "bit-reversal",
        ):
            assert required in names
        assert len(names) == len(set(names))

    def test_every_anchor_is_well_formed(self):
        for entry in anchor_entries():
            assert len(entry.trace) >= 1
            assert entry.trace.address_bits >= 1
            assert entry.origin == "anchor"
            assert entry.budgets == tuple(sorted(set(entry.budgets)))
            assert 0 in entry.budgets


class TestFuzzTail:
    def test_stream_is_deterministic_in_the_seed(self):
        a = list(itertools.islice(corpus_stream(seed=7), 30))
        b = list(itertools.islice(corpus_stream(seed=7), 30))
        assert [e.name for e in a] == [e.name for e in b]
        for ea, eb in zip(a, b):
            assert list(ea.trace) == list(eb.trace)
            assert ea.budgets == eb.budgets

    def test_different_seeds_differ_in_the_fuzz_tail(self):
        anchors = len(anchor_entries())
        a = list(itertools.islice(corpus_stream(seed=1), anchors + 12))
        b = list(itertools.islice(corpus_stream(seed=2), anchors + 12))
        assert any(
            list(ea.trace) != list(eb.trace)
            for ea, eb in zip(a[anchors:], b[anchors:])
        )

    def test_at_least_25_entries_are_available(self):
        entries = list(itertools.islice(corpus_stream(seed=0), 25))
        assert len(entries) == 25
        for entry in entries:
            assert len(entry.trace) >= 1
            assert entry.origin in ("anchor", "fuzz")


class TestBudgets:
    def test_budgets_always_include_zero_and_are_sorted(self):
        for entry in itertools.islice(corpus_stream(seed=0), 20):
            assert entry.budgets[0] == 0
            assert list(entry.budgets) == sorted(set(entry.budgets))

    def test_default_budgets_scale_with_the_trace(self):
        budgets = default_budgets(paper_trace())
        assert budgets[0] == 0
        assert all(k >= 0 for k in budgets)
