"""The verification runner and its CLI, including the acceptance path:
an injected fault must come back as a shrunk (<= 32 reference)
reproducer persisted to the failure corpus and replayed on later runs.
"""

import json
import os

import pytest

from repro.cli import _parse_time_budget, main
from repro.core.instance import CacheInstance, ExplorationResult
from repro.obs import validate_manifest
from repro.verify import REPORT_SCHEMA, VerifyConfig, run_verify
from repro.verify.corpus import load_corpus
from repro.verify.oracle import GridCell


def _bump_tamper(target_engine="vectorized", target_prelude="fast"):
    """Corrupt one engine/prelude combination's last emitted instance."""

    def tamper(cell, result):
        if (
            cell.engine == target_engine
            and cell.prelude == target_prelude
            and len(result.instances) > 1
        ):
            instances = list(result.instances)
            last = instances[-1]
            instances[-1] = CacheInstance(
                depth=last.depth, associativity=last.associativity + 1
            )
            return ExplorationResult(
                budget=result.budget,
                instances=instances,
                misses=list(result.misses),
                trace_name=result.trace_name,
            )
        return result

    return tamper


class TestRunner:
    def test_healthy_run_is_clean(self):
        report = run_verify(VerifyConfig(max_traces=10, laws="rotate"))
        assert report.ok
        assert report.traces == 10
        assert report.stopped_by == "max-traces"
        assert report.grid[0] == "serial/python/cold"
        assert report.cells == 10 * len(report.grid)
        assert report.counters()["verify_traces"] == 10

    def test_time_budget_stops_the_run(self):
        report = run_verify(
            VerifyConfig(time_budget_s=0.001, laws="none")
        )
        assert report.stopped_by == "time-budget"
        assert report.traces >= 1  # always finishes the entry in flight

    def test_anchors_only_when_unbudgeted(self):
        report = run_verify(VerifyConfig(laws="none"))
        assert report.stopped_by == "anchors-done"
        assert report.ok

    def test_report_json_document(self):
        report = run_verify(VerifyConfig(max_traces=3, laws="none"))
        doc = report.to_json_dict()
        assert doc["schema"] == REPORT_SCHEMA
        assert doc["ok"] is True
        assert doc["counters"]["verify_traces"] == 3
        json.dumps(doc)  # serializable


class TestAcceptanceFaultInjection:
    """ISSUE acceptance: injected fault -> shrunk reproducer (<= 32 refs)
    persisted to the failure corpus."""

    def test_injected_fault_yields_persisted_shrunk_reproducer(self, tmp_path):
        report = run_verify(
            VerifyConfig(
                max_traces=8,
                corpus_dir=str(tmp_path),
                laws="none",
                fail_fast=True,
            ),
            tamper=_bump_tamper(),
        )
        assert not report.ok
        failure = report.failures[0]
        assert failure.kind == "grid"
        assert failure.cell is not None
        assert failure.cell.startswith("vectorized/fast")
        assert failure.shrunk_len is not None
        assert failure.shrunk_len <= 32
        assert failure.shrunk_len <= failure.trace_len
        assert failure.artifact is not None
        # The artifact on disk is the shrunk trace, not the original.
        artifacts = load_corpus(str(tmp_path))
        assert artifacts
        assert any(len(a.trace) == failure.shrunk_len for a in artifacts)

    def test_fixed_bug_replays_clean_and_live_bug_is_recaught(self, tmp_path):
        run_verify(
            VerifyConfig(
                max_traces=8,
                corpus_dir=str(tmp_path),
                laws="none",
                fail_fast=True,
            ),
            tamper=_bump_tamper(),
        )
        assert load_corpus(str(tmp_path))
        # Bug "fixed": the corpus replays first and comes back clean.
        clean = run_verify(
            VerifyConfig(max_traces=1, corpus_dir=str(tmp_path), laws="none")
        )
        assert clean.ok
        assert clean.corpus_replayed == 1
        # Bug still live: the replayed reproducer catches it immediately,
        # without touching the fuzz tail.
        recaught = run_verify(
            VerifyConfig(
                max_traces=1,
                corpus_dir=str(tmp_path),
                laws="none",
                fail_fast=True,
            ),
            tamper=_bump_tamper(),
        )
        assert not recaught.ok

    def test_tampered_reference_is_caught_from_both_sides(self, tmp_path):
        # Corrupt the reference cell itself: every honest cell then
        # disagrees with it (grid), and the simulator cross-check flags
        # the over-provisioned instance (minimality) as well.
        report = run_verify(
            VerifyConfig(
                max_traces=8,
                corpus_dir=str(tmp_path),
                laws="none",
                fail_fast=True,
            ),
            tamper=_bump_tamper("serial", "python"),
        )
        assert not report.ok
        kinds = {failure.kind for failure in report.failures}
        assert "grid" in kinds
        assert kinds & {"simulator", "minimality"}
        assert any(f.artifact is not None for f in report.failures)


class TestCli:
    def test_smoke_run(self, capsys):
        rc = main(["verify", "--smoke", "--no-corpus"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "verify:" in out
        assert "all cells bit-identical" in out

    def test_json_output(self, capsys):
        rc = main(
            ["verify", "--max-traces", "3", "--no-corpus", "--json",
             "--laws", "none"]
        )
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == REPORT_SCHEMA
        assert doc["counters"]["verify_traces"] == 3

    def test_report_file_and_profile_manifest(self, tmp_path, capsys):
        report_path = tmp_path / "report.json"
        manifest_path = tmp_path / "manifest.json"
        rc = main(
            [
                "verify", "--max-traces", "4", "--no-corpus",
                "--laws", "rotate",
                "-o", str(report_path),
                "--profile", str(manifest_path),
            ]
        )
        assert rc == 0
        with open(report_path) as fh:
            report_doc = json.load(fh)
        assert report_doc["ok"] is True
        with open(manifest_path) as fh:
            manifest_doc = json.load(fh)
        validate_manifest(manifest_doc)  # structure + timing invariant
        assert manifest_doc["verify"]["verify_traces"] == 4
        assert manifest_doc["verify"]["verify_failures"] == 0
        assert manifest_doc["engine"] == "verify-grid"

    def test_engine_subset_flags(self, capsys):
        rc = main(
            ["verify", "--max-traces", "2", "--no-corpus", "--laws", "none",
             "--engines", "vectorized", "--preludes", "fast", "--no-warm",
             "--json"]
        )
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert "vectorized/fast/cold" in doc["grid"]
        assert all(not cell.endswith("/warm") for cell in doc["grid"])

    def test_corpus_dir_flag_persists_crashes(self, tmp_path, capsys):
        corpus = tmp_path / "corpus"
        rc = main(
            ["verify", "--max-traces", "2", "--laws", "none",
             "--corpus-dir", str(corpus)]
        )
        assert rc == 0  # healthy engines: nothing persisted, dir untouched
        assert not load_corpus(str(corpus))


class TestTimeBudgetParsing:
    @pytest.mark.parametrize(
        "text,expected",
        [("90", 90.0), ("60s", 60.0), ("2m", 120.0), ("500ms", 0.5),
         ("1h", 3600.0), (None, None)],
    )
    def test_valid_budgets(self, text, expected):
        assert _parse_time_budget(text) == expected

    @pytest.mark.parametrize("text", ["", "abc", "-5", "0", "12q"])
    def test_invalid_budgets_exit(self, text):
        with pytest.raises(SystemExit):
            _parse_time_budget(text)


@pytest.mark.slow
class TestAcceptanceScale:
    """ISSUE acceptance: >= 25 corpus traces through the full grid with
    zero divergences, inside a 60 s budget."""

    def test_25_traces_full_grid_zero_divergences(self):
        report = run_verify(
            VerifyConfig(max_traces=25, time_budget_s=60.0, laws="all")
        )
        assert report.ok, [f.as_dict() for f in report.failures]
        assert report.traces == 25
        assert report.elapsed_s < 60.0
        assert report.cells == 25 * len(report.grid)
