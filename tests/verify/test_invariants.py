"""Structural and metamorphic invariants: they hold, and they detect."""

from repro.core.explorer import AnalyticalCacheExplorer
from repro.core.instance import CacheInstance, ExplorationResult
from repro.trace.synthetic import loop_nest_trace, sequential_trace
from repro.trace.trace import Trace
from repro.verify.generators import paper_trace
from repro.verify.invariants import (
    METAMORPHIC_LAWS,
    check_laws,
    law_concat,
    law_relabel_xor,
    law_rotate,
    law_stutter,
    structural_violations,
)


def _result(budget, pairs, misses):
    return ExplorationResult(
        budget=budget,
        instances=[CacheInstance(depth=d, associativity=a) for d, a in pairs],
        misses=list(misses),
        trace_name="fabricated",
    )


SAMPLE_TRACES = (
    paper_trace(),
    sequential_trace(24),
    loop_nest_trace(8, 6),
    Trace([0, 9, 0, 9, 3, 0, 9, 3] * 4, name="small-conflicts"),
)


class TestStructuralLaws:
    def test_real_results_have_no_violations(self):
        for trace in SAMPLE_TRACES:
            explorer = AnalyticalCacheExplorer(trace)
            results = [explorer.explore(k) for k in (0, 1, 3)]
            assert structural_violations(results) == []

    def test_within_budget_violation_is_detected(self):
        results = [_result(0, [(2, 1)], [5])]
        laws = [v.law for v in structural_violations(results)]
        assert "within-budget" in laws

    def test_depth_monotone_violation_is_detected(self):
        results = [_result(9, [(2, 1), (4, 2)], [0, 0])]
        laws = [v.law for v in structural_violations(results)]
        assert "depth-monotone" in laws

    def test_budget_monotone_violation_is_detected(self):
        results = [
            _result(0, [(2, 1)], [0]),
            _result(5, [(2, 2)], [0]),  # bigger budget, MORE ways: wrong
        ]
        laws = [v.law for v in structural_violations(results)]
        assert "budget-monotone" in laws


class TestMetamorphicLawsHold:
    def test_all_laws_pass_on_sample_traces(self):
        for trace in SAMPLE_TRACES:
            violations = check_laws(trace, budgets=(0, 2))
            assert violations == [], [v.as_dict() for v in violations]

    def test_law_registry_is_complete(self):
        assert [name for name, _ in METAMORPHIC_LAWS] == [
            "stutter",
            "relabel",
            "concat",
            "rotate",
        ]

    def test_unknown_law_name_is_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            check_laws(paper_trace(), budgets=(0,), laws=("teleport",))


class _LyingExplorer:
    """Wraps a real explorer and corrupts its answers on demand."""

    def __init__(self, trace, bump_assoc=False, misses_delta=0):
        self._real = AnalyticalCacheExplorer(
            trace, engine="serial", prelude="python"
        )
        self._bump_assoc = bump_assoc
        self._misses_delta = misses_delta

    def explore(self, budget):
        result = self._real.explore(budget)
        if not self._bump_assoc or not result.instances:
            return result
        instances = list(result.instances)
        first = instances[0]
        instances[0] = CacheInstance(
            depth=first.depth, associativity=first.associativity + 1
        )
        return ExplorationResult(
            budget=result.budget,
            instances=instances,
            misses=list(result.misses),
            trace_name=result.trace_name,
        )

    def misses(self, depth, assoc):
        return max(0, self._real.misses(depth, assoc) + self._misses_delta)


class TestMetamorphicLawsDetect:
    """Each law flags an engine that lies about the transformed trace."""

    def test_stutter_detects_a_changed_grid(self):
        def factory(trace):
            return _LyingExplorer(trace, bump_assoc="+stutter" in trace.name)

        violations = law_stutter(paper_trace(), budgets=(0,), factory=factory)
        assert [v.law for v in violations] == ["stutter"]

    def test_relabel_detects_a_changed_grid(self):
        def factory(trace):
            return _LyingExplorer(trace, bump_assoc="^=" in trace.name)

        violations = law_relabel_xor(
            paper_trace(), budgets=(0,), factory=factory
        )
        assert [v.law for v in violations] == ["relabel"]

    def test_concat_detects_lost_misses(self):
        def factory(trace):
            delta = -1000 if "+concat" in trace.name else 0
            return _LyingExplorer(trace, misses_delta=delta)

        # Sample points include (D, A-1) probes, which have misses > 0.
        violations = law_concat(paper_trace(), budgets=(0,), factory=factory)
        assert violations
        assert all(v.law == "concat" for v in violations)

    def test_rotate_detects_a_blowup(self):
        def factory(trace):
            delta = 1000 if "<<" in trace.name else 0
            return _LyingExplorer(trace, misses_delta=delta)

        violations = law_rotate(paper_trace(), budgets=(0,), factory=factory)
        assert violations
        assert all(v.law == "rotate" for v in violations)
