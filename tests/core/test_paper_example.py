"""The paper's running example, end to end.

The Table 1 trace (reconstructed as id sequence [1,2,3,4,1,5,2,4,1,3])
must reproduce Table 2 (stripped trace), Table 3 (zero/one sets),
Table 4 (MRCT), Figure 3 (BCAT) and the section-2.3 postlude values
exactly.  Identifiers here are 0-based; the paper's are 1-based.
"""

import pytest

from repro.core import engines as _engines
from repro.core.bcat import build_bcat
from repro.core.explorer import AnalyticalCacheExplorer
from repro.core.mrct import build_mrct, mrct_as_display_table
from repro.core.postlude import misses_at_node, optimal_pairs_algorithm3
from repro.core.zerosets import bitset_from_members, build_zero_one_sets
from repro.trace.strip import strip_trace


@pytest.fixture
def stripped(paper_trace):
    return strip_trace(paper_trace)


@pytest.fixture
def zerosets(stripped):
    return build_zero_one_sets(stripped)


@pytest.fixture
def mrct(stripped):
    return build_mrct(stripped)


class TestTable2Stripping:
    def test_five_unique_references_in_paper_order(self, stripped):
        assert stripped.n == 10
        assert stripped.n_unique == 5
        assert stripped.unique_addresses == [
            0b1011, 0b1100, 0b0110, 0b0011, 0b0100,
        ]


class TestTable3ZeroOneSets:
    def test_all_four_bit_pairs(self, zerosets):
        # Paper ids are 1-based: Z0={2,3,5} etc.  Ours are 0-based.
        assert zerosets.zero_members(0) == {1, 2, 4}
        assert zerosets.one_members(0) == {0, 3}
        assert zerosets.zero_members(1) == {1, 4}
        assert zerosets.one_members(1) == {0, 2, 3}
        assert zerosets.zero_members(2) == {0, 3}
        assert zerosets.one_members(2) == {1, 2, 4}
        assert zerosets.zero_members(3) == {2, 3, 4}
        assert zerosets.one_members(3) == {0, 1}

    def test_zero_one_sets_partition_the_universe(self, zerosets):
        for bit in range(4):
            zero, one = zerosets.pair(bit)
            assert zero & one == 0
            assert zero | one == zerosets.universe


class TestTable4MRCT:
    def test_conflict_sets_match_paper(self, mrct):
        display = mrct_as_display_table(mrct)  # 1-based like the paper
        assert display[1] == [{2, 3, 4}, {2, 4, 5}]
        assert display[2] == [{1, 3, 4, 5}]
        assert display[3] == [{1, 2, 4, 5}]
        assert display[4] == [{1, 2, 5}]
        assert display[5] == []


class TestFigure3BCAT:
    def test_level_sets(self, zerosets):
        bcat = build_bcat(zerosets)
        # Level 1: {2,3,5} and {1,4} in paper ids -> {1,2,4}, {0,3} 0-based.
        level1 = [node.member_ids() for node in bcat.level_nodes(1)]
        assert level1 == [{1, 2, 4}, {0, 3}]
        level2 = [node.member_ids() for node in bcat.level_nodes(2)]
        assert level2 == [{1, 4}, {2}, set(), {0, 3}]
        level3 = [node.member_ids() for node in bcat.level_nodes(3)]
        assert level3 == [set(), {1, 4}, {0, 3}, set()]
        level4 = [node.member_ids() for node in bcat.level_nodes(4)]
        assert level4 == [{4}, {1}, {3}, {0}]

    def test_tree_depth_is_four(self, zerosets):
        assert build_bcat(zerosets).depth == 4


#: Every registered engine x every prelude mode: the paper's worked
#: example must come out identical from all of them (it is also the
#: first corpus entry of the verification oracle grid — see
#: tests/verify/test_generators.py).
ENGINE_GRID = [
    (engine, prelude)
    for engine in _engines.engine_names()
    for prelude in _engines.PRELUDE_MODES
]


@pytest.fixture(
    params=ENGINE_GRID, ids=[f"{e}-{p}" for e, p in ENGINE_GRID]
)
def engine_prelude(request):
    return request.param


class TestSection23Postlude:
    def test_depth_two_needs_three_ways_for_zero_misses(
        self, paper_trace, engine_prelude
    ):
        # "A = max(|{2,3,5}|, |{1,4}|) = 3" for an ideal depth-2 cache.
        engine, prelude = engine_prelude
        explorer = AnalyticalCacheExplorer(
            paper_trace, engine=engine, prelude=prelude
        )
        assert explorer.explore(0).as_dict()[2] == 3

    def test_zero_miss_associativities_per_depth(
        self, paper_trace, engine_prelude
    ):
        engine, prelude = engine_prelude
        explorer = AnalyticalCacheExplorer(
            paper_trace, engine=engine, prelude=prelude
        )
        assert explorer.explore(0).as_dict() == {2: 3, 4: 2, 8: 2, 16: 1}

    def test_worked_miss_count_example(self, zerosets, mrct):
        """Section 2.3 counts 2 misses for S={1,4} (paper ids) at A=1.

        Element 1's two conflict sets each intersect S in one reference
        (4), and element 4's single conflict set intersects S in one
        reference (1): 3 occurrence-misses total at that node for A=1?
        No - the paper walks only element 1's sets and then says "we
        repeat the same for the second element": the total is the node's
        miss count.  |S ∩ C| >= 1 holds for all three conflict sets, so
        the node contributes 3 misses at A=1.
        """
        members = bitset_from_members({0, 3})  # paper's {1,4}
        assert misses_at_node(members, mrct, associativity=1) == 3
        assert misses_at_node(members, mrct, associativity=2) == 0

    def test_algorithm3_matches_streaming_explorer(
        self, paper_trace, zerosets, mrct, engine_prelude
    ):
        engine, prelude = engine_prelude
        bcat = build_bcat(zerosets)
        for budget in (0, 1, 2, 3, 5):
            literal = optimal_pairs_algorithm3(bcat, mrct, budget)
            streaming = AnalyticalCacheExplorer(
                paper_trace, engine=engine, prelude=prelude
            ).explore(budget)
            literal_map = {i.depth: i.associativity for i in literal}
            for inst in streaming:
                if inst.depth in literal_map:
                    assert literal_map[inst.depth] == inst.associativity
