"""Unit tests for multi-trace (application-set) exploration."""

import pytest

from repro.core.explorer import AnalyticalCacheExplorer
from repro.core.multi import MultiTraceExplorer
from repro.trace.synthetic import loop_nest_trace, random_trace, zipf_trace


def _named(trace, name):
    trace.name = name
    return trace


@pytest.fixture
def pair():
    a = _named(zipf_trace(300, 50, seed=0), "a")
    b = _named(random_trace(200, 40, seed=1), "b")
    return a, b


class TestValidation:
    def test_requires_traces(self):
        with pytest.raises(ValueError, match="at least one"):
            MultiTraceExplorer([])

    def test_requires_names(self):
        trace = loop_nest_trace(4, 2)
        trace.name = ""
        with pytest.raises(ValueError, match="non-empty name"):
            MultiTraceExplorer([trace])

    def test_requires_unique_names(self, pair):
        a, _ = pair
        with pytest.raises(ValueError, match="unique"):
            MultiTraceExplorer([a, a])

    def test_weights_length(self, pair):
        with pytest.raises(ValueError, match="weights"):
            MultiTraceExplorer(list(pair), weights=[1])

    def test_negative_weights(self, pair):
        with pytest.raises(ValueError, match="non-negative"):
            MultiTraceExplorer(list(pair), weights=[1, -1])

    def test_negative_budget(self, pair):
        explorer = MultiTraceExplorer(list(pair))
        with pytest.raises(ValueError):
            explorer.explore_sum(-1)
        with pytest.raises(ValueError):
            explorer.explore_each(-1)


class TestExploreSum:
    def test_total_misses_meet_budget(self, pair):
        explorer = MultiTraceExplorer(list(pair))
        result = explorer.explore_sum(20)
        for index in range(len(result.instances)):
            assert result.total_misses(index) <= 20

    def test_sum_equals_sum_of_individual_misses(self, pair):
        a, b = pair
        explorer = MultiTraceExplorer([a, b])
        result = explorer.explore_sum(15)
        ea, eb = AnalyticalCacheExplorer(a), AnalyticalCacheExplorer(b)
        for index, inst in enumerate(result.instances):
            expected = ea.misses(inst.depth, inst.associativity) + eb.misses(
                inst.depth, inst.associativity
            )
            assert result.total_misses(index) == expected

    def test_minimality(self, pair):
        a, b = pair
        explorer = MultiTraceExplorer([a, b])
        result = explorer.explore_sum(10)
        ea, eb = AnalyticalCacheExplorer(a), AnalyticalCacheExplorer(b)
        for inst in result.instances:
            if inst.associativity > 1:
                total = ea.misses(inst.depth, inst.associativity - 1) + eb.misses(
                    inst.depth, inst.associativity - 1
                )
                assert total > 10

    def test_zero_weight_trace_is_ignored_in_sum(self, pair):
        a, b = pair
        weighted = MultiTraceExplorer([a, b], weights=[1, 0]).explore_sum(5)
        solo = AnalyticalCacheExplorer(a).explore(5)
        solo_map = solo.as_dict()
        for inst in weighted.instances:
            if inst.depth in solo_map:
                assert inst.associativity == solo_map[inst.depth]

    def test_weight_scales_contribution(self, pair):
        a, b = pair
        # Tripling a's weight must need at least as much associativity
        # as the unweighted set at the same budget.
        plain = MultiTraceExplorer([a, b]).explore_sum(30).as_dict()
        heavy = MultiTraceExplorer([a, b], weights=[3, 1]).explore_sum(30).as_dict()
        for depth, assoc in plain.items():
            assert heavy[depth] >= assoc


class TestExploreEach:
    def test_every_trace_meets_budget(self, pair):
        explorer = MultiTraceExplorer(list(pair))
        result = explorer.explore_each(8)
        for misses in result.misses_by_trace.values():
            assert all(m <= 8 for m in misses)

    def test_answer_is_max_of_individuals(self, pair):
        a, b = pair
        result = MultiTraceExplorer([a, b]).explore_each(5)
        ra = AnalyticalCacheExplorer(a).explore(5).as_dict()
        rb = AnalyticalCacheExplorer(b).explore(5).as_dict()
        for inst in result.instances:
            expected = max(ra.get(inst.depth, 1), rb.get(inst.depth, 1))
            assert inst.associativity == expected

    def test_each_at_least_as_strict_as_sum_per_trace(self, pair):
        explorer = MultiTraceExplorer(list(pair))
        each = explorer.explore_each(10).as_dict()
        # "each" with budget B is laxer than "sum" with budget B (sum
        # constrains the combined total), so sum needs >= associativity.
        total = explorer.explore_sum(10).as_dict()
        for depth, assoc in each.items():
            assert total[depth] >= assoc

    def test_single_trace_reduces_to_plain_exploration(self):
        trace = _named(zipf_trace(300, 60, seed=3), "solo")
        multi = MultiTraceExplorer([trace]).explore_each(7).as_dict()
        solo = AnalyticalCacheExplorer(trace).explore(7).as_dict()
        for depth, assoc in solo.items():
            assert multi[depth] == assoc

    def test_disjoint_traces_compose(self):
        a = _named(loop_nest_trace(8, 10), "a")
        b = _named(loop_nest_trace(16, 10, start=256), "b")
        result = MultiTraceExplorer([a, b]).explore_each(0)
        # b needs depth 16 for A=1; a needs depth 8; max dominates.
        assert result.as_dict()[16] == 1
        assert result.as_dict()[8] > 1 or result.as_dict()[8] == 1
