"""Unit tests for the fast prelude kernels (``repro.core.prelude_fast``).

The fast builders are exact replacements: every test here pins them to
the paper-faithful python builders — same stripped trace, same zero/one
sets, same MRCT sets in the same occurrence order, bit-identical
histograms through the fused packed postlude.
"""

import pytest

from repro.core import engines
from repro.core.mrct import build_mrct
from repro.core.postlude import compute_level_histograms
from repro.core.prelude_fast import (
    FAST_MRCT_MIN_REFS,
    FENWICK_MIN_REFS,
    FENWICK_MIN_UNIQUE,
    build_mrct_auto,
    build_mrct_fenwick,
)
from repro.core.vectorized import numpy_available
from repro.core.zerosets import build_zero_one_sets
from repro.trace.strip import strip_trace
from repro.trace.synthetic import (
    loop_nest_trace,
    markov_trace,
    random_trace,
    zipf_trace,
)
from repro.trace.trace import Trace

needs_numpy = pytest.mark.skipif(not numpy_available(), reason="needs NumPy")


def edge_traces():
    """Small traces covering the builders' corner cases."""
    return [
        Trace([5], name="single"),
        Trace([7, 7, 7, 7], name="all-same"),
        Trace(list(range(40)), name="all-unique"),
        Trace([1, 2, 3, 1, 2, 3, 4, 1], name="paper-ish"),
        loop_nest_trace(16, 6),
        zipf_trace(600, 90, seed=2),
        markov_trace(500, 64, locality=0.8, seed=5),
        random_trace(300, 50, seed=9),
    ]


PANEL = edge_traces()


class TestFenwickBuilder:
    """The pure-python O(N log N') builder (no NumPy required)."""

    @pytest.mark.parametrize("trace", PANEL, ids=lambda t: t.name)
    def test_matches_reference_builder(self, trace):
        stripped = strip_trace(trace)
        assert build_mrct_fenwick(stripped) == build_mrct(stripped)

    def test_empty_trace(self):
        stripped = strip_trace(Trace([], name="empty"))
        assert build_mrct_fenwick(stripped) == build_mrct(stripped)


class TestNumpyBuilders:
    @needs_numpy
    @pytest.mark.parametrize("trace", PANEL, ids=lambda t: t.name)
    def test_fast_mrct_matches_reference(self, trace):
        from repro.core.prelude_fast import build_mrct_fast

        stripped = strip_trace(trace)
        assert build_mrct_fast(stripped) == build_mrct(stripped)

    @needs_numpy
    @pytest.mark.parametrize("trace", PANEL, ids=lambda t: t.name)
    def test_numpy_strip_matches_reference(self, trace):
        from repro.trace.strip import strip_trace_numpy

        python = strip_trace(trace)
        fast = strip_trace_numpy(trace)
        assert fast.unique_addresses == python.unique_addresses
        assert list(fast.id_sequence) == list(python.id_sequence)
        assert fast.address_bits == python.address_bits
        assert fast.id_of == python.id_of

    @needs_numpy
    @pytest.mark.parametrize("trace", PANEL, ids=lambda t: t.name)
    def test_numpy_zerosets_match_reference(self, trace):
        from repro.core.zerosets import build_zero_one_sets_numpy

        stripped = strip_trace(trace)
        assert build_zero_one_sets_numpy(stripped) == build_zero_one_sets(
            stripped
        )

    @needs_numpy
    @pytest.mark.parametrize("trace", PANEL, ids=lambda t: t.name)
    def test_packed_mrct_weight_preserving(self, trace):
        """The packed matrix is the MRCT as a weighted multiset of rows."""
        from repro.core.prelude_fast import build_packed_mrct

        stripped = strip_trace(trace)
        packed = build_packed_mrct(stripped)
        mrct = build_mrct(stripped)
        expected = {}
        for ident, sets in enumerate(mrct.sets):
            for conflicts in sets:
                key = (ident, conflicts)
                expected[key] = expected.get(key, 0) + 1
        actual = {}
        for row in range(packed.n_rows):
            conflicts = int.from_bytes(
                packed.matrix[row].tobytes(), "little"
            )
            key = (int(packed.idents[row]), conflicts)
            actual[key] = actual.get(key, 0) + int(packed.weights[row])
        assert actual == expected
        expanded = packed.to_mrct()  # multiset-equal, order not preserved
        assert expanded.n_unique == mrct.n_unique
        assert [sorted(sets) for sets in expanded.sets] == [
            sorted(sets) for sets in mrct.sets
        ]

    @needs_numpy
    def test_packed_mrct_deterministic(self):
        from repro.core.prelude_fast import build_packed_mrct

        stripped = strip_trace(zipf_trace(800, 100, seed=4))
        assert build_packed_mrct(stripped) == build_packed_mrct(stripped)

    @needs_numpy
    def test_budget_fallback_paths_agree(self, monkeypatch):
        """Forcing the scatter tail / disabling reduceat stays exact."""
        import repro.core.prelude_fast as pf

        trace = zipf_trace(1200, 150, seed=6)
        stripped = strip_trace(trace)
        reference = build_mrct(stripped)
        monkeypatch.setattr(pf, "_REDUCEAT_MEM_BUDGET", 0)  # forbid reduceat
        assert pf.build_mrct_fast(stripped) == reference
        monkeypatch.setattr(pf, "_BLOCK_SCALES", ())  # no coarse passes either
        assert pf.build_mrct_fast(stripped) == reference

    @needs_numpy
    def test_scatter_tail_chunking_is_exact(self, monkeypatch):
        """Tiny chunks force many scatter batches; the result is unchanged."""
        import repro.core.prelude_fast as pf

        trace = zipf_trace(1500, 200, seed=7)
        stripped = strip_trace(trace)
        reference = build_mrct(stripped)
        monkeypatch.setattr(pf, "_REDUCEAT_MEM_BUDGET", 0)
        monkeypatch.setattr(pf, "_BLOCK_SCALES", ())  # every window to the tail
        monkeypatch.setattr(pf, "_SCATTER_CHUNK", 64)
        assert pf.build_mrct_fast(stripped) == reference


class TestAutoDispatch:
    def test_short_trace_uses_reference_builder(self):
        stripped = strip_trace(loop_nest_trace(8, 4))
        assert stripped.n < FAST_MRCT_MIN_REFS
        assert build_mrct_auto(stripped) == build_mrct(stripped)

    @needs_numpy
    def test_long_trace_uses_fast_builder(self):
        n = FAST_MRCT_MIN_REFS
        stripped = strip_trace(zipf_trace(n, 200, seed=1))
        assert build_mrct_auto(stripped) == build_mrct(stripped)

    def test_fenwick_gates_exist(self):
        assert FENWICK_MIN_REFS > FAST_MRCT_MIN_REFS
        assert FENWICK_MIN_UNIQUE > 1


class TestFusedEngine:
    @needs_numpy
    @pytest.mark.parametrize("trace", PANEL, ids=lambda t: t.name)
    def test_packed_postlude_matches_serial(self, trace):
        from repro.core.prelude_fast import build_packed_mrct
        from repro.core.vectorized import compute_level_histograms_packed

        stripped = strip_trace(trace)
        zerosets = build_zero_one_sets(stripped)
        reference = compute_level_histograms(zerosets, build_mrct(stripped))
        packed = build_packed_mrct(stripped)
        assert compute_level_histograms_packed(zerosets, packed) == reference

    @needs_numpy
    @pytest.mark.parametrize("max_level", [0, 2, 5])
    def test_packed_postlude_respects_max_level(self, max_level):
        from repro.core.prelude_fast import build_packed_mrct
        from repro.core.vectorized import compute_level_histograms_packed

        stripped = strip_trace(zipf_trace(500, 80, seed=3))
        zerosets = build_zero_one_sets(stripped)
        reference = compute_level_histograms(
            zerosets, build_mrct(stripped), max_level=max_level
        )
        packed = build_packed_mrct(stripped)
        assert (
            compute_level_histograms_packed(
                zerosets, packed, max_level=max_level
            )
            == reference
        )

    @needs_numpy
    def test_packed_rejects_mismatched_universe(self):
        from repro.core.prelude_fast import build_packed_mrct
        from repro.core.vectorized import compute_level_histograms_packed

        a = strip_trace(zipf_trace(200, 40, seed=1))
        b = strip_trace(zipf_trace(200, 70, seed=2))
        packed = build_packed_mrct(a)
        assert a.n_unique != b.n_unique
        with pytest.raises(ValueError, match="unique references"):
            compute_level_histograms_packed(build_zero_one_sets(b), packed)

    @needs_numpy
    def test_fused_path_skips_bigint_mrct(self):
        """The vectorized engine runs packed end-to-end on a cold trace."""
        inputs = engines.EngineInputs(zipf_trace(400, 60, seed=7))
        engines.compute_histograms("vectorized", inputs)
        assert inputs.packed_mrct_if_built is not None
        assert inputs.mrct_if_built is None

    @needs_numpy
    def test_python_prelude_mode_stays_bigint(self):
        inputs = engines.EngineInputs(
            zipf_trace(400, 60, seed=7), prelude="python"
        )
        engines.compute_histograms("vectorized", inputs)
        assert inputs.packed_mrct_if_built is None
        assert inputs.mrct_if_built is not None

    @needs_numpy
    def test_prebuilt_mrct_short_circuits_fusion(self):
        """Injected bigint MRCTs are consumed as-is (benchmark contract)."""
        trace = zipf_trace(400, 60, seed=7)
        stripped = strip_trace(trace)
        inputs = engines.EngineInputs(
            trace, stripped=stripped, mrct=build_mrct(stripped)
        )
        reference = engines.compute_histograms("serial", inputs)
        assert engines.compute_histograms("vectorized", inputs) == reference
        assert inputs.packed_mrct_if_built is None

    @pytest.mark.parametrize("mode", engines.PRELUDE_MODES)
    def test_all_prelude_modes_agree(self, mode):
        trace = zipf_trace(300, 50, seed=8)
        reference = engines.compute_histograms(
            "serial", engines.EngineInputs(trace, prelude="python")
        )
        inputs = engines.EngineInputs(trace, prelude=mode)
        assert engines.compute_histograms("serial", inputs) == reference
        if numpy_available():
            inputs = engines.EngineInputs(trace, prelude=mode)
            assert (
                engines.compute_histograms("vectorized", inputs) == reference
            )

    def test_unknown_prelude_mode_rejected(self):
        with pytest.raises(ValueError, match="prelude"):
            engines.EngineInputs(loop_nest_trace(4, 2), prelude="turbo")


class TestPackedStoreWarmStart:
    @needs_numpy
    def test_second_run_hits_packed_stage(self, tmp_path):
        from repro.store import ArtifactStore

        trace = zipf_trace(500, 80, seed=11)
        store = ArtifactStore(tmp_path / "cache")
        cold = engines.EngineInputs(trace, store=store)
        packed_cold = cold.packed_mrct
        hits_before = store.stats.hits
        warm = engines.EngineInputs(trace, store=store)
        packed_warm = warm.packed_mrct
        assert store.stats.hits > hits_before
        assert packed_warm == packed_cold

    @needs_numpy
    def test_warm_packed_run_matches_cold_histograms(self, tmp_path):
        from repro.store import ArtifactStore

        trace = zipf_trace(500, 80, seed=12)
        store = ArtifactStore(tmp_path / "cache")
        cold = engines.compute_histograms(
            "vectorized", engines.EngineInputs(trace, store=store)
        )
        warm_inputs = engines.EngineInputs(trace, store=store)
        warm = engines.compute_histograms("vectorized", warm_inputs)
        assert warm == cold


class TestAutoCalibration:
    """``auto`` only ever picks from AUTO_CANDIDATES (BENCH-calibrated)."""

    def test_candidates_exclude_bigint_parallel_and_streaming(self):
        assert engines.AUTO_CANDIDATES == ("serial", "vectorized", "parallel-shm")

    @pytest.mark.parametrize(
        "trace",
        [
            None,
            loop_nest_trace(8, 4),
            zipf_trace(300, 60, seed=1),
            random_trace(5000, 2000, seed=2),
        ],
        ids=["none", "tiny-loop", "small-zipf", "large-random"],
    )
    def test_choice_always_a_candidate(self, trace):
        stripped = strip_trace(trace) if trace is not None else None
        for prelude_ready in (False, True):
            choice = engines.choose_auto(
                trace, stripped=stripped, prelude_ready=prelude_ready
            )
            assert choice in engines.AUTO_CANDIDATES

    @needs_numpy
    def test_postlude_threshold_is_higher(self):
        """With the MRCT prebuilt the fused prelude can't help, so auto
        stays serial up to the BENCH-measured crossover."""
        assert engines.AUTO_MIN_REFS_POSTLUDE > engines.AUTO_MIN_REFS
        n = engines.AUTO_MIN_REFS
        trace = zipf_trace(n, 200, seed=3)
        assert engines.choose_auto(trace) == "vectorized"
        assert engines.choose_auto(trace, prelude_ready=True) == "serial"

    @needs_numpy
    def test_resolve_applies_postlude_threshold_for_prebuilt_mrct(self):
        n = engines.AUTO_MIN_REFS
        trace = zipf_trace(n, 200, seed=3)
        cold = engines.EngineInputs(trace)
        assert engines.resolve_engine("auto", cold).name == "vectorized"
        stripped = strip_trace(trace)
        warm = engines.EngineInputs(
            trace, stripped=stripped, mrct=build_mrct(stripped)
        )
        assert engines.resolve_engine("auto", warm).name == "serial"
