"""Cross-engine differential matrix: every engine x every panel trace.

Every registered engine (plus the ``auto`` policy and the legacy
``bitmask`` alias) must produce LevelHistograms bit-identical to the
serial reference — same levels, same distances, same counts — and hence
identical minimum-associativity tables, on the paper's running example,
synthetic loops, and real workload traces.
"""

import pytest

from repro.core import engines
from repro.core.explorer import AnalyticalCacheExplorer
from repro.trace.synthetic import (
    loop_nest_trace,
    markov_trace,
    random_trace,
    strided_trace,
    zipf_trace,
)
from repro.trace.trace import Trace
from tests.conftest import PAPER_TRACE_BITS

WORKLOADS = ("crc", "fir", "ucbqsort")

ALL_ENGINE_NAMES = engines.engine_names() + tuple(engines.ALIASES)


def _compute(engine, inputs, **options):
    """Dispatch one shared option set to any engine, like the explorer does:
    only the options an engine declares are forwarded."""
    spec = engines.resolve_engine(engine, inputs)
    return spec.compute(inputs, **spec.filter_options(options))


def _panel(tiny_runs):
    traces = [
        Trace.from_bit_strings(PAPER_TRACE_BITS, name="paper-table-1"),
        loop_nest_trace(48, 12),
        strided_trace(200, stride=3),
        zipf_trace(1200, 90, seed=4),
        markov_trace(900, 80, locality=0.85, seed=8),
        random_trace(700, 120, seed=6),
    ]
    traces += [tiny_runs[name].data_trace for name in WORKLOADS]
    return traces


@pytest.fixture(scope="module")
def panel(tiny_runs):
    return _panel(tiny_runs)


@pytest.fixture(scope="module")
def serial_reference(panel):
    """Reference histograms per trace, computed once by the serial engine."""
    reference = {}
    for trace in panel:
        inputs = engines.EngineInputs(trace)
        reference[trace.name] = engines.compute_histograms("serial", inputs)
    return reference


@pytest.mark.parametrize("engine", ALL_ENGINE_NAMES)
def test_histograms_bit_identical_to_serial(engine, panel, serial_reference):
    for trace in panel:
        inputs = engines.EngineInputs(trace)
        histograms = _compute(engine, inputs, processes=2)
        expected = serial_reference[trace.name]
        assert sorted(histograms) == sorted(expected), trace.name
        for level, reference in expected.items():
            got = histograms[level]
            assert got.level == reference.level
            assert got.counts == reference.counts, (trace.name, level)


@pytest.mark.parametrize("engine", ALL_ENGINE_NAMES)
def test_min_associativity_tables_identical(engine, panel, serial_reference):
    """The exploration output — A_min per (depth, budget) — must agree."""
    for trace in panel:
        inputs = engines.EngineInputs(trace)
        histograms = _compute(engine, inputs, processes=2)
        expected = serial_reference[trace.name]
        for level, reference in expected.items():
            for budget in (0, 2, 10):
                assert (
                    histograms[level].min_associativity(budget)
                    == reference.min_associativity(budget)
                ), (trace.name, level, budget)


@pytest.mark.parametrize("engine", ALL_ENGINE_NAMES)
def test_explorer_results_identical(engine, tiny_runs):
    """End-to-end: explorers disagree on nothing an engine can affect."""
    trace = tiny_runs["crc"].data_trace
    explorer = AnalyticalCacheExplorer(trace, engine=engine)
    reference = AnalyticalCacheExplorer(trace, engine="serial")
    assert explorer.histograms == reference.histograms
    for budget in (0, 3):
        assert (
            explorer.explore(budget).as_dict()
            == reference.explore(budget).as_dict()
        )


@pytest.mark.parametrize("engine", ALL_ENGINE_NAMES)
def test_cached_runs_identical_to_uncached(engine, tiny_runs, tmp_path):
    """The cached axis: warm-starting from the artifact store changes
    nothing an engine (or the store) can affect."""
    from repro.store import ArtifactStore

    for name in ("crc", "fir"):
        trace = tiny_runs[name].data_trace
        uncached = AnalyticalCacheExplorer(trace, engine=engine)
        cold_store = ArtifactStore(tmp_path / name)
        cold = AnalyticalCacheExplorer(trace, engine=engine, store=cold_store)
        warm_store = ArtifactStore(tmp_path / name)  # fresh memory tier
        warm = AnalyticalCacheExplorer(trace, engine=engine, store=warm_store)
        for budget in (0, 3):
            reference = uncached.explore(budget).to_json_dict()
            assert cold.explore(budget).to_json_dict() == reference, name
            assert warm.explore(budget).to_json_dict() == reference, name
        assert cold_store.stats.puts > 0, name
        assert warm_store.stats.hits > 0, name
        assert warm_store.stats.puts == 0, name


def test_registry_lists_all_expected_engines():
    names = engines.engine_names()
    assert names == (
        "serial",
        "parallel",
        "parallel-shm",
        "streaming",
        "vectorized",
        "auto",
    )
    assert engines.canonical_name("bitmask") == "serial"
    with pytest.raises(ValueError, match="unknown engine"):
        engines.canonical_name("warp-drive")
    with pytest.raises(ValueError, match="already taken"):
        engines.register_engine(
            engines.EngineSpec(
                name="serial",
                summary="",
                memory="",
                best_for="",
                runner=lambda inputs, max_level=None, **_: {},
            )
        )


def test_auto_resolves_to_concrete_engine():
    trace = loop_nest_trace(16, 4)
    explorer = AnalyticalCacheExplorer(trace, engine="auto")
    assert explorer.engine == "auto"
    assert explorer.resolved_engine in engines.engine_names(include_auto=False)
    with pytest.raises(ValueError, match="selection policy"):
        engines.get_engine("auto")
