"""TraceSession: append-equivalence, checkpoints, chunked trace I/O.

The tentpole invariant: after **every** append — at every chunk
boundary, under any chunking — a session's histograms are bit-identical
to the batch pipeline run on the concatenation of everything appended
so far.  These tests pin that invariant, the checkpoint/resume
round-trip through the artifact store, and the out-of-core readers the
``repro stream`` CLI is built on.
"""

from __future__ import annotations

import pytest

from repro.core import engines
from repro.core.postlude import optimal_pairs
from repro.core.streaming import StreamDigest, trace_stream_digest
from repro.store import ArtifactStore
from repro.stream import TraceSession, checkpoint_key
from repro.trace.io import (
    DEFAULT_CHUNK_REFS,
    iter_trace_chunks,
    probe_address_bits,
    write_trace,
)
from repro.trace.trace import Trace

PAPER = [0, 1, 2, 3, 0, 1, 4, 5, 0, 1, 2, 3]

CONFLICTY = [1, 2, 3, 1, 2, 3, 7, 1, 9, 2, 3, 7, 1, 5, 2, 3, 11, 1, 2, 13]


def batch_histograms(trace: Trace, max_level=None):
    return engines.compute_histograms(
        "serial", engines.EngineInputs(trace), max_level=max_level
    )


def as_dicts(histograms):
    return {level: dict(h.counts) for level, h in histograms.items()}


class TestAppendEquivalence:
    @pytest.mark.parametrize("addresses", [PAPER, CONFLICTY])
    def test_every_chunk_boundary_matches_batch(self, addresses) -> None:
        """Split at every index i: histograms after each append are exact."""
        trace = Trace(addresses, address_bits=4)
        for i in range(len(addresses) + 1):
            session = TraceSession(4)
            session.append(trace[:i])
            assert as_dicts(session.histograms()) == as_dicts(
                batch_histograms(trace[:i])
            ), f"prefix of {i}"
            session.append(trace[i:])
            assert as_dicts(session.histograms()) == as_dicts(
                batch_histograms(trace)
            ), f"boundary at {i}"

    def test_per_reference_appends(self) -> None:
        """The finest chunking — one reference at a time — stays exact."""
        session = TraceSession(4)
        for index, addr in enumerate(CONFLICTY):
            session.append([addr])
            prefix = Trace(CONFLICTY[: index + 1], address_bits=4)
            assert as_dicts(session.histograms()) == as_dicts(
                batch_histograms(prefix)
            )

    def test_histograms_stay_appendable(self) -> None:
        """Asking for histograms must not freeze or corrupt the state."""
        session = TraceSession(4)
        session.append(PAPER[:6])
        first = as_dicts(session.histograms())
        assert first == as_dicts(session.histograms())  # idempotent
        session.append(PAPER[6:])
        trace = Trace(PAPER, address_bits=4)
        assert as_dicts(session.histograms()) == as_dicts(batch_histograms(trace))

    @pytest.mark.parametrize("max_level", [0, 1, 2, 99])
    def test_bounded_sessions_match_bounded_batch(self, max_level) -> None:
        trace = Trace(CONFLICTY, address_bits=4)
        session = TraceSession(4, max_level=max_level)
        session.append(CONFLICTY[:9])
        session.append(CONFLICTY[9:])
        assert as_dicts(session.histograms()) == as_dicts(
            batch_histograms(trace, max_level=max_level)
        )

    def test_explore_matches_batch_optimal_pairs(self) -> None:
        trace = Trace(CONFLICTY, address_bits=4)
        session = TraceSession(4)
        session.append(trace)
        for budget in (0, 1, 3):
            expected = optimal_pairs(batch_histograms(trace), budget)
            assert session.explore(budget) == expected
        many = session.explore_many((0, 1, 3))
        assert many == {b: session.explore(b) for b in (0, 1, 3)}

    def test_append_counts_and_introspection(self) -> None:
        session = TraceSession(4, name="demo")
        assert session.append(PAPER[:5]) == 5
        assert session.append(PAPER[5:]) == len(PAPER) - 5
        assert session.total_refs == len(PAPER)
        assert session.unique_refs == Trace(PAPER, address_bits=4).unique_count()
        assert session.appends == 2
        assert "demo" in repr(session)

    def test_rejects_out_of_range_addresses(self) -> None:
        session = TraceSession(3)
        with pytest.raises(ValueError, match="does not fit"):
            session.append([1, 2, 8])
        with pytest.raises(ValueError, match="does not fit"):
            session.append([-1])


class TestDigest:
    def test_digest_is_split_independent(self) -> None:
        trace = Trace(CONFLICTY, address_bits=4)
        whole = TraceSession(4)
        whole.append(trace)
        for i in range(len(CONFLICTY) + 1):
            split = TraceSession(4)
            split.append(CONFLICTY[:i])
            split.append(CONFLICTY[i:])
            assert split.content_digest == whole.content_digest
        assert whole.content_digest == trace_stream_digest(trace)

    def test_stream_digest_prepass_matches_session(self) -> None:
        digest = StreamDigest(4)
        digest.append(CONFLICTY[:7])
        digest.append(CONFLICTY[7:])
        session = TraceSession(4)
        session.append(CONFLICTY)
        assert digest.content_digest == session.content_digest

    def test_digest_depends_on_order_and_width(self) -> None:
        a = TraceSession(4)
        a.append([1, 2, 3])
        b = TraceSession(4)
        b.append([3, 2, 1])
        wide = TraceSession(5)
        wide.append([1, 2, 3])
        assert len({a.content_digest, b.content_digest, wide.content_digest}) == 3


class TestCheckpointResume:
    def test_roundtrip_and_append_after_resume(self, tmp_path) -> None:
        store = ArtifactStore(tmp_path / "store")
        session = TraceSession(4, store=store)
        session.append(CONFLICTY[:12])
        digest = session.checkpoint()
        assert digest == session.content_digest

        resumed = TraceSession.resume(store, digest)
        assert resumed is not None
        assert as_dicts(resumed.histograms()) == as_dicts(session.histograms())
        resumed.append(CONFLICTY[12:])
        trace = Trace(CONFLICTY, address_bits=4)
        assert as_dicts(resumed.histograms()) == as_dicts(batch_histograms(trace))
        assert resumed.content_digest == trace_stream_digest(trace)

    def test_resume_miss_returns_none(self, tmp_path) -> None:
        store = ArtifactStore(tmp_path / "store")
        assert TraceSession.resume(store, "0" * 64) is None

    def test_checkpoint_without_store_is_noop(self) -> None:
        session = TraceSession(4)
        session.append(PAPER)
        assert session.checkpoint() is None

    def test_bounded_checkpoint_key_is_distinct(self, tmp_path) -> None:
        store = ArtifactStore(tmp_path / "store")
        session = TraceSession(4, max_level=2, store=store)
        session.append(CONFLICTY)
        digest = session.checkpoint()
        assert checkpoint_key(digest, 2) != checkpoint_key(digest, None)
        # The unbounded key was never written; only the bounded resume hits.
        assert TraceSession.resume(store, digest) is None
        resumed = TraceSession.resume(store, digest, max_level=2)
        assert resumed is not None
        assert resumed.max_level == 2


class TestChunkedIO:
    @pytest.mark.parametrize(
        "suffix", [".trace", ".trace.gz", ".rbt", ".rbt.gz", ".din", ".csv"]
    )
    def test_chunks_concatenate_to_the_file(self, tmp_path, suffix) -> None:
        trace = Trace(CONFLICTY, address_bits=4, name="t")
        path = tmp_path / f"t{suffix}"
        write_trace(trace, path)
        chunks = list(iter_trace_chunks(path, chunk_refs=7))
        assert all(len(chunk) <= 7 for chunk in chunks)
        flattened = [addr for chunk in chunks for addr in chunk]
        assert flattened == list(trace.addresses)

    def test_probe_address_bits(self, tmp_path) -> None:
        trace = Trace(CONFLICTY, address_bits=4, name="t")
        for suffix, expected in ((".trace", 4), (".rbt", 4), (".din", None)):
            path = tmp_path / f"t{suffix}"
            write_trace(trace, path)
            assert probe_address_bits(path) == expected
        with pytest.raises(ValueError):
            probe_address_bits(tmp_path / "t.unknown")

    def test_chunk_refs_must_be_positive(self, tmp_path) -> None:
        path = tmp_path / "t.trace"
        write_trace(Trace(PAPER, address_bits=4), path)
        with pytest.raises(ValueError):
            list(iter_trace_chunks(path, chunk_refs=0))

    def test_session_over_chunks_matches_whole_file(self, tmp_path) -> None:
        trace = Trace(CONFLICTY * 3, address_bits=4, name="t")
        path = tmp_path / "t.rbt"
        write_trace(trace, path)
        session = TraceSession(probe_address_bits(path))
        for chunk in iter_trace_chunks(path, chunk_refs=5):
            session.append(chunk)
        assert as_dicts(session.histograms()) == as_dicts(batch_histograms(trace))

    def test_default_chunk_refs_sane(self) -> None:
        assert DEFAULT_CHUNK_REFS >= 1
