"""Tests for the shared-memory parallel postlude and segment lifecycle."""

import pytest

from repro.core import engines, parallel
from repro.core.mrct import build_mrct
from repro.core.postlude import compute_level_histograms
from repro.core.zerosets import build_zero_one_sets
from repro.trace.strip import strip_trace
from repro.trace.synthetic import loop_nest_trace, random_trace, zipf_trace
from repro.trace.trace import Trace

np = pytest.importorskip("numpy")

from repro.core import shm  # noqa: E402  (needs NumPy)
from repro.core.parallel import (  # noqa: E402
    compute_level_histograms_parallel_shm,
)
from repro.core.prelude_fast import build_packed_mrct  # noqa: E402


def _crash_worker(job):
    """Module-level so the pool can pickle it into forked workers."""
    raise RuntimeError("worker crashed on purpose")


def _stages(trace):
    stripped = strip_trace(trace)
    return stripped, build_zero_one_sets(stripped)


def _assert_identical(serial, result):
    assert sorted(serial) == sorted(result)
    for level in serial:
        assert serial[level].counts == result[level].counts, level


@pytest.fixture(autouse=True)
def no_segment_leaks():
    """Every test in this module must leave ``/dev/shm`` clean."""
    assert shm.leaked_segments() == ()
    yield
    assert shm.leaked_segments() == ()


class TestEquivalence:
    @pytest.mark.parametrize("split_level", [0, 1, 2, 4])
    def test_packed_matches_serial_across_splits(self, split_level):
        stripped, zerosets = _stages(zipf_trace(400, 60, seed=2))
        serial = compute_level_histograms(zerosets, build_mrct(stripped))
        result = compute_level_histograms_parallel_shm(
            zerosets,
            packed=build_packed_mrct(stripped),
            processes=2,
            split_level=split_level,
        )
        _assert_identical(serial, result)

    @pytest.mark.parametrize("processes", [1, 3])
    def test_packed_matches_serial_across_process_counts(self, processes):
        stripped, zerosets = _stages(random_trace(500, 80, seed=4))
        serial = compute_level_histograms(zerosets, build_mrct(stripped))
        result = compute_level_histograms_parallel_shm(
            zerosets,
            packed=build_packed_mrct(stripped),
            processes=processes,
            split_level=2,
        )
        _assert_identical(serial, result)

    def test_bigint_path_matches_serial(self):
        stripped, zerosets = _stages(zipf_trace(350, 70, seed=5))
        mrct = build_mrct(stripped)
        serial = compute_level_histograms(zerosets, mrct)
        result = compute_level_histograms_parallel_shm(
            zerosets, mrct=mrct, processes=2, split_level=2
        )
        _assert_identical(serial, result)

    def test_matches_on_paper_trace(self, paper_trace):
        stripped, zerosets = _stages(paper_trace)
        serial = compute_level_histograms(zerosets, build_mrct(stripped))
        result = compute_level_histograms_parallel_shm(
            zerosets,
            packed=build_packed_mrct(stripped),
            processes=2,
            split_level=1,
        )
        _assert_identical(serial, result)

    def test_max_level_cap(self):
        stripped, zerosets = _stages(loop_nest_trace(16, 4))
        result = compute_level_histograms_parallel_shm(
            zerosets,
            packed=build_packed_mrct(stripped),
            max_level=3,
            processes=2,
        )
        assert sorted(result) == [0, 1, 2, 3]

    def test_empty_trace(self):
        stripped, zerosets = _stages(Trace([]))
        result = compute_level_histograms_parallel_shm(
            zerosets, packed=build_packed_mrct(stripped), processes=2
        )
        assert all(h.counts == {} for h in result.values())


class TestValidation:
    def test_bad_process_count(self):
        stripped, zerosets = _stages(Trace([0, 1]))
        with pytest.raises(ValueError, match="processes"):
            compute_level_histograms_parallel_shm(
                zerosets, packed=build_packed_mrct(stripped), processes=0
            )

    def test_bad_split_level(self):
        stripped, zerosets = _stages(Trace([0, 1]))
        with pytest.raises(ValueError, match="split_level"):
            compute_level_histograms_parallel_shm(
                zerosets, packed=build_packed_mrct(stripped), split_level=-1
            )

    def test_missing_tables(self):
        _, zerosets = _stages(Trace([0, 1]))
        with pytest.raises(ValueError, match="packed or bigint"):
            compute_level_histograms_parallel_shm(zerosets)

    def test_mismatched_packed_width(self):
        stripped, zerosets = _stages(zipf_trace(100, 20, seed=1))
        other = build_packed_mrct(strip_trace(zipf_trace(100, 40, seed=2)))
        if other.n_unique == zerosets.n_unique:  # pragma: no cover
            pytest.skip("traces happened to share a unique count")
        with pytest.raises(ValueError, match="unique references"):
            compute_level_histograms_parallel_shm(zerosets, packed=other)


class TestSegmentLifecycle:
    """ISSUE satellite: no leaked ``/dev/shm`` entries on any exit path."""

    def test_normal_exit_unlinks(self):
        stripped, zerosets = _stages(random_trace(600, 90, seed=7))
        compute_level_histograms_parallel_shm(
            zerosets,
            packed=build_packed_mrct(stripped),
            processes=2,
            split_level=3,
        )
        assert shm.leaked_segments() == ()
        assert shm.owned_segments() == ()

    def test_worker_crash_unlinks(self, monkeypatch):
        """A worker raising mid-job must not leak the segment."""
        # Workers are forked, so they inherit the patched module.
        monkeypatch.setattr(parallel, "_shm_subtree_histograms", _crash_worker)
        stripped, zerosets = _stages(random_trace(600, 90, seed=7))
        with pytest.raises(RuntimeError, match="on purpose"):
            compute_level_histograms_parallel_shm(
                zerosets,
                packed=build_packed_mrct(stripped),
                processes=2,
                split_level=3,
            )
        assert shm.leaked_segments() == ()

    def test_keyboard_interrupt_unlinks(self, monkeypatch):
        class InterruptingPool:
            def __init__(self, *args, **kwargs):
                pass

            def imap_unordered(self, *args, **kwargs):
                raise KeyboardInterrupt

            def __enter__(self):
                return self

            def __exit__(self, *exc_info):
                return None

        monkeypatch.setattr(parallel.multiprocessing, "Pool", InterruptingPool)
        stripped, zerosets = _stages(random_trace(600, 90, seed=7))
        with pytest.raises(KeyboardInterrupt):
            compute_level_histograms_parallel_shm(
                zerosets,
                packed=build_packed_mrct(stripped),
                processes=2,
                split_level=3,
            )
        assert shm.leaked_segments() == ()

    def test_atexit_sweep_catches_lost_segments(self):
        segment, _, _ = shm.allocate_segment({"field": ("<i8", (4,))})
        assert segment.name in shm.owned_segments()
        shm._cleanup_owned()  # what the atexit hook runs
        assert shm.owned_segments() == ()
        assert shm.leaked_segments() == ()

    def test_unlink_is_idempotent(self):
        segment, _, _ = shm.allocate_segment({"field": ("<i8", (4,))})
        shm.unlink_segment(segment)
        shm.unlink_segment(segment)  # second call must not raise
        assert shm.leaked_segments() == ()

    def test_attach_sees_owner_writes(self):
        arrays = {"values": np.arange(16, dtype=np.int64)}
        segment, spec = shm.create_segment(arrays)
        try:
            attached, views = shm.attach_segment(spec)
            assert np.array_equal(views["values"], arrays["values"])
            assert not views["values"].flags.writeable
            del views
            shm.close_segment(attached)
        finally:
            shm.unlink_segment(segment)


class TestEngineDispatch:
    def test_registry_matches_serial(self):
        trace = zipf_trace(500, 70, seed=6)
        result = engines.compute_histograms(
            "parallel-shm", engines.EngineInputs(trace), processes=2
        )
        serial = engines.compute_histograms(
            "serial", engines.EngineInputs(trace)
        )
        _assert_identical(serial, result)

    def test_python_prelude_uses_bigint_tables(self):
        trace = zipf_trace(300, 50, seed=8)
        inputs = engines.EngineInputs(trace, prelude="python")
        result = engines.compute_histograms("parallel-shm", inputs, processes=2)
        serial = engines.compute_histograms(
            "serial", engines.EngineInputs(trace)
        )
        _assert_identical(serial, result)
        assert inputs.packed_mrct_if_built is None

    def test_auto_picks_shm_only_on_large_multicore(self, monkeypatch):
        trace = zipf_trace(300, 60, seed=1)
        monkeypatch.setattr(engines, "AUTO_MIN_REFS_PARALLEL_SHM", 100)
        monkeypatch.setattr(engines, "_usable_cpus", lambda: 4)
        assert engines.choose_auto(trace) == "parallel-shm"
        monkeypatch.setattr(engines, "_usable_cpus", lambda: 1)
        assert engines.choose_auto(trace) != "parallel-shm"
        monkeypatch.setattr(engines, "_usable_cpus", lambda: 4)
        monkeypatch.setattr(engines, "AUTO_MIN_REFS_PARALLEL_SHM", 10**9)
        assert engines.choose_auto(trace) != "parallel-shm"


class TestPoolReuse:
    """ISSUE satellite: repeat runs on the same trace reuse the worker pool."""

    @pytest.fixture(autouse=True)
    def fresh_pool_cache(self):
        parallel.shutdown_worker_pool()
        yield
        parallel.shutdown_worker_pool()

    def _counting_pool(self, monkeypatch):
        created = []
        real_pool = parallel.multiprocessing.Pool

        def counting(*args, **kwargs):
            created.append(1)
            return real_pool(*args, **kwargs)

        monkeypatch.setattr(parallel.multiprocessing, "Pool", counting)
        return created

    def test_same_key_reuses_pool(self, monkeypatch):
        created = self._counting_pool(monkeypatch)
        stripped, zerosets = _stages(random_trace(600, 90, seed=7))
        mrct = build_mrct(stripped)
        serial = compute_level_histograms(zerosets, mrct)
        for _ in range(3):
            result = parallel.compute_level_histograms_parallel(
                zerosets, mrct, processes=2, split_level=3, reuse_key="digest-a"
            )
            _assert_identical(serial, result)
        assert len(created) == 1

    def test_key_change_recreates_pool(self, monkeypatch):
        created = self._counting_pool(monkeypatch)
        stripped, zerosets = _stages(random_trace(600, 90, seed=7))
        mrct = build_mrct(stripped)
        for key in ("digest-a", "digest-a", "digest-b"):
            parallel.compute_level_histograms_parallel(
                zerosets, mrct, processes=2, split_level=3, reuse_key=key
            )
        assert len(created) == 2

    def test_no_key_keeps_pool_per_call(self, monkeypatch):
        created = self._counting_pool(monkeypatch)
        stripped, zerosets = _stages(random_trace(600, 90, seed=7))
        mrct = build_mrct(stripped)
        for _ in range(2):
            parallel.compute_level_histograms_parallel(
                zerosets, mrct, processes=2, split_level=3
            )
        assert len(created) == 2
        assert parallel._pool_cache is None

    def test_failed_map_poisons_cache(self, monkeypatch):
        monkeypatch.setattr(parallel, "_subtree_histograms", _crash_worker)
        stripped, zerosets = _stages(random_trace(600, 90, seed=7))
        mrct = build_mrct(stripped)
        with pytest.raises(RuntimeError, match="on purpose"):
            parallel.compute_level_histograms_parallel(
                zerosets, mrct, processes=2, split_level=3, reuse_key="digest-a"
            )
        assert parallel._pool_cache is None

    def test_registry_passes_trace_digest_as_reuse_key(self, monkeypatch):
        captured = {}
        real = parallel.compute_level_histograms_parallel

        def spying(*args, **kwargs):
            captured["reuse_key"] = kwargs.get("reuse_key")
            return real(*args, **kwargs)

        monkeypatch.setattr(
            parallel, "compute_level_histograms_parallel", spying
        )
        trace = zipf_trace(300, 50, seed=9)
        inputs = engines.EngineInputs(trace)
        engines.compute_histograms("parallel", inputs, processes=2)
        assert captured["reuse_key"] == inputs.trace_digest
        assert captured["reuse_key"] is not None
