"""ExplorationRequest parity: the unified entry point vs every legacy shim.

The acceptance bar for the request API is exact equivalence — each
legacy helper is a thin shim over :func:`repro.core.explore_request`,
and both spellings must produce identical results on the paper's
workloads.
"""

import pytest

from repro.core import (
    AnalyticalCacheExplorer,
    ExplorationReport,
    ExplorationRequest,
    ExplorationResult,
    MultiTraceExplorer,
    explore,
    explore_many,
    explore_percent,
    explore_request,
)
from repro.core.linesize import LineSizeExplorer, explore_line_sizes
from repro.obs import Recorder
from repro.store import ArtifactStore
from repro.trace.synthetic import loop_nest_trace, zipf_trace
from repro.trace.trace import Trace
from tests.conftest import PAPER_TRACE_BITS

WORKLOADS = ("crc", "fir")


def _paper_trace():
    return Trace.from_bit_strings(PAPER_TRACE_BITS, name="paper-table-1")


@pytest.fixture(scope="module")
def parity_traces(tiny_runs):
    traces = [_paper_trace()]
    traces += [tiny_runs[name].data_trace for name in WORKLOADS]
    return traces


class TestSingleParity:
    def test_explore_shim_matches_request(self, parity_traces):
        for trace in parity_traces:
            for budget in (0, 4):
                via_shim = explore(trace, budget)
                report = explore_request(
                    ExplorationRequest.single(trace, budget=budget)
                )
                assert report.mode == "single"
                assert report.budgets == (budget,)
                assert (
                    report.results[0].to_json_dict() == via_shim.to_json_dict()
                ), trace.name

    def test_explore_shim_matches_explorer_class(self, parity_traces):
        for trace in parity_traces:
            direct = AnalyticalCacheExplorer(trace).explore(2)
            assert explore(trace, 2).to_json_dict() == direct.to_json_dict()

    def test_explore_percent_parity(self, parity_traces):
        for trace in parity_traces:
            via_shim = explore_percent(trace, 10.0)
            report = explore_request(
                ExplorationRequest.single(trace, percent=10.0)
            )
            assert report.results[0].to_json_dict() == via_shim.to_json_dict()
            # The resolved absolute budget matches the trace statistics.
            explorer = AnalyticalCacheExplorer(trace)
            assert report.budgets == (explorer.statistics.budget(10.0),)

    def test_explore_many_parity(self, parity_traces):
        budgets = (0, 1, 5)
        for trace in parity_traces:
            via_shim = explore_many(trace, budgets)
            report = explore_request(
                ExplorationRequest.single(trace, budgets=budgets)
            )
            assert len(via_shim) == len(report.results) == len(budgets)
            for shim_result, request_result in zip(via_shim, report.results):
                assert (
                    shim_result.to_json_dict() == request_result.to_json_dict()
                )

    def test_mixed_absolute_and_percent_budgets(self):
        trace = _paper_trace()
        report = explore_request(
            ExplorationRequest.single(trace, budgets=(0, 2), percents=(50.0,))
        )
        explorer = AnalyticalCacheExplorer(trace)
        assert report.budgets == (0, 2, explorer.statistics.budget(50.0))
        assert len(report.results) == 3

    def test_include_depth_one_passes_through(self):
        trace = _paper_trace()
        shim = explore(trace, 0, include_depth_one=True)
        report = explore_request(
            ExplorationRequest.single(trace, budget=0, include_depth_one=True)
        )
        assert 1 in report.results[0].as_dict()
        assert report.results[0].to_json_dict() == shim.to_json_dict()


class TestExploreEngineBugfix:
    """``explore(trace, budget)`` used to drop engine/recorder/store."""

    def test_engine_choice_is_honored(self):
        trace = zipf_trace(400, 40, seed=3)
        recorder = Recorder()
        explore(trace, 0, engine="streaming", recorder=recorder)
        assert recorder.find("engine:streaming") is not None

    def test_alias_and_all_engines_agree(self, parity_traces):
        trace = parity_traces[0]
        reference = explore(trace, 1, engine="serial").to_json_dict()
        for engine in ("parallel", "streaming", "vectorized", "auto", "bitmask"):
            assert explore(trace, 1, engine=engine).to_json_dict() == reference

    def test_store_passes_through(self, tmp_path):
        trace = zipf_trace(300, 30, seed=9)
        store = ArtifactStore(tmp_path / "s")
        explore(trace, 0, store=store)
        assert store.stats.puts > 0

    def test_unknown_engine_fails_fast(self):
        with pytest.raises(ValueError, match="unknown engine"):
            explore(_paper_trace(), 0, engine="warp-drive")


class TestMultiParity:
    @pytest.fixture(scope="class")
    def app_set(self):
        a = loop_nest_trace(24, 10)
        a.name = "loops"
        b = zipf_trace(500, 40, seed=2)
        b.name = "zipf"
        return [a, b]

    def test_run_dispatches_to_sum_and_each(self, app_set):
        multi = MultiTraceExplorer(app_set)
        for budget in (0, 6):
            assert multi.run(budget, mode="sum").as_dict() == (
                multi.explore_sum(budget).as_dict()
            )
            assert multi.run(budget, mode="each").as_dict() == (
                multi.explore_each(budget).as_dict()
            )

    def test_run_rejects_unknown_mode(self, app_set):
        with pytest.raises(ValueError, match="mode"):
            MultiTraceExplorer(app_set).run(0, mode="median")

    @pytest.mark.parametrize("mode", ["sum", "each"])
    def test_request_matches_explorer(self, app_set, mode):
        direct = MultiTraceExplorer(app_set).run(4, mode=mode)
        report = explore_request(
            ExplorationRequest.multi(app_set, budget=4, mode=mode)
        )
        got = report.multi_results[0]
        assert report.mode == mode
        assert got.mode == direct.mode == mode
        assert got.as_dict() == direct.as_dict()
        assert got.misses_by_trace == direct.misses_by_trace

    def test_weights_pass_through(self, app_set):
        direct = MultiTraceExplorer(app_set, weights=[3, 1]).explore_sum(8)
        report = explore_request(
            ExplorationRequest.multi(app_set, budget=8, weights=(3, 1))
        )
        assert report.multi_results[0].as_dict() == direct.as_dict()


class TestLineSizeParity:
    def test_shim_matches_request(self):
        trace = zipf_trace(600, 48, seed=7)
        line_sizes = (1, 2, 4)
        via_shim = explore_line_sizes(trace, 2, line_sizes=line_sizes)
        report = explore_request(
            ExplorationRequest.line_sweep(trace, budget=2, line_sizes=line_sizes)
        )
        sweep = report.line_sweeps[0]
        assert sweep.budget == via_shim.budget == 2
        for line in line_sizes:
            assert (
                sweep.by_line_words[line].to_json_dict()
                == via_shim.by_line_words[line].to_json_dict()
            )

    def test_shim_matches_class(self):
        trace = loop_nest_trace(32, 8)
        direct = LineSizeExplorer(trace, line_sizes=(1, 4)).explore(0)
        shim = explore_line_sizes(trace, 0, line_sizes=(1, 4))
        for line in (1, 4):
            assert (
                shim.by_line_words[line].as_dict()
                == direct.by_line_words[line].as_dict()
            )


class TestRequestValidation:
    def test_bad_mode(self):
        with pytest.raises(ValueError, match="mode"):
            ExplorationRequest(traces=(_paper_trace(),), mode="exhaustive")

    def test_no_traces(self):
        with pytest.raises(ValueError, match="at least one trace"):
            ExplorationRequest(traces=(), mode="single")

    def test_single_takes_one_trace(self):
        trace = _paper_trace()
        with pytest.raises(ValueError, match="exactly one trace"):
            ExplorationRequest(traces=(trace, trace), mode="single")

    def test_percents_only_in_single_mode(self):
        a = loop_nest_trace(8, 4)
        a.name = "a"
        b = loop_nest_trace(8, 4, start=64)
        b.name = "b"
        with pytest.raises(ValueError, match="percent"):
            ExplorationRequest(
                traces=(a, b), mode="sum", budgets=(1,), percents=(5.0,)
            )

    def test_weights_only_in_sum_mode(self):
        with pytest.raises(ValueError, match="weights"):
            ExplorationRequest(
                traces=(_paper_trace(),),
                mode="single",
                budgets=(0,),
                weights=(2,),
            )

    def test_multi_needs_a_budget(self):
        a = loop_nest_trace(8, 4)
        a.name = "a"
        with pytest.raises(ValueError, match="budget"):
            ExplorationRequest(traces=(a,), mode="each")

    def test_negative_budget(self):
        with pytest.raises(ValueError, match="non-negative"):
            ExplorationRequest(traces=(_paper_trace(),), budgets=(-1,))

    def test_unknown_engine(self):
        with pytest.raises(ValueError, match="unknown engine"):
            ExplorationRequest(
                traces=(_paper_trace(),), budgets=(0,), engine="nope"
            )


class TestScenario:
    """ScenarioSpec is the contract; loose kwargs are deprecation shims."""

    def test_loose_kwargs_build_an_equivalent_spec(self):
        from repro.scenario import ScenarioSpec

        loose = ExplorationRequest(
            traces=(_paper_trace(),),
            budgets=(0,),
            engine="serial",
            prelude="python",
            max_depth=8,
        )
        spec_first = ExplorationRequest(
            traces=(_paper_trace(),),
            budgets=(0,),
            scenario=ScenarioSpec(
                engine="serial", prelude="python", max_depth=8
            ),
        )
        assert loose.scenario == spec_first.scenario
        # The spec is copied back onto the loose fields, so old attribute
        # reads keep working.
        assert spec_first.engine == "serial"
        assert spec_first.prelude == "python"
        assert spec_first.max_depth == 8

    def test_loose_and_scenario_reports_are_byte_identical(self):
        from repro.scenario import ScenarioSpec

        trace = _paper_trace()
        via_loose = explore_request(
            ExplorationRequest(traces=(trace,), budgets=(0, 2), engine="serial")
        )
        via_spec = explore_request(
            ExplorationRequest(
                traces=(trace,),
                budgets=(0, 2),
                scenario=ScenarioSpec(engine="serial"),
            )
        )
        assert via_loose.to_json_dict() == via_spec.to_json_dict()

    def test_conflicting_loose_kwarg_and_spec_rejected(self):
        from repro.scenario import ScenarioSpec

        with pytest.raises(ValueError, match="conflicting 'engine'"):
            ExplorationRequest(
                traces=(_paper_trace(),),
                budgets=(0,),
                engine="serial",
                scenario=ScenarioSpec(engine="vectorized"),
            )

    def test_single_helper_accepts_the_scenario_triple(self):
        request = ExplorationRequest.single(
            _paper_trace(), budget=0, policy="fifo", cost_model="area"
        )
        assert request.policy == "fifo"
        assert request.cost_model == "area"
        assert request.scenario.policy == "fifo"

    def test_non_single_modes_reject_scenarios(self):
        from repro.scenario import ScenarioSpec

        a = loop_nest_trace(8, 4)
        a.name = "a"
        b = loop_nest_trace(8, 4, start=64)
        b.name = "b"
        with pytest.raises(ValueError, match="mode 'single'"):
            ExplorationRequest(
                traces=(a, b),
                mode="sum",
                budgets=(0,),
                scenario=ScenarioSpec(policy="fifo"),
            )

    def test_baseline_report_has_no_scenario_key(self):
        report = explore_request(
            ExplorationRequest.single(_paper_trace(), budget=0)
        )
        assert report.scenario is None
        assert "scenario" not in report.to_json_dict()

    def test_fifo_report_matches_the_fifo_engine(self):
        from repro.core.fifo import FIFOHybridExplorer

        trace = zipf_trace(400, 40, seed=6)
        report = explore_request(
            ExplorationRequest.single(trace, budget=3, policy="fifo")
        )
        direct = FIFOHybridExplorer(trace).explore(3)
        assert report.results[0].to_json_dict() == direct.to_json_dict()
        assert report.scenario["policy"] == "fifo"

    def test_scenario_report_round_trips_through_json(self):
        trace = zipf_trace(400, 40, seed=6)
        report = explore_request(
            ExplorationRequest.single(
                trace, budget=3, policy="fifo", l2_depth=8, cost_model="energy"
            )
        )
        payload = report.to_json_dict()
        assert payload["scenario"]["levels"] == 2
        clone = ExplorationReport.from_json_dict(payload)
        assert clone.to_json_dict() == payload


class TestReport:
    def test_report_shape_and_result_accessor(self):
        trace = _paper_trace()
        report = explore_request(ExplorationRequest.single(trace, budget=0))
        assert isinstance(report, ExplorationReport)
        assert report.engine in ("serial", "parallel", "streaming", "vectorized")
        assert report.result is report.results[0]
        payload = report.to_json_dict()
        assert payload["mode"] == "single"
        assert payload["budgets"] == [0]
        assert payload["results"][0] == report.results[0].to_json_dict()
        assert "store" not in payload

    def test_report_includes_store_stats(self, tmp_path):
        trace = zipf_trace(300, 30, seed=5)
        store = ArtifactStore(tmp_path / "s")
        report = explore_request(
            ExplorationRequest.single(trace, budget=0, store=store)
        )
        assert report.store_stats == store.stats.as_dict()
        assert report.to_json_dict()["store"]["puts"] > 0

    def test_result_json_round_trip(self):
        result = explore(_paper_trace(), 3)
        clone = ExplorationResult.from_json_dict(result.to_json_dict())
        assert clone.to_json_dict() == result.to_json_dict()
        assert clone.as_dict() == result.as_dict()

    def test_empty_report_result_is_none(self):
        report = ExplorationReport(mode="single", engine="serial", budgets=())
        assert report.result is None
