"""Unit tests for the postlude (Algorithm 3) and histogram machinery."""

import pytest

from repro.core.bcat import build_bcat
from repro.core.instance import CacheInstance
from repro.core.mrct import build_mrct
from repro.core.postlude import (
    LevelHistogram,
    compute_level_histograms,
    misses_at_node,
    node_distance_histogram,
    optimal_pairs,
    optimal_pairs_algorithm3,
)
from repro.core.zerosets import bitset_from_members, build_zero_one_sets
from repro.trace.strip import strip_trace
from repro.trace.synthetic import loop_nest_trace, random_trace
from repro.trace.trace import Trace


def _pipeline(trace):
    stripped = strip_trace(trace)
    zerosets = build_zero_one_sets(stripped)
    mrct = build_mrct(stripped)
    return stripped, zerosets, mrct


class TestLevelHistogram:
    def test_misses_sum_distances_at_or_above_assoc(self):
        histogram = LevelHistogram(level=1, counts={0: 5, 1: 3, 2: 2})
        assert histogram.misses(1) == 5
        assert histogram.misses(2) == 2
        assert histogram.misses(3) == 0

    def test_depth_property(self):
        assert LevelHistogram(level=3).depth == 8

    def test_zero_miss_associativity(self):
        assert LevelHistogram(1, {0: 4, 2: 1}).zero_miss_associativity == 3
        assert LevelHistogram(1, {}).zero_miss_associativity == 1

    def test_min_associativity(self):
        histogram = LevelHistogram(1, {0: 5, 1: 3, 2: 2})
        assert histogram.min_associativity(0) == 3
        assert histogram.min_associativity(1) == 3
        assert histogram.min_associativity(2) == 2
        assert histogram.min_associativity(4) == 2
        assert histogram.min_associativity(5) == 1

    def test_min_associativity_rejects_negative(self):
        with pytest.raises(ValueError):
            LevelHistogram(1).min_associativity(-1)

    def test_merge_accumulates(self):
        a = LevelHistogram(2, {0: 1})
        b = LevelHistogram(2, {0: 2, 1: 1})
        a.merge(b)
        assert a.counts == {0: 3, 1: 1}

    def test_merge_rejects_level_mismatch(self):
        with pytest.raises(ValueError, match="level"):
            LevelHistogram(1).merge(LevelHistogram(2))

    def test_misses_rejects_bad_associativity(self):
        with pytest.raises(ValueError):
            LevelHistogram(1).misses(0)


class TestNodeCounting:
    def test_node_histogram_hand_example(self):
        # Trace 0,1,0,1 in one set: each revisit conflicts with 1 other.
        _, zerosets, mrct = _pipeline(Trace([0, 1, 0, 1], address_bits=1))
        members = zerosets.universe
        assert node_distance_histogram(members, mrct) == {1: 2}

    def test_misses_at_node_thresholds(self):
        _, zerosets, mrct = _pipeline(Trace([0, 1, 0, 1], address_bits=1))
        members = zerosets.universe
        assert misses_at_node(members, mrct, 1) == 2
        assert misses_at_node(members, mrct, 2) == 0

    def test_node_subset_reduces_distances(self):
        # Conflict with references outside the node's set must not count.
        trace = Trace([0, 1, 2, 0], address_bits=2)
        _, zerosets, mrct = _pipeline(trace)
        # Node containing only ids {0 (addr 0), 2 (addr 2)}: the revisit of
        # 0 saw {1, 2} but only 2 is in-set -> distance 1.
        members = bitset_from_members({0, 2})
        assert node_distance_histogram(members, mrct) == {1: 1}

    def test_misses_at_node_rejects_bad_assoc(self):
        _, _, mrct = _pipeline(Trace([0, 0]))
        with pytest.raises(ValueError):
            misses_at_node(1, mrct, 0)


class TestComputeLevelHistograms:
    def test_levels_cover_zero_to_address_bits(self):
        _, zerosets, mrct = _pipeline(loop_nest_trace(8, 3))
        histograms = compute_level_histograms(zerosets, mrct)
        assert sorted(histograms) == list(range(zerosets.address_bits + 1))

    def test_max_level_cap(self):
        _, zerosets, mrct = _pipeline(loop_nest_trace(8, 3))
        histograms = compute_level_histograms(zerosets, mrct, max_level=2)
        assert sorted(histograms) == [0, 1, 2]

    def test_level_zero_is_global_stack_distance(self):
        # Depth 1 = fully-associative single row = global LRU distances.
        trace = Trace([0, 1, 2, 0, 1])
        _, zerosets, mrct = _pipeline(trace)
        histograms = compute_level_histograms(zerosets, mrct)
        assert histograms[0].counts == {2: 2}

    def test_deep_levels_become_conflict_free(self):
        _, zerosets, mrct = _pipeline(loop_nest_trace(4, 5))
        histograms = compute_level_histograms(zerosets, mrct)
        assert histograms[zerosets.address_bits].counts == {}


class TestOptimalPairs:
    def test_depths_are_powers_of_two_ascending(self):
        _, zerosets, mrct = _pipeline(random_trace(200, 30, seed=0))
        histograms = compute_level_histograms(zerosets, mrct)
        pairs = optimal_pairs(histograms, budget=5)
        depths = [p.depth for p in pairs]
        assert depths == sorted(depths)
        assert all(d & (d - 1) == 0 for d in depths)
        assert depths[0] == 2  # paper's Algorithm 3 starts at depth 2

    def test_include_depth_one(self):
        _, zerosets, mrct = _pipeline(random_trace(100, 10, seed=1))
        histograms = compute_level_histograms(zerosets, mrct)
        pairs = optimal_pairs(histograms, budget=0, include_depth_one=True)
        assert pairs[0].depth == 1

    def test_budget_monotonicity(self):
        """A bigger budget never needs more associativity at any depth."""
        _, zerosets, mrct = _pipeline(random_trace(300, 40, seed=2))
        histograms = compute_level_histograms(zerosets, mrct)
        small = {p.depth: p.associativity for p in optimal_pairs(histograms, 0)}
        large = {p.depth: p.associativity for p in optimal_pairs(histograms, 20)}
        for depth in small:
            assert large[depth] <= small[depth]

    def test_levels_beyond_histograms_get_direct_mapped(self):
        _, zerosets, mrct = _pipeline(Trace([0, 1, 0, 1], address_bits=1))
        histograms = compute_level_histograms(zerosets, mrct)
        pairs = optimal_pairs(histograms, budget=0, max_level=4)
        mapping = {p.depth: p.associativity for p in pairs}
        assert mapping[16] == 1

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            optimal_pairs({}, budget=-1)


class TestAlgorithm3Oracle:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("budget", [0, 3, 10])
    def test_streaming_matches_literal_algorithm(self, seed, budget):
        trace = random_trace(150, 20, seed=seed)
        stripped, zerosets, mrct = _pipeline(trace)
        bcat = build_bcat(zerosets)
        literal = {
            p.depth: p.associativity
            for p in optimal_pairs_algorithm3(bcat, mrct, budget)
        }
        histograms = compute_level_histograms(zerosets, mrct)
        streaming = {
            p.depth: p.associativity
            for p in optimal_pairs(histograms, budget, max_level=bcat.depth)
        }
        for depth, assoc in literal.items():
            assert streaming[depth] == assoc

    def test_algorithm3_rejects_negative_budget(self):
        _, zerosets, mrct = _pipeline(Trace([0, 1]))
        with pytest.raises(ValueError):
            optimal_pairs_algorithm3(build_bcat(zerosets), mrct, -1)


class TestCacheInstance:
    def test_size_words(self):
        assert CacheInstance(depth=8, associativity=3).size_words == 24

    def test_validation(self):
        with pytest.raises(ValueError):
            CacheInstance(depth=3, associativity=1)
        with pytest.raises(ValueError):
            CacheInstance(depth=4, associativity=0)

    def test_to_config_defaults_to_paper_choices(self):
        config = CacheInstance(depth=4, associativity=2).to_config()
        assert config.line_words == 1
        assert config.replacement.value == "lru"
        assert config.write_policy.value == "write-back"

    def test_str(self):
        assert str(CacheInstance(2, 3)) == "(D=2, A=3)"
