"""Unit tests for budget-sensitivity analysis."""

import pytest

from repro.core.explorer import AnalyticalCacheExplorer
from repro.core.sensitivity import (
    budget_sensitivity,
    marginal_budget_for_cheaper_cache,
)
from repro.trace.synthetic import loop_nest_trace, zipf_trace
from repro.trace.trace import Trace


@pytest.fixture
def explorer():
    return AnalyticalCacheExplorer(zipf_trace(500, 80, seed=0))


class TestBudgetSensitivity:
    def test_staircase_structure(self, explorer):
        steps = budget_sensitivity(explorer, depth=8)
        # Strictly decreasing associativity, contiguous budget intervals.
        assocs = [s.associativity for s in steps]
        assert assocs == sorted(assocs, reverse=True)
        assert len(set(assocs)) == len(assocs)
        assert steps[0].min_budget == 0
        for prev, nxt in zip(steps, steps[1:]):
            assert nxt.min_budget == prev.max_budget + 1
        assert steps[-1].associativity == 1
        assert steps[-1].unbounded

    def test_steps_agree_with_explorer(self, explorer):
        for step in budget_sensitivity(explorer, depth=16):
            result = explorer.explore(step.min_budget)
            assert result.as_dict()[16] == step.associativity
            if not step.unbounded:
                at_max = explorer.explore(step.max_budget)
                assert at_max.as_dict()[16] == step.associativity
                beyond = explorer.explore(step.max_budget + 1)
                assert beyond.as_dict()[16] < step.associativity

    def test_conflict_free_depth_is_single_step(self):
        explorer = AnalyticalCacheExplorer(loop_nest_trace(8, 10))
        steps = budget_sensitivity(explorer, depth=8)
        assert steps == [type(steps[0])(associativity=1, min_budget=0)]

    def test_invalid_depth(self, explorer):
        with pytest.raises(ValueError):
            budget_sensitivity(explorer, depth=3)

    def test_single_reference_trace(self):
        explorer = AnalyticalCacheExplorer(Trace([5, 5, 5]))
        steps = budget_sensitivity(explorer, depth=2)
        assert steps[0].associativity == 1


class TestMarginalBudget:
    def test_zero_when_already_direct_mapped(self, explorer):
        steps = budget_sensitivity(explorer, depth=8)
        final = steps[-1]
        assert (
            marginal_budget_for_cheaper_cache(
                explorer, 8, final.min_budget
            )
            == 0
        )

    def test_marginal_reaches_next_step(self, explorer):
        steps = budget_sensitivity(explorer, depth=8)
        if len(steps) < 2:
            pytest.skip("trace has no staircase at this depth")
        first = steps[0]
        extra = marginal_budget_for_cheaper_cache(explorer, 8, first.min_budget)
        assert extra == first.max_budget + 1 - first.min_budget
        # Spending exactly that much must drop the associativity.
        before = explorer.explore(first.min_budget).as_dict()[8]
        after = explorer.explore(first.min_budget + extra).as_dict()[8]
        assert after < before

    def test_negative_budget_rejected(self, explorer):
        with pytest.raises(ValueError):
            marginal_budget_for_cheaper_cache(explorer, 8, -1)
