"""The vectorized (NumPy bit-matrix) engine against the serial reference.

Bit-identity on the paper's example and edge cases, both popcount code
paths, the NumPy-less fallback (in-process and in a real subprocess with
``import numpy`` failing), and the ``auto`` selection policy.
"""

import subprocess
import sys
from pathlib import Path

import pytest

from repro.core import engines
from repro.core import vectorized as vec
from repro.core.mrct import build_mrct
from repro.core.postlude import compute_level_histograms
from repro.core.vectorized import compute_level_histograms_vectorized
from repro.core.zerosets import build_zero_one_sets
from repro.trace.strip import strip_trace
from repro.trace.synthetic import loop_nest_trace, zipf_trace
from repro.trace.trace import Trace

SRC_DIR = str(Path(__file__).resolve().parents[2] / "src")


def _both(trace, max_level=None):
    stripped = strip_trace(trace)
    zerosets = build_zero_one_sets(stripped)
    mrct = build_mrct(stripped)
    serial = compute_level_histograms(zerosets, mrct, max_level=max_level)
    fast = compute_level_histograms_vectorized(
        zerosets, mrct, max_level=max_level
    )
    return serial, fast


def test_paper_example_bit_identical(paper_trace):
    serial, fast = _both(paper_trace)
    assert fast == serial


@pytest.mark.parametrize(
    "trace",
    [
        Trace([]),
        Trace([7, 7, 7, 7]),
        Trace([3, 12, 3, 12, 3]),
        Trace(range(64)),
        loop_nest_trace(64, 6),
        zipf_trace(900, 70, seed=11),
    ],
    ids=["empty", "single-address", "two-addresses", "no-reuse", "loop", "zipf"],
)
def test_bit_identical_on_edge_and_small_traces(trace):
    serial, fast = _both(trace)
    assert fast == serial


@pytest.mark.parametrize("max_level", [0, 1, 3, 99])
def test_max_level_clamped_like_serial(max_level):
    serial, fast = _both(zipf_trace(500, 60, seed=2), max_level=max_level)
    assert sorted(fast) == sorted(serial)
    assert fast == serial


@pytest.mark.skipif(not vec.numpy_available(), reason="needs numpy")
def test_byte_table_popcount_path(monkeypatch):
    """Forcing the pre-2.0 LUT popcount must not change any histogram."""
    trace = zipf_trace(700, 90, seed=5)
    serial, fast = _both(trace)
    monkeypatch.setattr(vec, "_USE_BITWISE_COUNT", False)
    _, table_path = _both(trace)
    assert fast == serial
    assert table_path == serial


def test_fallback_when_numpy_object_missing(monkeypatch, paper_trace):
    """With ``_np`` gone the function must delegate to the serial kernel."""
    monkeypatch.setattr(vec, "_np", None)
    assert not vec.numpy_available()
    serial, fast = _both(paper_trace)
    assert fast == serial


def test_core_works_in_numpy_less_interpreter():
    """Real subprocess where ``import numpy`` raises: core must still run.

    ``sys.modules["numpy"] = None`` makes any ``import numpy`` raise
    ImportError, which is how a NumPy-less install behaves.
    """
    script = """
import sys
sys.modules["numpy"] = None
from repro.core import (
    AnalyticalCacheExplorer,
    compute_level_histograms_vectorized,
    numpy_available,
)
from repro.core.engines import choose_auto
from repro.trace.synthetic import loop_nest_trace

assert not numpy_available()
trace = loop_nest_trace(16, 400)  # long enough that auto would vectorize
assert choose_auto(trace) == "serial"
explorer = AnalyticalCacheExplorer(trace, engine="vectorized")
reference = AnalyticalCacheExplorer(trace, engine="serial")
assert explorer.histograms == reference.histograms
assert explorer.explore(0).as_dict() == reference.explore(0).as_dict()
print("ok")
"""
    completed = subprocess.run(
        [sys.executable, "-c", script],
        capture_output=True,
        text=True,
        env={"PYTHONPATH": SRC_DIR, "PATH": "/usr/bin:/bin"},
    )
    assert completed.returncode == 0, completed.stderr
    assert completed.stdout.strip() == "ok"


def test_auto_prefers_vectorized_only_for_long_traces():
    short = loop_nest_trace(8, 4)
    long = loop_nest_trace(64, 1 + engines.AUTO_MIN_REFS // 64)
    if vec.numpy_available():
        assert engines.choose_auto(long) == "vectorized"
    else:
        assert engines.choose_auto(long) == "serial"
    assert engines.choose_auto(short) == "serial"
    assert engines.choose_auto(None) == "serial"
