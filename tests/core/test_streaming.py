"""Unit tests for the streaming (O(N') memory) histogram engine."""

import pytest

from repro.core.mrct import build_mrct
from repro.core.postlude import compute_level_histograms
from repro.core.streaming import compute_level_histograms_streaming
from repro.core.zerosets import build_zero_one_sets
from repro.trace.strip import strip_trace
from repro.trace.synthetic import (
    loop_nest_trace,
    markov_trace,
    random_trace,
    sequential_trace,
    zipf_trace,
)
from repro.trace.trace import Trace


def _bcat_histograms(trace, max_level=None):
    stripped = strip_trace(trace)
    return compute_level_histograms(
        build_zero_one_sets(stripped), build_mrct(stripped), max_level=max_level
    )


TRACES = [
    sequential_trace(100),
    loop_nest_trace(12, 8),
    random_trace(300, 50, seed=0),
    zipf_trace(300, 60, seed=1),
    markov_trace(300, 40, seed=2),
]


@pytest.mark.parametrize("trace", TRACES, ids=lambda t: t.name)
def test_bit_identical_to_bcat_path(trace):
    serial = _bcat_histograms(trace)
    streaming = compute_level_histograms_streaming(trace)
    assert sorted(serial) == sorted(streaming)
    for level in serial:
        assert serial[level].counts == streaming[level].counts, level


def test_paper_example(paper_trace):
    serial = _bcat_histograms(paper_trace)
    streaming = compute_level_histograms_streaming(paper_trace)
    for level in serial:
        assert serial[level].counts == streaming[level].counts


def test_max_level_cap():
    trace = random_trace(100, 20, seed=3)
    streaming = compute_level_histograms_streaming(trace, max_level=2)
    assert sorted(streaming) == [0, 1, 2]
    serial = _bcat_histograms(trace, max_level=2)
    for level in streaming:
        assert streaming[level].counts == serial[level].counts


def test_empty_trace():
    histograms = compute_level_histograms_streaming(Trace([]))
    assert all(h.counts == {} for h in histograms.values())


def test_single_address_trace():
    # Repeated single address: singleton rows everywhere, so the BCAT
    # path records nothing; the streaming post-filter must agree.
    histograms = compute_level_histograms_streaming(Trace([5] * 10))
    assert all(h.counts == {} for h in histograms.values())


def test_answers_queryable_like_any_histogram():
    trace = zipf_trace(400, 70, seed=4)
    histograms = compute_level_histograms_streaming(trace)
    from repro.core.explorer import AnalyticalCacheExplorer

    explorer = AnalyticalCacheExplorer(trace)
    for level, histogram in histograms.items():
        for assoc in (1, 2, 4):
            assert histogram.misses(assoc) == explorer.misses(
                1 << level, assoc
            )
