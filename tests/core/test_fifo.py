"""The FIFO hybrid engine: bit-identical to the simulator by construction."""

import pytest

from repro.cache.config import CacheConfig, ReplacementKind
from repro.cache.simulator import simulate_trace
from repro.core.explorer import AnalyticalCacheExplorer
from repro.core.fifo import FIFOHybridExplorer
from repro.store import ArtifactStore
from repro.trace.synthetic import (
    adversarial_lowbit_trace,
    loop_nest_trace,
    random_trace,
    skewed_trace,
)
from repro.trace.trace import Trace
from tests.conftest import PAPER_TRACE_BITS


def _paper_trace():
    return Trace.from_bit_strings(PAPER_TRACE_BITS, name="paper-table-1")


def _fifo_misses(trace, depth, assoc):
    config = CacheConfig(
        depth=depth,
        associativity=assoc,
        line_words=1,
        replacement=ReplacementKind.FIFO,
    )
    return simulate_trace(trace, config).non_cold_misses


TRACES = (
    _paper_trace(),
    random_trace(700, footprint=90, seed=7),
    adversarial_lowbit_trace(400, low_bits=3, footprint=16, seed=2),
    skewed_trace(500, footprint=40, hot_fraction=0.25, skew=0.85, seed=4),
    loop_nest_trace(20, 12),
)


class TestBitIdentity:
    @pytest.mark.parametrize("trace", TRACES, ids=lambda t: t.name)
    def test_every_cell_matches_the_simulator(self, trace):
        explorer = FIFOHybridExplorer(trace)
        for level in range(explorer.report_level + 1):
            depth = 1 << level
            zero = explorer.zero_miss_associativity(depth)
            for assoc in range(1, zero + 2):
                assert explorer.misses(depth, assoc) == _fifo_misses(
                    trace, depth, assoc
                ), (trace.name, depth, assoc)

    def test_direct_mapped_column_is_the_analytical_one(self):
        trace = TRACES[1]
        fifo = FIFOHybridExplorer(trace)
        lru = AnalyticalCacheExplorer(trace)
        for level in range(fifo.report_level + 1):
            depth = 1 << level
            # A=1 leaves no replacement choice: FIFO == LRU == analytical.
            assert fifo.misses(depth, 1) == lru.misses(depth, 1)

    def test_zero_bound_is_tight(self):
        trace = TRACES[2]
        explorer = FIFOHybridExplorer(trace)
        for depth in (1, 2, 4, 8):
            zero = explorer.zero_miss_associativity(depth)
            assert explorer.misses(depth, zero) == 0
            assert _fifo_misses(trace, depth, zero) == 0


class TestExploration:
    def test_instances_are_within_budget_and_first_fit(self):
        trace = TRACES[1]
        explorer = FIFOHybridExplorer(trace)
        budget = explorer.statistics.budget(10.0)
        result = explorer.explore(budget)
        for inst, misses in zip(result.instances, result.misses):
            assert misses <= budget
            # Upward scan: every smaller A must exceed the budget.
            for below in range(1, inst.associativity):
                assert explorer.misses(inst.depth, below) > budget

    def test_explore_percent_and_many_agree_with_explore(self):
        trace = TRACES[3]
        explorer = FIFOHybridExplorer(trace)
        budget = explorer.statistics.budget(20.0)
        assert (
            explorer.explore_percent(20.0).to_json_dict()
            == explorer.explore(budget).to_json_dict()
        )
        many = explorer.explore_many((0, budget))
        assert many[1].to_json_dict() == explorer.explore(budget).to_json_dict()

    def test_include_depth_one_adds_the_fully_associative_column(self):
        explorer = FIFOHybridExplorer(_paper_trace())
        with_one = explorer.explore(0, include_depth_one=True)
        without = explorer.explore(0)
        assert 1 in with_one.as_dict()
        assert 1 not in without.as_dict()

    def test_validation(self):
        explorer = FIFOHybridExplorer(_paper_trace())
        with pytest.raises(ValueError, match="power of two"):
            explorer.misses(3, 1)
        with pytest.raises(ValueError, match="associativity"):
            explorer.misses(4, 0)
        with pytest.raises(ValueError, match="non-negative"):
            explorer.explore(-1)


class TestStoreWarmStart:
    def test_second_run_loads_tables_instead_of_simulating(self, tmp_path):
        trace = random_trace(500, footprint=60, seed=11)
        store = ArtifactStore(tmp_path / "s")
        cold = FIFOHybridExplorer(trace, store=store)
        cold_result = cold.explore(5)
        puts_after_cold = store.stats.puts
        assert puts_after_cold > 0

        warm = FIFOHybridExplorer(trace, store=store)
        warm_result = warm.explore(5)
        assert warm_result.to_json_dict() == cold_result.to_json_dict()
        assert not warm._tables or store.stats.hits > 0
        assert store.stats.puts == puts_after_cold  # nothing re-written

    def test_fifo_keys_are_disjoint_from_lru_histograms(self, tmp_path):
        trace = random_trace(400, footprint=50, seed=12)
        store = ArtifactStore(tmp_path / "s")
        FIFOHybridExplorer(trace, store=store).explore(0)
        lru_before = AnalyticalCacheExplorer(trace, store=store)
        lru_result = lru_before.explore(0)
        # An LRU run against the FIFO-primed store must match a storeless
        # run exactly: the policy-misses stage cannot poison histograms.
        fresh = AnalyticalCacheExplorer(trace).explore(0)
        assert lru_result.to_json_dict() == fresh.to_json_dict()

    def test_policy_attribute_lands_in_the_key(self, tmp_path):
        trace = random_trace(300, footprint=30, seed=13)
        explorer = FIFOHybridExplorer(trace, store=ArtifactStore(tmp_path / "s"))
        key = explorer._table_key(4)
        params = dict(key.params)
        assert params["policy"] == "'fifo'"
        assert params["depth"] == "4"
        assert key.stage == "policy-misses"
