"""Unit tests for zero/one set construction."""

import pytest

from repro.core.zerosets import (
    bitset_from_members,
    bitset_members,
    build_zero_one_sets,
)
from repro.trace.strip import strip_trace
from repro.trace.synthetic import random_trace
from repro.trace.trace import Trace


class TestBitsetHelpers:
    def test_roundtrip(self):
        members = {0, 3, 7}
        assert bitset_members(bitset_from_members(members)) == members

    def test_empty(self):
        assert bitset_from_members(set()) == 0
        assert bitset_members(0) == set()

    def test_negative_identifier_rejected(self):
        with pytest.raises(ValueError):
            bitset_from_members({-1})

    def test_bit_positions(self):
        assert bitset_from_members({2}) == 0b100


class TestBuildZeroOneSets:
    def test_bit_membership(self):
        # addresses: 0b01 (id 0), 0b10 (id 1)
        zerosets = build_zero_one_sets(strip_trace(Trace([1, 2])))
        assert zerosets.zero_members(0) == {1}
        assert zerosets.one_members(0) == {0}
        assert zerosets.zero_members(1) == {0}
        assert zerosets.one_members(1) == {1}

    def test_covers_declared_address_bits(self):
        zerosets = build_zero_one_sets(
            strip_trace(Trace([1], address_bits=6))
        )
        assert zerosets.address_bits == 6
        # Address 1 has zeros at bits 1..5.
        for bit in range(1, 6):
            assert zerosets.zero_members(bit) == {0}

    def test_universe_has_one_bit_per_unique_reference(self):
        trace = random_trace(100, 17, seed=3)
        zerosets = build_zero_one_sets(strip_trace(trace))
        assert zerosets.universe.bit_count() == trace.unique_count()
        assert zerosets.n_unique == trace.unique_count()

    @pytest.mark.parametrize("seed", [0, 1])
    def test_partition_property(self, seed):
        trace = random_trace(200, 40, seed=seed)
        zerosets = build_zero_one_sets(strip_trace(trace))
        for bit in range(zerosets.address_bits):
            zero, one = zerosets.pair(bit)
            assert zero & one == 0
            assert zero | one == zerosets.universe

    def test_empty_trace(self):
        zerosets = build_zero_one_sets(strip_trace(Trace([])))
        assert zerosets.universe == 0
