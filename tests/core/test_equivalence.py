"""Analytical = simulated, miss for miss — the repository's central invariant.

For LRU caches with one-word lines, the analytical model's miss counts
must equal the cache simulator's non-cold miss counts on every (depth,
associativity) point, for every trace shape.  (Property-based versions
live in tests/property/; these are deterministic grids.)
"""

import pytest

from repro.cache.config import CacheConfig
from repro.cache.onepass import stack_distance_profile
from repro.cache.simulator import simulate_trace
from repro.core.explorer import AnalyticalCacheExplorer
from repro.trace.synthetic import (
    interleaved_trace,
    loop_nest_trace,
    markov_trace,
    random_trace,
    sequential_trace,
    strided_trace,
    zipf_trace,
)

TRACES = [
    sequential_trace(200),
    strided_trace(150, stride=3),
    loop_nest_trace(24, 12),
    random_trace(400, 48, seed=0),
    zipf_trace(400, 64, exponent=1.3, seed=1),
    markov_trace(400, 80, locality=0.85, seed=2),
    interleaved_trace(
        [loop_nest_trace(8, 20), strided_trace(160, stride=2, start=512)]
    ),
]

DEPTHS = [1, 2, 4, 8, 16, 32]
ASSOCS = [1, 2, 3, 5]


@pytest.mark.parametrize("trace", TRACES, ids=lambda t: t.name)
def test_analytical_equals_simulation(trace):
    explorer = AnalyticalCacheExplorer(trace)
    for depth in DEPTHS:
        for assoc in ASSOCS:
            analytical = explorer.misses(depth, assoc)
            simulated = simulate_trace(
                trace, CacheConfig(depth=depth, associativity=assoc)
            ).non_cold_misses
            assert analytical == simulated, (
                f"{trace.name}: D={depth} A={assoc}: "
                f"analytical={analytical} simulated={simulated}"
            )


@pytest.mark.parametrize("trace", TRACES, ids=lambda t: t.name)
def test_analytical_equals_onepass_stack_distances(trace):
    """Per-level histograms must aggregate to Mattson per-set profiles."""
    explorer = AnalyticalCacheExplorer(trace)
    for depth in (1, 4, 16):
        profile = stack_distance_profile(trace, depth)
        level = depth.bit_length() - 1
        histogram = explorer.histograms[level]
        for assoc in (1, 2, 4, 8):
            assert histogram.misses(assoc) == profile.non_cold_misses(assoc)


@pytest.mark.parametrize("trace", TRACES, ids=lambda t: t.name)
def test_monotonicity_in_associativity(trace):
    """LRU inclusion: misses never increase with associativity."""
    explorer = AnalyticalCacheExplorer(trace)
    for depth in DEPTHS:
        previous = None
        for assoc in range(1, 9):
            misses = explorer.misses(depth, assoc)
            if previous is not None:
                assert misses <= previous
            previous = misses


@pytest.mark.parametrize("trace", TRACES, ids=lambda t: t.name)
def test_monotonicity_in_depth_at_zero_budget(trace):
    """The zero-miss associativity never grows when the cache deepens.

    Child sets partition parent sets, so per-row conflict cardinalities
    only shrink with depth.
    """
    explorer = AnalyticalCacheExplorer(trace)
    result = explorer.explore(0)
    assocs = [inst.associativity for inst in result]
    assert assocs == sorted(assocs, reverse=True)
