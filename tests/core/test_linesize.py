"""Unit tests for the line-size extension."""

import pytest

from repro.cache.config import CacheConfig
from repro.cache.simulator import simulate_trace
from repro.core.linesize import LineSizeExplorer, explore_line_sizes
from repro.trace.synthetic import (
    loop_nest_trace,
    random_trace,
    sequential_trace,
    zipf_trace,
)
from repro.trace.trace import Trace


class TestLineTrace:
    def test_addresses_are_shifted(self):
        trace = Trace([0, 1, 4, 5, 8], address_bits=4)
        line = trace.to_line_trace(4)
        assert list(line) == [0, 0, 1, 1, 2]
        assert line.address_bits == 2

    def test_line_one_is_identity(self):
        trace = Trace([3, 7, 3])
        assert list(trace.to_line_trace(1)) == [3, 7, 3]

    def test_kinds_preserved(self):
        from repro.trace.reference import AccessKind

        trace = Trace([0, 4], kinds=[AccessKind.WRITE, AccessKind.READ])
        line = trace.to_line_trace(4)
        assert line.kind(0) is AccessKind.WRITE

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError, match="power of two"):
            Trace([0]).to_line_trace(3)

    def test_name_records_line_size(self):
        trace = Trace([0], name="demo")
        assert trace.to_line_trace(8).name == "demo/L8"


class TestExactness:
    """The headline property: line-trace analysis == multiword-line simulation."""

    @pytest.mark.parametrize("line_words", [1, 2, 4, 8])
    def test_against_simulator(self, line_words):
        trace = random_trace(500, 120, seed=line_words)
        explorer = LineSizeExplorer(trace, line_sizes=[line_words])
        for depth in (2, 8, 32):
            for assoc in (1, 2, 4):
                analytical = explorer.misses(line_words, depth, assoc)
                simulated = simulate_trace(
                    trace,
                    CacheConfig(
                        depth=depth, associativity=assoc, line_words=line_words
                    ),
                ).non_cold_misses
                assert analytical == simulated

    def test_sequential_trace_benefits_from_long_lines(self):
        # Pure streaming: longer lines turn misses into spatial hits,
        # shrinking cold misses; non-cold stay zero everywhere.
        trace = sequential_trace(256)
        sweep = LineSizeExplorer(trace).explore(0)
        colds = {
            li.line_words: li.cold_misses for li in sweep.instances
        }
        assert colds[8] * 8 == colds[1]


class TestSweep:
    def test_default_line_sizes(self):
        sweep = LineSizeExplorer(loop_nest_trace(16, 5)).explore(0)
        assert sweep.line_sizes() == [1, 2, 4, 8]

    def test_budget_met_per_line_size(self):
        trace = zipf_trace(600, 90, seed=3)
        sweep = LineSizeExplorer(trace).explore(10)
        for point in sweep.instances:
            assert point.non_cold_misses <= 10

    def test_size_words_includes_line(self):
        sweep = LineSizeExplorer(loop_nest_trace(16, 5)).explore(0)
        point = next(li for li in sweep.instances if li.line_words == 4)
        assert point.size_words == point.instance.size_words * 4

    def test_traffic_counts_words_per_fetch(self):
        sweep = LineSizeExplorer(loop_nest_trace(16, 5)).explore(0)
        for point in sweep.instances:
            assert point.traffic_words == point.total_misses * point.line_words

    def test_smallest_and_least_traffic_are_members(self):
        sweep = explore_line_sizes(zipf_trace(400, 60, seed=1), budget=5)
        assert sweep.smallest() in sweep.instances
        assert sweep.least_traffic() in sweep.instances

    def test_at_accessor(self):
        sweep = explore_line_sizes(loop_nest_trace(8, 4), budget=0)
        assert sweep.at(2).budget == 0

    def test_loop_footprint_shrinks_with_line_size(self):
        # Footprint 32 words = 8 lines of 4: depth 8 direct-mapped is
        # conflict-free at L=4 where L=1 needs depth 32.
        trace = loop_nest_trace(32, 10)
        explorer = LineSizeExplorer(trace, line_sizes=[1, 4])
        assert explorer.misses(1, 8, 1) > 0
        assert explorer.misses(4, 8, 1) == 0

    def test_validation_hooks(self):
        trace = zipf_trace(300, 50, seed=2)
        sweep = explore_line_sizes(trace, budget=3)
        for point in sweep.instances:
            simulated = simulate_trace(trace, point.to_config())
            assert simulated.non_cold_misses == point.non_cold_misses
            assert simulated.cold_misses == point.cold_misses


class TestValidationOfInputs:
    def test_empty_line_sizes_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            LineSizeExplorer(Trace([0]), line_sizes=[])

    def test_non_power_of_two_line_rejected(self):
        with pytest.raises(ValueError, match="power of two"):
            LineSizeExplorer(Trace([0]), line_sizes=[3])

    def test_duplicate_line_sizes_deduplicated(self):
        explorer = LineSizeExplorer(Trace([0, 1]), line_sizes=[2, 2, 1])
        assert explorer.line_sizes == [1, 2]
