"""Unit tests for the MRCT (Algorithm 2)."""

import pytest

from repro.core.mrct import build_mrct, build_mrct_naive, mrct_as_display_table
from repro.core.zerosets import bitset_members
from repro.trace.strip import strip_trace
from repro.trace.synthetic import loop_nest_trace, random_trace, zipf_trace
from repro.trace.trace import Trace


class TestStructure:
    def test_first_occurrence_has_no_conflict_set(self):
        mrct = build_mrct(strip_trace(Trace([7, 8, 9])))
        assert all(sets == [] for sets in mrct.sets)

    def test_conflict_set_counts_match_reoccurrences(self):
        mrct = build_mrct(strip_trace(Trace([1, 2, 1, 2, 1])))
        assert len(mrct.conflict_sets(0)) == 2  # address 1 recurs twice
        assert len(mrct.conflict_sets(1)) == 1

    def test_conflict_set_never_contains_self(self):
        trace = random_trace(300, 20, seed=0)
        mrct = build_mrct(strip_trace(trace))
        for ident in range(mrct.n_unique):
            for mask in mrct.conflict_sets(ident):
                assert not (mask >> ident) & 1

    def test_distinct_intervening_references(self):
        # 1 at positions 0 and 4; between them: 2, 3, 2 -> {2, 3} distinct.
        stripped = strip_trace(Trace([1, 2, 3, 2, 1]))
        mrct = build_mrct(stripped)
        ids = bitset_members(mrct.conflict_sets(0)[0])
        addrs = {stripped.address(i) for i in ids}
        assert addrs == {2, 3}

    def test_back_to_back_occurrence_has_empty_conflict_set(self):
        mrct = build_mrct(strip_trace(Trace([5, 5])))
        assert mrct.conflict_sets(0) == [0]

    def test_total_conflict_sets_is_n_minus_unique(self):
        trace = zipf_trace(400, 30, seed=2)
        mrct = build_mrct(strip_trace(trace))
        assert mrct.total_conflict_sets == len(trace) - trace.unique_count()

    def test_display_table_uses_one_based_ids(self):
        mrct = build_mrct(strip_trace(Trace([1, 2, 1])))
        display = mrct_as_display_table(mrct)
        assert set(display) == {1, 2}
        assert display[1] == [{2}]


class TestNaiveEquivalence:
    """Algorithm 2 verbatim must equal the single-pass LRU-stack builder."""

    def test_on_paper_trace(self, paper_trace):
        stripped = strip_trace(paper_trace)
        assert build_mrct(stripped).sets == build_mrct_naive(stripped).sets

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_on_random_traces(self, seed):
        stripped = strip_trace(random_trace(250, 25, seed=seed))
        assert build_mrct(stripped).sets == build_mrct_naive(stripped).sets

    def test_on_loop_trace(self):
        stripped = strip_trace(loop_nest_trace(12, 8))
        assert build_mrct(stripped).sets == build_mrct_naive(stripped).sets

    def test_on_empty_trace(self):
        stripped = strip_trace(Trace([]))
        assert build_mrct(stripped).sets == build_mrct_naive(stripped).sets == []


class TestLoopTraceShape:
    def test_loop_conflict_sets_are_whole_footprint(self):
        # In a loop over F addresses, every revisit sees the other F-1.
        footprint = 6
        stripped = strip_trace(loop_nest_trace(footprint, 4))
        mrct = build_mrct(stripped)
        for ident in range(footprint):
            for mask in mrct.conflict_sets(ident):
                assert mask.bit_count() == footprint - 1

    def test_repr(self):
        mrct = build_mrct(strip_trace(Trace([1, 1])))
        assert "refs=1" in repr(mrct)
