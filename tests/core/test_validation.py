"""Unit tests for analytical-vs-simulation validation helpers."""

import pytest

from repro.cache.simulator import simulate_trace
from repro.core.explorer import AnalyticalCacheExplorer
from repro.core.instance import CacheInstance, ExplorationResult
from repro.core.validation import (
    ValidationRecord,
    assert_all_valid,
    validate_instances,
)
from repro.trace.synthetic import random_trace, zipf_trace


class TestValidateInstances:
    def test_all_explorer_outputs_validate(self):
        trace = zipf_trace(400, 50, seed=0)
        result = AnalyticalCacheExplorer(trace).explore(5)
        records = validate_instances(trace, result)
        assert len(records) == len(result.instances)
        assert all(r.ok for r in records)
        assert_all_valid(records)  # must not raise

    def test_exactness_flag(self):
        trace = random_trace(200, 30, seed=1)
        result = AnalyticalCacheExplorer(trace).explore(0)
        for record in validate_instances(trace, result):
            assert record.exact
            assert record.predicted_misses == record.simulated.non_cold_misses

    def test_missing_predictions_fall_back_to_simulation(self):
        trace = random_trace(100, 10, seed=2)
        bare = ExplorationResult(
            budget=1000,
            instances=[CacheInstance(depth=2, associativity=1)],
        )
        records = validate_instances(trace, bare)
        assert records[0].exact  # prediction defaulted to simulated value


class TestAssertAllValid:
    def test_raises_on_wrong_prediction(self):
        trace = random_trace(100, 12, seed=3)
        instance = CacheInstance(depth=2, associativity=1)
        simulated = simulate_trace(trace, instance.to_config())
        record = ValidationRecord(
            instance=instance,
            predicted_misses=simulated.non_cold_misses + 1,
            simulated=simulated,
            budget=10**9,
        )
        with pytest.raises(AssertionError, match="predicted"):
            assert_all_valid([record])

    def test_raises_on_budget_violation(self):
        trace = random_trace(200, 12, seed=4)
        instance = CacheInstance(depth=2, associativity=1)
        simulated = simulate_trace(trace, instance.to_config())
        assert simulated.non_cold_misses > 0
        record = ValidationRecord(
            instance=instance,
            predicted_misses=simulated.non_cold_misses,
            simulated=simulated,
            budget=0,
        )
        assert not record.within_budget
        with pytest.raises(AssertionError, match="budget"):
            assert_all_valid([record])
