"""Unit tests for the BCAT (Algorithm 1) and its streaming traversal."""

import pytest

from repro.core.bcat import build_bcat, level_set_map, walk_bcat_sets
from repro.core.zerosets import build_zero_one_sets
from repro.trace.strip import strip_trace
from repro.trace.synthetic import loop_nest_trace, random_trace
from repro.trace.trace import Trace


def _zerosets(trace):
    return build_zero_one_sets(strip_trace(trace))


class TestBuildBCAT:
    def test_root_contains_everything(self):
        zerosets = _zerosets(Trace([1, 2, 3]))
        bcat = build_bcat(zerosets)
        assert bcat.root.members == zerosets.universe
        assert bcat.root.level == 0

    def test_children_split_by_index_bit(self):
        zerosets = _zerosets(Trace([0, 1, 2, 3]))
        bcat = build_bcat(zerosets)
        left = bcat.root.left.member_ids()
        right = bcat.root.right.member_ids()
        # ids: 0->addr0, 1->addr1, 2->addr2, 3->addr3; bit0 even/odd split
        assert left == {0, 2}
        assert right == {1, 3}

    def test_growth_stops_below_singletons(self):
        zerosets = _zerosets(Trace([0, 1]))
        bcat = build_bcat(zerosets)
        assert bcat.root.left.is_leaf
        assert bcat.root.right.is_leaf

    def test_growth_stops_at_address_bits(self):
        # Two references identical in all bits cannot be split: the tree
        # must bottom out at address_bits even with cardinality 2.
        zerosets = _zerosets(Trace([5, 5, 5], address_bits=3))
        bcat = build_bcat(zerosets)
        assert bcat.depth == 0  # single unique ref: root is a leaf

    def test_duplicate_prefix_references(self):
        # 0b01 and 0b11 differ only at bit 1.
        zerosets = _zerosets(Trace([1, 3]))
        bcat = build_bcat(zerosets)
        assert bcat.root.left.member_ids() == set()
        assert bcat.root.right.member_ids() == {0, 1}
        assert bcat.root.right.left.member_ids() == {0}

    def test_level_nodes_rejects_negative(self):
        bcat = build_bcat(_zerosets(Trace([0, 1])))
        with pytest.raises(ValueError):
            bcat.level_nodes(-1)

    def test_render_contains_all_levels(self):
        bcat = build_bcat(_zerosets(Trace([0, 1, 2, 3])))
        text = bcat.render()
        assert "L0" in text and "L1" in text and "L2" in text


class TestLevelPartition:
    """Level l of the BCAT partitions references exactly like a depth-2^l cache."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_level_sets_match_modulo_classes(self, seed):
        trace = random_trace(150, 33, seed=seed)
        stripped = strip_trace(trace)
        zerosets = build_zero_one_sets(stripped)
        bcat = build_bcat(zerosets)
        for level in (1, 2, 3):
            depth = 1 << level
            expected = {}
            for ident, addr in enumerate(stripped.unique_addresses):
                expected.setdefault(addr % depth, set()).add(ident)
            got = [
                node.member_ids()
                for node in bcat.level_nodes(level)
                if node.members
            ]
            assert sorted(map(sorted, got)) == sorted(
                sorted(s) for s in expected.values()
            )


class TestStreamingWalk:
    def test_walk_agrees_with_materialized_tree(self):
        trace = random_trace(200, 28, seed=7)
        zerosets = _zerosets(trace)
        bcat = build_bcat(zerosets)
        streamed = level_set_map(zerosets)
        for level in range(1, 4):
            tree_sets = sorted(
                node.members
                for node in bcat.level_nodes(level)
                if node.members.bit_count() >= 1
            )
            walk_sets = sorted(streamed.get(level, []))
            # The walk omits empty nodes; the tree may contain them.
            assert walk_sets == [s for s in tree_sets if s]

    def test_walk_yields_root_first_members(self):
        zerosets = _zerosets(Trace([0, 1, 2]))
        first = next(walk_bcat_sets(zerosets))
        assert first == (0, zerosets.universe)

    def test_max_level_limits_depth(self):
        zerosets = _zerosets(loop_nest_trace(16, 2))
        levels = {level for level, _ in walk_bcat_sets(zerosets, max_level=2)}
        assert max(levels) <= 2

    def test_walk_never_yields_children_of_singletons(self):
        zerosets = _zerosets(random_trace(100, 20, seed=1))
        seen = {}
        for level, members in walk_bcat_sets(zerosets):
            seen.setdefault(level, []).append(members)
        # Every non-root set must be a subset of some parent set with >= 2 members.
        for level in sorted(seen)[1:]:
            parents = [m for m in seen[level - 1] if m.bit_count() >= 2]
            for members in seen[level]:
                assert any(members & p == members for p in parents)
