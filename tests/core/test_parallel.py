"""Unit tests for the parallel postlude (section 2.4 distribution note)."""

import pytest

from repro.core.mrct import build_mrct
from repro.core.parallel import compute_level_histograms_parallel
from repro.core.postlude import compute_level_histograms
from repro.core.zerosets import build_zero_one_sets
from repro.trace.strip import strip_trace
from repro.trace.synthetic import loop_nest_trace, random_trace, zipf_trace
from repro.trace.trace import Trace


def _stages(trace):
    stripped = strip_trace(trace)
    return build_zero_one_sets(stripped), build_mrct(stripped)


def _assert_identical(serial, parallel):
    assert sorted(serial) == sorted(parallel)
    for level in serial:
        assert serial[level].counts == parallel[level].counts, level


class TestEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_serial_on_random_traces(self, seed):
        zerosets, mrct = _stages(random_trace(400, 70, seed=seed))
        serial = compute_level_histograms(zerosets, mrct)
        parallel = compute_level_histograms_parallel(
            zerosets, mrct, processes=2
        )
        _assert_identical(serial, parallel)

    def test_matches_on_paper_trace(self, paper_trace):
        zerosets, mrct = _stages(paper_trace)
        serial = compute_level_histograms(zerosets, mrct)
        parallel = compute_level_histograms_parallel(
            zerosets, mrct, processes=2, split_level=1
        )
        _assert_identical(serial, parallel)

    @pytest.mark.parametrize("split_level", [0, 1, 3, 6])
    def test_any_split_level(self, split_level):
        zerosets, mrct = _stages(zipf_trace(300, 60, seed=1))
        serial = compute_level_histograms(zerosets, mrct)
        parallel = compute_level_histograms_parallel(
            zerosets, mrct, processes=2, split_level=split_level
        )
        _assert_identical(serial, parallel)

    def test_max_level_cap(self):
        zerosets, mrct = _stages(loop_nest_trace(16, 4))
        parallel = compute_level_histograms_parallel(
            zerosets, mrct, max_level=3, processes=2
        )
        assert sorted(parallel) == [0, 1, 2, 3]

    def test_single_process_runs_in_process(self):
        zerosets, mrct = _stages(random_trace(200, 40, seed=5))
        serial = compute_level_histograms(zerosets, mrct)
        parallel = compute_level_histograms_parallel(
            zerosets, mrct, processes=1
        )
        _assert_identical(serial, parallel)

    def test_empty_trace(self):
        zerosets, mrct = _stages(Trace([]))
        parallel = compute_level_histograms_parallel(
            zerosets, mrct, processes=2
        )
        assert all(h.counts == {} for h in parallel.values())


class TestValidation:
    def test_bad_process_count(self):
        zerosets, mrct = _stages(Trace([0, 1]))
        with pytest.raises(ValueError, match="processes"):
            compute_level_histograms_parallel(zerosets, mrct, processes=0)

    def test_bad_split_level(self):
        zerosets, mrct = _stages(Trace([0, 1]))
        with pytest.raises(ValueError, match="split_level"):
            compute_level_histograms_parallel(
                zerosets, mrct, split_level=-1
            )
