"""Unit tests for the parallel postlude (section 2.4 distribution note)."""

import pytest

from repro.core import engines, parallel
from repro.core.mrct import build_mrct
from repro.core.parallel import compute_level_histograms_parallel
from repro.core.postlude import compute_level_histograms
from repro.core.zerosets import build_zero_one_sets
from repro.trace.strip import strip_trace
from repro.trace.synthetic import loop_nest_trace, random_trace, zipf_trace
from repro.trace.trace import Trace


def _stages(trace):
    stripped = strip_trace(trace)
    return build_zero_one_sets(stripped), build_mrct(stripped)


def _assert_identical(serial, parallel):
    assert sorted(serial) == sorted(parallel)
    for level in serial:
        assert serial[level].counts == parallel[level].counts, level


class TestEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_serial_on_random_traces(self, seed):
        zerosets, mrct = _stages(random_trace(400, 70, seed=seed))
        serial = compute_level_histograms(zerosets, mrct)
        parallel = compute_level_histograms_parallel(
            zerosets, mrct, processes=2
        )
        _assert_identical(serial, parallel)

    def test_matches_on_paper_trace(self, paper_trace):
        zerosets, mrct = _stages(paper_trace)
        serial = compute_level_histograms(zerosets, mrct)
        parallel = compute_level_histograms_parallel(
            zerosets, mrct, processes=2, split_level=1
        )
        _assert_identical(serial, parallel)

    @pytest.mark.parametrize("split_level", [0, 1, 3, 6])
    def test_any_split_level(self, split_level):
        zerosets, mrct = _stages(zipf_trace(300, 60, seed=1))
        serial = compute_level_histograms(zerosets, mrct)
        parallel = compute_level_histograms_parallel(
            zerosets, mrct, processes=2, split_level=split_level
        )
        _assert_identical(serial, parallel)

    def test_max_level_cap(self):
        zerosets, mrct = _stages(loop_nest_trace(16, 4))
        parallel = compute_level_histograms_parallel(
            zerosets, mrct, max_level=3, processes=2
        )
        assert sorted(parallel) == [0, 1, 2, 3]

    def test_single_process_runs_in_process(self):
        zerosets, mrct = _stages(random_trace(200, 40, seed=5))
        serial = compute_level_histograms(zerosets, mrct)
        parallel = compute_level_histograms_parallel(
            zerosets, mrct, processes=1
        )
        _assert_identical(serial, parallel)

    def test_empty_trace(self):
        zerosets, mrct = _stages(Trace([]))
        parallel = compute_level_histograms_parallel(
            zerosets, mrct, processes=2
        )
        assert all(h.counts == {} for h in parallel.values())


class _RecordingPool:
    """Stand-in for multiprocessing.Pool that runs jobs in-process while
    capturing what would have been shipped to the workers."""

    captured = {}

    def __init__(self, processes=None, initializer=None, initargs=()):
        type(self).captured = {
            "processes": processes,
            "initargs": initargs,
            "jobs": None,
        }
        initializer(*initargs)

    def map(self, func, jobs):
        jobs = list(jobs)
        type(self).captured["jobs"] = jobs
        return [func(job) for job in jobs]

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        return None


class TestWorkerPayload:
    """Regression: workers must see the *real* MRCT (once, via the pool
    initializer), and jobs must be tiny (root, level) tuples — earlier
    versions shipped the full tables per job around a fake
    ``MRCT(n_unique=0)``."""

    @pytest.fixture
    def pool_run(self, monkeypatch):
        trace = zipf_trace(400, 60, seed=3)
        stripped = strip_trace(trace)
        zerosets = build_zero_one_sets(stripped)
        mrct = build_mrct(stripped)
        monkeypatch.setattr(parallel.multiprocessing, "Pool", _RecordingPool)
        monkeypatch.setattr(parallel, "_worker_state", None)
        histograms = compute_level_histograms_parallel(
            zerosets, mrct, processes=4, split_level=2
        )
        return stripped, zerosets, mrct, histograms, _RecordingPool.captured

    def test_initializer_ships_real_mrct(self, pool_run):
        stripped, _, mrct, _, captured = pool_run
        _, _, shipped_mrct, _ = captured["initargs"]
        assert shipped_mrct is mrct
        assert shipped_mrct.n_unique == stripped.n_unique > 0

    def test_initializer_ships_tables_once_not_per_job(self, pool_run):
        _, zerosets, _, _, captured = pool_run
        zero, one, _, limit = captured["initargs"]
        assert zero == zerosets.zero and one == zerosets.one
        assert limit == zerosets.address_bits
        for job in captured["jobs"]:
            assert isinstance(job, tuple) and len(job) == 2
            members, level = job
            assert isinstance(members, int) and isinstance(level, int)

    def test_pool_path_still_matches_serial(self, pool_run):
        _, zerosets, mrct, histograms, _ = pool_run
        _assert_identical(compute_level_histograms(zerosets, mrct), histograms)

    def test_in_process_path_restores_worker_state(self, monkeypatch):
        monkeypatch.setattr(parallel, "_worker_state", None)
        zerosets, mrct = _stages(random_trace(200, 40, seed=5))
        compute_level_histograms_parallel(zerosets, mrct, processes=1)
        assert parallel._worker_state is None

    def test_subtree_job_requires_initialized_worker(self, monkeypatch):
        monkeypatch.setattr(parallel, "_worker_state", None)
        with pytest.raises(RuntimeError, match="_init_worker"):
            parallel._subtree_histograms((0b11, 0))


class TestEngineDispatch:
    """The registry path: real worker processes and non-default splits."""

    @pytest.mark.parametrize("split_level", [1, 3])
    def test_registry_forwards_processes_and_split_level(self, split_level):
        trace = zipf_trace(500, 70, seed=6)
        inputs = engines.EngineInputs(trace)
        histograms = engines.compute_histograms(
            "parallel", inputs, processes=3, split_level=split_level
        )
        serial = engines.compute_histograms(
            "serial", engines.EngineInputs(trace)
        )
        _assert_identical(serial, histograms)

    def test_multiprocess_pool_round_trip(self):
        """processes > 1 with enough subtrees to actually use the pool."""
        zerosets, mrct = _stages(random_trace(600, 90, seed=7))
        serial = compute_level_histograms(zerosets, mrct)
        result = compute_level_histograms_parallel(
            zerosets, mrct, processes=3, split_level=3
        )
        _assert_identical(serial, result)


class TestValidation:
    def test_bad_process_count(self):
        zerosets, mrct = _stages(Trace([0, 1]))
        with pytest.raises(ValueError, match="processes"):
            compute_level_histograms_parallel(zerosets, mrct, processes=0)

    def test_bad_split_level(self):
        zerosets, mrct = _stages(Trace([0, 1]))
        with pytest.raises(ValueError, match="split_level"):
            compute_level_histograms_parallel(
                zerosets, mrct, split_level=-1
            )
