"""The ``max_level`` validation sweep: one error, everywhere.

Before this sweep, a negative ``max_level`` produced a different
failure in every corner of the pipeline — ``IndexError`` deep inside
the streaming kernel, ``KeyError: 0`` in the BCAT postlude, and worst
of all a silently *accepted* store key that could persist a poisoned
histogram artifact.  Every entry point now raises the same
``ValueError`` before any work (or any store write) happens.
"""

from __future__ import annotations

import pytest

from repro.core import engines
from repro.core.parallel import compute_level_histograms_parallel
from repro.core.postlude import compute_level_histograms as bcat_postlude
from repro.core.postlude import validate_max_level
from repro.core.streaming import (
    StreamingState,
    compute_level_histograms_streaming,
)
from repro.core.vectorized import numpy_available
from repro.store import ArtifactStore
from repro.stream import TraceSession, checkpoint_key
from repro.trace.trace import Trace

TRACE = Trace([1, 2, 3, 1, 2, 3, 7, 1, 9, 2, 3, 7], address_bits=4)

NEGATIVES = [-1, -7]

ENGINES = ("serial", "parallel", "streaming", "vectorized")


def _store_entry_count(store: ArtifactStore) -> int:
    import os

    root = str(store.root)
    return sum(len(files) for _, _, files in os.walk(root))


class TestValidator:
    @pytest.mark.parametrize("level", [None, 0, 1, 64])
    def test_accepts_none_and_non_negative_ints(self, level) -> None:
        assert validate_max_level(level) == level

    @pytest.mark.parametrize("level", NEGATIVES)
    def test_rejects_negatives(self, level) -> None:
        with pytest.raises(ValueError, match="max_level must be >= 0"):
            validate_max_level(level)

    @pytest.mark.parametrize("level", [True, False, 1.5, "2"])
    def test_rejects_non_integers(self, level) -> None:
        with pytest.raises(ValueError, match="must be an integer or None"):
            validate_max_level(level)


class TestEnginesRaiseUniformly:
    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("level", NEGATIVES)
    def test_registry_path(self, engine, level) -> None:
        inputs = engines.EngineInputs(TRACE)
        with pytest.raises(ValueError, match="max_level must be >= 0"):
            engines.compute_histograms(engine, inputs, max_level=level)

    @pytest.mark.parametrize("level", NEGATIVES)
    def test_streaming_direct(self, level) -> None:
        # Regression: this used to be an IndexError from the kernel.
        with pytest.raises(ValueError, match="max_level must be >= 0"):
            compute_level_histograms_streaming(TRACE, max_level=level)
        with pytest.raises(ValueError, match="max_level must be >= 0"):
            StreamingState(4, max_level=level)

    @pytest.mark.parametrize("level", NEGATIVES)
    def test_bcat_postlude_direct(self, level) -> None:
        # Regression: this used to be a KeyError: 0 from the postlude.
        inputs = engines.EngineInputs(TRACE)
        with pytest.raises(ValueError, match="max_level must be >= 0"):
            bcat_postlude(inputs.zerosets, inputs.mrct, max_level=level)

    @pytest.mark.parametrize("level", NEGATIVES)
    def test_parallel_direct(self, level) -> None:
        inputs = engines.EngineInputs(TRACE)
        with pytest.raises(ValueError, match="max_level must be >= 0"):
            compute_level_histograms_parallel(
                inputs.zerosets, inputs.mrct, max_level=level, processes=2
            )

    @pytest.mark.parametrize("level", NEGATIVES)
    def test_vectorized_direct(self, level) -> None:
        if not numpy_available():
            pytest.skip("NumPy not importable")
        from repro.core.vectorized import compute_level_histograms_vectorized

        inputs = engines.EngineInputs(TRACE)
        with pytest.raises(ValueError, match="max_level must be >= 0"):
            compute_level_histograms_vectorized(
                inputs.zerosets, inputs.mrct, max_level=level
            )

    @pytest.mark.parametrize("prelude", engines.PRELUDE_MODES)
    @pytest.mark.parametrize("level", NEGATIVES)
    def test_every_prelude_mode(self, prelude, level) -> None:
        inputs = engines.EngineInputs(TRACE, prelude=prelude)
        with pytest.raises(ValueError, match="max_level must be >= 0"):
            engines.compute_histograms("serial", inputs, max_level=level)

    @pytest.mark.parametrize("level", NEGATIVES)
    def test_session_layer(self, level) -> None:
        with pytest.raises(ValueError, match="max_level must be >= 0"):
            TraceSession(4, max_level=level)
        with pytest.raises(ValueError, match="max_level must be >= 0"):
            checkpoint_key("0" * 64, level)


class TestStoreKeyPathCannotBePoisoned:
    """A bad level must never become a legitimate-looking store key."""

    @pytest.mark.parametrize("level", NEGATIVES)
    def test_save_histograms_rejects_and_store_stays_empty(
        self, tmp_path, level
    ) -> None:
        store = ArtifactStore(tmp_path / "store")
        inputs = engines.EngineInputs(TRACE, store=store)
        histograms = engines.compute_histograms(
            "serial", engines.EngineInputs(TRACE)
        )
        with pytest.raises(ValueError, match="max_level must be >= 0"):
            inputs.save_histograms(histograms, level)
        assert _store_entry_count(store) == 0

    @pytest.mark.parametrize("level", NEGATIVES)
    def test_load_histograms_rejects_before_touching_the_store(
        self, tmp_path, level
    ) -> None:
        store = ArtifactStore(tmp_path / "store")
        inputs = engines.EngineInputs(TRACE, store=store)
        with pytest.raises(ValueError, match="max_level must be >= 0"):
            inputs.load_histograms(level)

    @pytest.mark.parametrize("level", NEGATIVES)
    def test_engine_compute_with_store_writes_nothing(
        self, tmp_path, level
    ) -> None:
        store = ArtifactStore(tmp_path / "store")
        inputs = engines.EngineInputs(TRACE, store=store)
        with pytest.raises(ValueError, match="max_level must be >= 0"):
            engines.compute_histograms("serial", inputs, max_level=level)
        assert _store_entry_count(store) == 0

    def test_level_key_spelling(self) -> None:
        assert engines.EngineInputs._histogram_level_key(None) == "full"
        assert engines.EngineInputs._histogram_level_key(3) == 3
        with pytest.raises(ValueError):
            engines.EngineInputs._histogram_level_key(-1)


class TestBoundedLevelsStillWork:
    """The sweep must not have broken the legal bounds."""

    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("level", [0, 1, 2, 99])
    def test_engines_agree_on_legal_bounds(self, engine, level) -> None:
        inputs = engines.EngineInputs(TRACE)
        reference = engines.compute_histograms(
            "serial", engines.EngineInputs(TRACE), max_level=level
        )
        result = engines.compute_histograms(engine, inputs, max_level=level)
        assert result == reference
