"""Unit tests for the AnalyticalCacheExplorer facade."""

import pytest

from repro.core.explorer import AnalyticalCacheExplorer, explore
from repro.trace.synthetic import loop_nest_trace, random_trace, zipf_trace
from repro.trace.trace import Trace


class TestConstruction:
    def test_max_depth_must_be_power_of_two(self):
        with pytest.raises(ValueError, match="power of two"):
            AnalyticalCacheExplorer(Trace([0, 1]), max_depth=3)

    def test_stages_are_cached(self):
        explorer = AnalyticalCacheExplorer(random_trace(100, 10, seed=0))
        assert explorer.stripped is explorer.stripped
        assert explorer.zerosets is explorer.zerosets
        assert explorer.mrct is explorer.mrct
        assert explorer.histograms is explorer.histograms
        assert explorer.statistics is explorer.statistics


class TestMisses:
    def test_exact_on_hand_example(self):
        # Thrash pair in one set of a depth-2 cache.
        explorer = AnalyticalCacheExplorer(Trace([0, 2, 0, 2], address_bits=3))
        assert explorer.misses(2, 1) == 2
        assert explorer.misses(2, 2) == 0

    def test_depth_must_be_power_of_two(self):
        explorer = AnalyticalCacheExplorer(Trace([0, 1]))
        with pytest.raises(ValueError, match="power of two"):
            explorer.misses(3, 1)

    def test_depths_beyond_bcat_are_conflict_free(self):
        explorer = AnalyticalCacheExplorer(Trace([0, 1, 0, 1]))
        assert explorer.misses(1 << 20, 1) == 0

    def test_loop_footprint_boundary(self):
        # Loop of 8 addresses: depth 8 direct-mapped holds it all.
        explorer = AnalyticalCacheExplorer(loop_nest_trace(8, 10))
        assert explorer.misses(8, 1) == 0
        assert explorer.misses(4, 1) > 0
        assert explorer.misses(4, 2) == 0


class TestExplore:
    def test_budget_always_met(self):
        explorer = AnalyticalCacheExplorer(zipf_trace(500, 60, seed=1))
        for budget in (0, 5, 25):
            result = explorer.explore(budget)
            assert all(m <= budget for m in result.misses)

    def test_minimality_of_associativity(self):
        """A-1 must violate the budget wherever A > 1 (minimality)."""
        explorer = AnalyticalCacheExplorer(zipf_trace(400, 50, seed=2))
        result = explorer.explore(3)
        for inst in result:
            if inst.associativity > 1:
                assert explorer.misses(inst.depth, inst.associativity - 1) > 3

    def test_explore_percent_uses_max_misses(self):
        trace = loop_nest_trace(16, 6)
        explorer = AnalyticalCacheExplorer(trace)
        from_percent = explorer.explore_percent(10)
        budget = explorer.statistics.budget(10)
        assert from_percent.budget == budget
        assert from_percent.as_dict() == explorer.explore(budget).as_dict()

    def test_explore_many_matches_individual_runs(self):
        explorer = AnalyticalCacheExplorer(random_trace(200, 30, seed=4))
        many = explorer.explore_many([0, 4])
        assert many[0].as_dict() == explorer.explore(0).as_dict()
        assert many[1].as_dict() == explorer.explore(4).as_dict()

    def test_report_extends_one_level_past_last_conflict(self):
        explorer = AnalyticalCacheExplorer(loop_nest_trace(8, 10))
        result = explorer.explore(0)
        depths = [inst.depth for inst in result]
        # Deepest conflicting level is depth 4; report reaches depth 8.
        assert depths[-1] == 8
        assert result.as_dict()[8] == 1

    def test_max_depth_override(self):
        explorer = AnalyticalCacheExplorer(loop_nest_trace(8, 10), max_depth=32)
        result = explorer.explore(0)
        assert [inst.depth for inst in result] == [2, 4, 8, 16, 32]

    def test_trace_name_propagates(self):
        trace = loop_nest_trace(4, 4)
        trace.name = "myloop"
        assert AnalyticalCacheExplorer(trace).explore(0).trace_name == "myloop"


class TestExplorationResult:
    def test_iteration_and_len(self):
        result = AnalyticalCacheExplorer(loop_nest_trace(4, 4)).explore(0)
        assert len(result) == len(list(result))

    def test_associativity_for_missing_depth_is_none(self):
        result = AnalyticalCacheExplorer(loop_nest_trace(4, 4)).explore(0)
        assert result.associativity_for(1 << 30) is None

    def test_smallest_prefers_fewest_words(self):
        result = AnalyticalCacheExplorer(zipf_trace(300, 40, seed=3)).explore(5)
        smallest = result.smallest()
        assert all(smallest.size_words <= i.size_words for i in result)


class TestModuleLevelHelper:
    def test_explore_function(self):
        result = explore(loop_nest_trace(8, 5), budget=0)
        assert result.as_dict()[8] == 1

    def test_explore_function_with_max_depth(self):
        result = explore(loop_nest_trace(8, 5), budget=0, max_depth=16)
        assert max(i.depth for i in result) == 16
