"""Unit tests for the explorer's selectable histogram engines."""

import pytest

from repro.core import engines
from repro.core.explorer import AnalyticalCacheExplorer
from repro.core.vectorized import numpy_available
from repro.trace.strip import strip_trace
from repro.trace.synthetic import loop_nest_trace, random_trace, zipf_trace


class TestEngineSelection:
    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown engine"):
            AnalyticalCacheExplorer(loop_nest_trace(4, 2), engine="magic")

    def test_bad_process_count_rejected(self):
        with pytest.raises(ValueError, match="processes"):
            AnalyticalCacheExplorer(
                loop_nest_trace(4, 2), engine="parallel", processes=0
            )

    @pytest.mark.parametrize("engine", AnalyticalCacheExplorer.ENGINES)
    def test_every_engine_accepted(self, engine):
        explorer = AnalyticalCacheExplorer(
            loop_nest_trace(8, 4), engine=engine
        )
        assert explorer.engine == engine


class TestOptionValidation:
    """Regression: unknown options used to be silently swallowed by
    ``**_`` in every runner — a typo'd ``proceses=8`` ran the default
    configuration without a whisper."""

    def test_typod_option_raises(self):
        inputs = engines.EngineInputs(loop_nest_trace(8, 4))
        with pytest.raises(ValueError, match="proceses"):
            engines.compute_histograms("parallel", inputs, proceses=8)

    def test_option_foreign_to_engine_raises(self):
        inputs = engines.EngineInputs(loop_nest_trace(8, 4))
        with pytest.raises(
            ValueError, match=r"engine 'serial'.*processes.*\(none\)"
        ):
            engines.compute_histograms("serial", inputs, processes=2)

    def test_error_names_accepted_options(self):
        spec = engines.get_engine("parallel")
        with pytest.raises(ValueError, match="processes, split_level"):
            spec.compute(engines.EngineInputs(loop_nest_trace(8, 4)), bogus=1)

    def test_declared_options_per_engine(self):
        assert engines.get_engine("parallel").options == (
            "processes",
            "split_level",
        )
        for name in ("serial", "streaming", "vectorized"):
            assert engines.get_engine(name).options == ()

    def test_filter_options_keeps_only_declared(self):
        shared = {"processes": 3, "split_level": 1}
        assert engines.get_engine("parallel").filter_options(shared) == shared
        assert engines.get_engine("serial").filter_options(shared) == {}
        assert engines.get_engine("parallel").accepts("processes")
        assert not engines.get_engine("serial").accepts("processes")


class TestAutoSelection:
    """Regression: ``choose_auto`` treated trace=None as "short trace"
    and always answered ``serial`` for injected prelude products."""

    @pytest.mark.skipif(not numpy_available(), reason="needs NumPy")
    def test_traceless_inputs_size_by_n_unique(self):
        big = strip_trace(random_trace(4 * engines.AUTO_MIN_UNIQUE,
                                       2 * engines.AUTO_MIN_UNIQUE, seed=0))
        assert big.n_unique >= engines.AUTO_MIN_UNIQUE
        assert engines.choose_auto(None, stripped=big) == "vectorized"

    def test_traceless_small_stripped_stays_serial(self):
        small = strip_trace(loop_nest_trace(16, 4))
        assert engines.choose_auto(None, stripped=small) == "serial"

    def test_nothing_known_stays_serial(self):
        assert engines.choose_auto(None) == "serial"

    @pytest.mark.skipif(not numpy_available(), reason="needs NumPy")
    def test_resolve_engine_uses_injected_stripped(self):
        trace = random_trace(4 * engines.AUTO_MIN_UNIQUE,
                             2 * engines.AUTO_MIN_UNIQUE, seed=0)
        stripped = strip_trace(trace)
        inputs = engines.EngineInputs(None, stripped=stripped)
        assert engines.resolve_engine("auto", inputs).name == "vectorized"

    def test_resolve_never_triggers_prelude(self):
        inputs = engines.EngineInputs(None)  # no trace, nothing injected
        engines.resolve_engine("auto", inputs)  # sizes by nothing: serial
        assert inputs.stripped_if_built is None


class TestEngineEquivalence:
    @pytest.mark.parametrize("seed", [0, 1])
    def test_identical_histograms_across_engines(self, seed):
        trace = zipf_trace(300, 60, seed=seed)
        reference = AnalyticalCacheExplorer(trace, engine="bitmask").histograms
        for engine in ("streaming", "parallel"):
            other = AnalyticalCacheExplorer(trace, engine=engine).histograms
            assert sorted(reference) == sorted(other)
            for level in reference:
                assert reference[level].counts == other[level].counts, (
                    engine,
                    level,
                )

    @pytest.mark.parametrize("engine", AnalyticalCacheExplorer.ENGINES)
    def test_identical_exploration_results(self, engine):
        trace = random_trace(250, 40, seed=3)
        reference = AnalyticalCacheExplorer(trace).explore(5)
        other = AnalyticalCacheExplorer(trace, engine=engine).explore(5)
        assert other.as_dict() == reference.as_dict()
        assert other.misses == reference.misses

    def test_max_depth_respected_by_all_engines(self):
        trace = random_trace(150, 30, seed=4)
        for engine in AnalyticalCacheExplorer.ENGINES:
            explorer = AnalyticalCacheExplorer(
                trace, max_depth=8, engine=engine
            )
            assert max(explorer.histograms) == 3
