"""Unit tests for the explorer's selectable histogram engines."""

import pytest

from repro.core.explorer import AnalyticalCacheExplorer
from repro.trace.synthetic import loop_nest_trace, random_trace, zipf_trace


class TestEngineSelection:
    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown engine"):
            AnalyticalCacheExplorer(loop_nest_trace(4, 2), engine="magic")

    def test_bad_process_count_rejected(self):
        with pytest.raises(ValueError, match="processes"):
            AnalyticalCacheExplorer(
                loop_nest_trace(4, 2), engine="parallel", processes=0
            )

    @pytest.mark.parametrize("engine", AnalyticalCacheExplorer.ENGINES)
    def test_every_engine_accepted(self, engine):
        explorer = AnalyticalCacheExplorer(
            loop_nest_trace(8, 4), engine=engine
        )
        assert explorer.engine == engine


class TestEngineEquivalence:
    @pytest.mark.parametrize("seed", [0, 1])
    def test_identical_histograms_across_engines(self, seed):
        trace = zipf_trace(300, 60, seed=seed)
        reference = AnalyticalCacheExplorer(trace, engine="bitmask").histograms
        for engine in ("streaming", "parallel"):
            other = AnalyticalCacheExplorer(trace, engine=engine).histograms
            assert sorted(reference) == sorted(other)
            for level in reference:
                assert reference[level].counts == other[level].counts, (
                    engine,
                    level,
                )

    @pytest.mark.parametrize("engine", AnalyticalCacheExplorer.ENGINES)
    def test_identical_exploration_results(self, engine):
        trace = random_trace(250, 40, seed=3)
        reference = AnalyticalCacheExplorer(trace).explore(5)
        other = AnalyticalCacheExplorer(trace, engine=engine).explore(5)
        assert other.as_dict() == reference.as_dict()
        assert other.misses == reference.misses

    def test_max_depth_respected_by_all_engines(self):
        trace = random_trace(150, 30, seed=4)
        for engine in AnalyticalCacheExplorer.ENGINES:
            explorer = AnalyticalCacheExplorer(
                trace, max_depth=8, engine=engine
            )
            assert max(explorer.histograms) == 3
