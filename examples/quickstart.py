#!/usr/bin/env python3
"""Quickstart: analytical cache exploration in a dozen lines.

Build a trace, pick a miss budget K, and get — without simulating a
single cache configuration — the minimum associativity for every cache
depth such that a D x A LRU cache misses at most K times beyond its
cold misses.

Run:  python examples/quickstart.py
"""

from repro.core import AnalyticalCacheExplorer
from repro.trace import loop_nest_trace

# A classic embedded pattern: a 96-word working set revisited 50 times.
trace = loop_nest_trace(footprint=96, iterations=50)
print(f"trace: {len(trace)} references, {trace.unique_count()} unique")

explorer = AnalyticalCacheExplorer(trace)

# The budget counts misses *beyond* the unavoidable cold misses.
for budget in (0, 100, 1000):
    result = explorer.explore(budget)
    pairs = ", ".join(
        f"(D={inst.depth}, A={inst.associativity})" for inst in result
    )
    print(f"K={budget:5d}: {pairs}")

# Every reported instance is guaranteed (and simulator-verified in the
# test suite) to achieve its predicted miss count exactly.
best = explorer.explore(100).smallest()
print(
    f"\nsmallest cache within K=100: depth {best.depth}, "
    f"{best.associativity}-way, {best.size_words} words total"
)
