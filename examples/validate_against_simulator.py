#!/usr/bin/env python3
"""Exactness demo: the analytical model vs the cache simulator.

For LRU caches with one-word lines the paper's analytical miss counts
are exact, not estimates.  This example sweeps a (depth, associativity)
grid on a real kernel trace and prints both numbers side by side — they
must be identical everywhere.

Run:  python examples/validate_against_simulator.py
"""

from repro.analysis.tables import format_table
from repro.cache import CacheConfig, simulate_trace
from repro.core import AnalyticalCacheExplorer
from repro.core.validation import validate_instances
from repro.workloads import run_workload_by_name

run = run_workload_by_name("engine", scale="small")
trace = run.data_trace
explorer = AnalyticalCacheExplorer(trace)

rows = []
mismatches = 0
for depth in (2, 8, 32, 128):
    for assoc in (1, 2, 4):
        analytical = explorer.misses(depth, assoc)
        simulated = simulate_trace(
            trace, CacheConfig(depth=depth, associativity=assoc)
        ).non_cold_misses
        ok = "yes" if analytical == simulated else "NO"
        mismatches += analytical != simulated
        rows.append([depth, assoc, analytical, simulated, ok])

print(
    format_table(
        ["Depth", "Assoc", "Analytical misses", "Simulated misses", "Equal"],
        rows,
        title=f"engine data trace ({len(trace)} references)",
    )
)
assert mismatches == 0, "the analytical model must be exact!"

# The bundled validator packages the same check for exploration outputs.
result = explorer.explore_percent(10)
records = validate_instances(trace, result)
print(
    f"\nexplore_percent(10): {len(records)} instances, "
    f"all exact: {all(r.exact for r in records)}, "
    f"all within budget: {all(r.within_budget for r in records)}"
)
