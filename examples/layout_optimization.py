#!/usr/bin/env python3
"""Closing the loop: conflict diagnosis driving data-layout optimization.

The analytical machinery knows more than miss *counts* — it knows which
cache rows the conflicts happen in and which addresses populate them.
This example builds a deliberately bad layout (two hot buffers whose
bases collide modulo the cache depth), asks the analyzer where the
misses come from, relocates one buffer accordingly, and re-analyzes:
the conflict misses vanish without growing the cache.

Run:  python examples/layout_optimization.py
"""

from repro.analysis.conflicts import conflict_report
from repro.analysis.tables import format_table
from repro.core import AnalyticalCacheExplorer
from repro.trace import Trace, remap_addresses

DEPTH = 64
ASSOC = 1

# A classic bad layout: two 32-word buffers exactly one cache-depth
# apart, streamed together (think: input and output of a filter).
BUF_A = 0x000
BUF_B = 0x400  # 0x400 % 64 == 0: every element collides with its twin

references = []
for _ in range(20):  # 20 passes over both buffers
    for i in range(32):
        references.append(BUF_A + i)
        references.append(BUF_B + i)
trace = Trace(references, name="bad-layout")

explorer = AnalyticalCacheExplorer(trace)
before = explorer.misses(DEPTH, ASSOC)
print(f"depth-{DEPTH} direct-mapped cache, original layout: {before} misses\n")

rows = conflict_report(explorer, DEPTH, ASSOC, top=5)
print(
    format_table(
        ["Row", "Misses", "Colliding addresses"],
        [
            [
                r.row_index,
                r.misses,
                ", ".join(f"{a:#06x}" for a in r.addresses),
            ]
            for r in rows
        ],
        title="top conflicting cache rows (analyzer diagnosis)",
    )
)

# The diagnosis says buffer B's elements collide with buffer A's.
# Relocate B by half the cache depth so the pairs land in disjoint rows.
relocation = {BUF_B + i: BUF_B + DEPTH // 2 + i for i in range(32)}
fixed = remap_addresses(trace, relocation, name="fixed-layout")

after = AnalyticalCacheExplorer(fixed).misses(DEPTH, ASSOC)
print(f"\nafter relocating buffer B by {DEPTH // 2} words: {after} misses")
print(f"misses eliminated: {before - after} (cache size unchanged)")

assert after < before
