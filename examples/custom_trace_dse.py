#!/usr/bin/env python3
"""Bring your own trace: file I/O, budget sweeps and Pareto filtering.

Writes a synthetic multi-stream trace to a dinero-format file (the
interchange format real trace collectors emit), reads it back, explores
a range of miss budgets, and Pareto-filters the (size, misses)
trade-off the way a designer would pick an operating point.

Run:  python examples/custom_trace_dse.py
"""

import tempfile
from pathlib import Path

from repro.analysis.tables import format_table
from repro.core import AnalyticalCacheExplorer
from repro.explore import pareto_instances
from repro.trace import (
    interleaved_trace,
    loop_nest_trace,
    read_trace,
    strided_trace,
    write_trace,
    zipf_trace,
)

# A realistic mixed workload: a hot loop, a streaming sweep, and a
# skewed table, interleaved as they would be by a real program.
trace = interleaved_trace(
    [
        loop_nest_trace(48, 40),                      # hot kernel loop
        strided_trace(1600, stride=2, start=0x1000),  # streaming buffer
        zipf_trace(1600, 96, exponent=1.2, seed=7),   # skewed table
    ],
    name="mixed-workload",
)

with tempfile.TemporaryDirectory() as tmp:
    path = Path(tmp) / "mixed.din"
    write_trace(trace, path)
    print(f"wrote {len(trace)} references to {path.name} (dinero format)")
    loaded = read_trace(path)

explorer = AnalyticalCacheExplorer(loaded)
stats = explorer.statistics
print(f"N={stats.n} N'={stats.n_unique} max_misses={stats.max_misses}\n")

rows = []
for percent in (2, 5, 10, 20):
    result = explorer.explore_percent(percent)
    frontier = pareto_instances(result)
    best = min(frontier, key=lambda inst: inst.size_words)
    rows.append(
        [
            f"{percent}%",
            result.budget,
            len(result),
            len(frontier),
            f"D={best.depth} A={best.associativity}",
            best.size_words,
        ]
    )

print(
    format_table(
        ["K", "Budget", "Instances", "Pareto", "Smallest", "Words"],
        rows,
        title="budget sweep with Pareto filtering",
    )
)
