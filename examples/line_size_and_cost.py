#!/usr/bin/env python3
"""Beyond the paper: line-size sweep and hardware-cost-aware selection.

The paper fixes the line size at one word and leaves line size and cost
models as future work (section 4).  This example exercises both
extensions on a real kernel trace:

1. sweep line sizes analytically (exact — a cache with L-word lines
   behaves like a one-word-line cache on the line-address trace);
2. attach CACTI-style area/energy/latency estimates to every
   budget-satisfying instance and pick operating points by cost.

Run:  python examples/line_size_and_cost.py
"""

from repro.analysis.tables import format_table
from repro.core import AnalyticalCacheExplorer, LineSizeExplorer
from repro.explore.selection import (
    cheapest,
    cost_exploration,
    cost_line_sweep,
    cost_pareto,
)
from repro.trace import compute_statistics
from repro.workloads import run_workload_by_name

run = run_workload_by_name("fir", scale="small")
trace = run.data_trace
budget = compute_statistics(trace).budget(10)
print(f"fir data trace: N={len(trace)}, miss budget K={budget}\n")

# --- 1. line-size sweep -----------------------------------------------------
sweep = LineSizeExplorer(trace, line_sizes=(1, 2, 4, 8)).explore(budget)
rows = []
for line_words in sweep.line_sizes():
    point = min(
        (li for li in sweep.instances if li.line_words == line_words),
        key=lambda li: li.size_words,
    )
    rows.append(
        [
            line_words,
            str(point.instance),
            point.size_words,
            point.total_misses,
            point.traffic_words,
        ]
    )
print(
    format_table(
        ["L (words)", "Smallest (D,A)", "Capacity", "Line fetches", "Traffic"],
        rows,
        title="line-size sweep: capacity shrinks, traffic per miss grows",
    )
)
print(f"least total capacity:   {sweep.smallest()}")
print(f"least memory traffic:   {sweep.least_traffic()}\n")

# --- 2. cost-aware selection ---------------------------------------------------
explorer = AnalyticalCacheExplorer(trace)
result = explorer.explore(budget)
costed = cost_exploration(explorer, result, address_bits=trace.address_bits)
front = cost_pareto(costed)

rows = [
    [
        str(c.instance),
        f"{c.estimate.area_bits:,.0f}",
        f"{c.run_energy:,.0f}",
        f"{c.estimate.access_time:.2f}",
        "front" if c in front else "",
    ]
    for c in costed
]
print(
    format_table(
        ["Instance", "Area (bits)", "Run energy", "Latency", "Pareto"],
        rows,
        title="CACTI-style costs of every budget-satisfying instance",
    )
)
print(f"\nenergy-optimal:  {cheapest(costed).instance}")
print(f"area-optimal:    {cheapest(costed, key=lambda c: c.estimate.area_bits).instance}")
print(f"latency-optimal: {cheapest(costed, key=lambda c: c.estimate.access_time).instance}")

# Costs compose with the line sweep too:
sweep_costed = cost_line_sweep(sweep, accesses=len(trace))
best = cheapest(sweep_costed)
print(
    f"\nenergy-optimal across line sizes: L={best.line_words}, "
    f"{best.instance} ({best.run_energy:,.0f} units)"
)
