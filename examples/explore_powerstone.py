#!/usr/bin/env python3
"""Reproduce a paper-style result table for PowerStone-like kernels.

Runs two of the benchmark kernels on the bundled RISC VM, collects their
instruction and data traces, and regenerates the paper's optimal-cache
tables (rows = miss budget K as a percentage of max misses, columns =
cache depth, entries = minimum associativity).

Run:  python examples/explore_powerstone.py
"""

from repro.analysis.tables import optimal_instances_table, trace_stats_table
from repro.core import AnalyticalCacheExplorer
from repro.trace import compute_statistics
from repro.workloads import run_workload_by_name

PERCENTS = (5, 10, 15, 20)

for name in ("crc", "ucbqsort"):
    run = run_workload_by_name(name, scale="small")
    print(f"=== {name}: {run.workload.description} ===")
    print(
        f"kernel verified against golden model "
        f"(checksum {run.checksum:#010x}), "
        f"{run.machine.instructions_executed} instructions executed\n"
    )

    for label, trace in (
        ("data", run.data_trace),
        ("instruction", run.instruction_trace),
    ):
        stats = compute_statistics(trace, name=f"{name}.{label}")
        print(trace_stats_table([stats], title=f"{label} trace statistics"))

        explorer = AnalyticalCacheExplorer(trace)
        results = {p: explorer.explore_percent(p) for p in PERCENTS}
        print()
        print(
            optimal_instances_table(
                results,
                title=f"optimal {label}-cache instances for {name}",
            )
        )
        print()
