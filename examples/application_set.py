#!/usr/bin/env python3
"""One cache for a whole application set.

An embedded device runs several fixed applications; the paper's
introduction motivates tuning the cache "to the application set of
these systems".  This example sizes a single data cache for three
kernels at once, under both composition rules:

* ``sum``  — bound the combined misses (weighted by how often each
  application runs);
* ``each`` — bound every application's misses individually.

Run:  python examples/application_set.py
"""

from repro.analysis.tables import format_table
from repro.core import AnalyticalCacheExplorer
from repro.core.multi import MultiTraceExplorer
from repro.trace import compute_statistics
from repro.workloads import run_workload_by_name

NAMES = ("crc", "engine", "qurt")

traces = []
for name in NAMES:
    run = run_workload_by_name(name, scale="small")
    traces.append(run.data_trace)
    stats = compute_statistics(run.data_trace)
    print(
        f"{name:8s} N={stats.n:5d}  N'={stats.n_unique:5d}  "
        f"max misses={stats.max_misses}"
    )

total_max = sum(compute_statistics(t).max_misses for t in traces)
budget = total_max // 10
print(f"\ncombined budget (sum mode): K = {budget}\n")

# crc runs 3x as often as the others: weight its misses accordingly.
explorer = MultiTraceExplorer(traces, weights=[3, 1, 1])
sum_result = explorer.explore_sum(budget)
each_result = explorer.explore_each(budget // len(traces))

depths = sorted(set(sum_result.as_dict()) & set(each_result.as_dict()))
rows = []
for depth in depths:
    per_app = [
        each_result.misses_by_trace[t.name][
            [i.depth for i in each_result.instances].index(depth)
        ]
        for t in traces
    ]
    rows.append(
        [
            depth,
            sum_result.as_dict()[depth],
            each_result.as_dict()[depth],
            "/".join(str(m) for m in per_app),
        ]
    )

print(
    format_table(
        ["Depth", "A (weighted sum)", "A (each)", "misses per app (each)"],
        rows,
        title="application-set cache sizing",
    )
)

# Sanity: the per-application view agrees with standalone exploration.
solo = AnalyticalCacheExplorer(traces[0]).explore(budget // len(traces))
print(
    f"\nstandalone {traces[0].name} would need "
    f"A={solo.as_dict().get(depths[0])} at depth {depths[0]}; "
    f"the set needs A={each_result.as_dict()[depths[0]]} (the max across apps)."
)
