#!/usr/bin/env python3
"""Sizing an L2 behind a fixed L1 — one simulation, every answer.

A traditional flow simulates the whole two-level hierarchy once per L2
candidate.  With the analytical method the L1 is simulated exactly once
(producing its miss stream) and the algorithm then answers every L2
(depth, associativity) question from one pass over that stream.  This
example sizes an L2 for a unified instruction+data trace and
cross-checks a few points against the composed two-level simulator.

Run:  python examples/two_level_hierarchy.py
"""

from repro.analysis.tables import format_table
from repro.cache import CacheConfig, simulate_two_level
from repro.explore import HierarchyExplorer
from repro.trace import compute_statistics
from repro.workloads import run_workload_by_name

run = run_workload_by_name("des", scale="small")
trace = run.unified_trace
l1_config = CacheConfig(depth=32, associativity=1)

explorer = HierarchyExplorer(trace, l1_config)
print(
    f"des unified trace: {len(trace)} accesses; "
    f"L1 ({l1_config.describe()}) misses "
    f"{explorer.l1_result.misses} ({explorer.l1_result.miss_rate:.1%})\n"
)

budget = compute_statistics(explorer.miss_trace).budget(10)
outcome = explorer.explore(budget)

rows = []
for instance, misses in zip(
    outcome.l2_result.instances, outcome.l2_result.misses
):
    rows.append(
        [
            instance.depth,
            instance.associativity,
            misses,
            outcome.memory_accesses(instance),
        ]
    )
print(
    format_table(
        ["L2 depth", "L2 assoc", "L2 non-cold misses", "Memory accesses"],
        rows,
        title=f"optimal L2 instances at K={budget} (from ONE L1 simulation)",
    )
)

# Cross-check three points against the composed two-level simulator.
print("\ncross-check vs composed L1+L2 simulation:")
for instance in outcome.l2_result.instances[:3]:
    composed = simulate_two_level(trace, l1_config, instance.to_config())
    predicted = outcome.l2_result.misses[
        [i.depth for i in outcome.l2_result.instances].index(instance.depth)
    ]
    match = "ok" if composed.l2.non_cold_misses == predicted else "MISMATCH"
    print(
        f"  {instance}: analytical {predicted}, "
        f"composed simulation {composed.l2.non_cold_misses}  [{match}]  "
        f"AMAT={composed.amat:.2f}"
    )
    assert composed.l2.non_cold_misses == predicted
