#!/usr/bin/env python3
"""The paper's Figure 1, quantified: analytical DSE vs simulate-and-tune.

Runs the traditional approaches — exhaustive sweep of the whole design
space and the iterative design-simulate-analyze loop — against the
analytical algorithm on the same trace and budget, verifies they agree
on every answer, and reports what each one cost.

Run:  python examples/traditional_vs_analytical.py
"""

from repro.analysis.tables import format_table
from repro.explore import DesignSpace, compare_methods
from repro.trace import compute_statistics
from repro.workloads import run_workload_by_name

run = run_workload_by_name("fir", scale="small")
trace = run.data_trace
budget = compute_statistics(trace).budget(10)
space = DesignSpace(min_depth=2, max_depth=256, max_associativity=8)

print(
    f"fir data trace: {len(trace)} references, budget K={budget}, "
    f"design space: {len(space)} configurations\n"
)

comparison = compare_methods(trace, budget, space)
assert comparison.agreement(), comparison.disagreements()

rows = [
    ["analytical (Fig 1b)", 0, f"{comparison.analytical_seconds:.4f}", "-"],
    [
        "exhaustive sweep",
        comparison.exhaustive.simulations,
        f"{comparison.exhaustive.elapsed_seconds:.4f}",
        f"{comparison.speedup_vs_exhaustive:.1f}x slower",
    ],
    [
        "iterative loop (Fig 1a)",
        comparison.heuristic.simulations,
        f"{comparison.heuristic.elapsed_seconds:.4f}",
        f"{comparison.speedup_vs_heuristic:.1f}x slower",
    ],
]
print(
    format_table(
        ["Method", "Simulations", "Seconds", "vs analytical"],
        rows,
        title="all three methods computed identical (D, A) answers",
    )
)

print("\nper-depth minimum associativity (agreed by all methods):")
for inst, misses in zip(
    comparison.analytical.instances, comparison.analytical.misses
):
    print(f"  depth {inst.depth:4d}: {inst.associativity}-way  ({misses} misses)")
