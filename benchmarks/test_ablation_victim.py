"""Extension bench: victim buffers vs associativity.

The group's follow-up work puts a small victim buffer behind an
application-specific cache.  This bench measures when that trades well
against adding ways, and when it does not:

* on the kernel data traces, conflicts are *spread* across many sets,
  so a handful of victim entries recovers only part of the 1-way → 2-way
  gap — the buffer is shared by every set;
* on a concentrated-conflict workload (three hot lines rotating through
  ONE set), 2 victim entries eliminate every non-cold miss while even a
  2-way cache still thrashes (LRU on a 3-cycle misses always) — the
  victim buffer wins *outright*, not just per word.

Both regimes are asserted; the table reports the measured middle.
"""

from repro.analysis.tables import format_table
from repro.cache.config import CacheConfig
from repro.cache.simulator import simulate_trace
from repro.cache.victim import simulate_victim
from repro.trace.trace import Trace

from conftest import emit

KERNELS = ("crc", "engine", "ucbqsort")
DEPTH = 64
ENTRY_GRID = (1, 4, 16)


def _concentrated_trace() -> Trace:
    """Three lines rotating through set 0 of the depth-DEPTH cache."""
    rotation = [0, DEPTH, 2 * DEPTH]
    return Trace(rotation * 40, name="concentrated")


def test_victim_buffer_vs_associativity(benchmark, runs, results_dir):
    dm = CacheConfig(depth=DEPTH, associativity=1)
    two_way = CacheConfig(depth=DEPTH, associativity=2)

    def sweep_all():
        out = {}
        for name in KERNELS:
            trace = runs[name].data_trace
            base = simulate_trace(trace, dm).non_cold_misses
            target = simulate_trace(trace, two_way).non_cold_misses
            buffered = {
                entries: simulate_victim(trace, dm, entries).non_cold_misses
                for entries in ENTRY_GRID
            }
            out[name] = (base, target, buffered)
        return out

    outcomes = benchmark(sweep_all)

    rows = []
    for name, (base, target, buffered) in outcomes.items():
        rows.append(
            [name, base, target]
            + [buffered[entries] for entries in ENTRY_GRID]
        )
        # Monotone improvement, never beats... the buffer can actually
        # beat 2-way (it is shared and fully associative), so only the
        # monotonicity and no-worse-than-plain facts are invariant.
        counts = [buffered[entries] for entries in ENTRY_GRID]
        assert counts == sorted(counts, reverse=True), name
        assert all(c <= base for c in counts), name

    # The concentrated regime: a tiny buffer replaces doubling the cache.
    trace = _concentrated_trace()
    base = simulate_trace(trace, dm).non_cold_misses
    target = simulate_trace(trace, two_way).non_cold_misses
    buffered = [
        simulate_victim(trace, dm, entries).non_cold_misses
        for entries in ENTRY_GRID
    ]
    assert base > 0
    assert target > 0, "2-way LRU still thrashes on the 3-cycle"
    assert all(count == 0 for count in buffered[1:]), (
        "2 victim entries must absorb the single-set 3-line rotation"
    )
    rows.append(["concentrated", base, target, *buffered])

    table = format_table(
        ["Trace", f"DM D={DEPTH}", "2-way"]
        + [f"DM+{e} victim" for e in ENTRY_GRID],
        rows,
        title=(
            "Extension: non-cold misses — victim entries vs doubling ways "
            "(spread vs concentrated conflicts)"
        ),
    )
    emit(results_dir, "ablation_victim", table)
