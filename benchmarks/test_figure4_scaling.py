"""Paper Figure 4: execution time vs N * N' is on average linear.

Two point sets are measured and fit:

* all 24 workload traces (12 data + 12 instruction), like the paper — a
  noisy cloud whose *trend* is linear ("it is easy to see that the time
  complexity of the algorithm is on the average linear", section 3);
* a controlled synthetic sweep (loop traces with footprint x iteration
  grids) where N and N' vary independently — this isolates the scaling
  law from per-trace structure and must fit tightly.

Assertions: positive slope on the workload cloud, positive rank
correlation between N*N' and runtime, and a tight linear fit on the
controlled sweep.
"""

from repro.analysis.runtime import fit_scaling, measure_runtime
from repro.analysis.tables import format_table
from repro.trace.synthetic import loop_nest_trace
from repro.workloads import WORKLOAD_NAMES

from conftest import emit


def _rank_correlation(xs, ys):
    """Spearman rank correlation (no ties expected in practice)."""
    def ranks(values):
        order = sorted(range(len(values)), key=lambda i: values[i])
        out = [0] * len(values)
        for rank, idx in enumerate(order):
            out[idx] = rank
        return out

    rx, ry = ranks(xs), ranks(ys)
    n = len(xs)
    d2 = sum((a - b) ** 2 for a, b in zip(rx, ry))
    return 1 - 6 * d2 / (n * (n * n - 1))


def test_figure4_runtime_scales_linearly_with_work_product(
    benchmark, runs, results_dir
):
    traces = []
    for name in WORKLOAD_NAMES:
        traces.append(runs[name].data_trace)
        traces.append(runs[name].instruction_trace)

    def measure_all():
        return [measure_runtime(trace, budgets=(0,)) for trace in traces]

    measurements = benchmark.pedantic(measure_all, rounds=1, iterations=1)
    fit = fit_scaling(measurements)

    # Controlled sweep: same generator, geometric N*N' ladder.
    sweep = []
    for footprint, iterations in (
        (64, 20), (128, 40), (256, 40), (256, 80), (512, 80), (512, 160),
    ):
        trace = loop_nest_trace(footprint, iterations)
        trace.name = f"loop-{footprint}x{iterations}"
        sweep.append(measure_runtime(trace, budgets=(0,), repeats=2))
    sweep_fit = fit_scaling(sweep)

    rows = [
        [m.name, m.n, m.n_unique, m.work_product, f"{m.seconds:.4f}"]
        for m in sorted(measurements, key=lambda m: m.work_product)
    ]
    rows.append(["(workload fit)", "-", "-", "-",
                 f"slope={fit.slope:.3e} r^2={fit.r_squared:.3f}"])
    for m in sweep:
        rows.append([m.name, m.n, m.n_unique, m.work_product, f"{m.seconds:.4f}"])
    rows.append(["(sweep fit)", "-", "-", "-",
                 f"slope={sweep_fit.slope:.3e} r^2={sweep_fit.r_squared:.3f}"])
    table = format_table(
        ["Trace", "N", "N'", "N*N'", "Seconds"],
        rows,
        title="Figure 4: execution time vs N*N' (points + least-squares fits)",
    )
    emit(results_dir, "figure4_scaling", table)

    assert fit.slope > 0, "runtime must grow with N*N'"
    spearman = _rank_correlation(
        [m.work_product for m in measurements],
        [m.seconds for m in measurements],
    )
    assert spearman > 0.5, f"expected a monotone trend, got rho={spearman:.3f}"
    assert sweep_fit.slope > 0
    assert sweep_fit.r_squared > 0.8, (
        f"controlled sweep should be near-linear, got r^2={sweep_fit.r_squared:.3f}"
    )
