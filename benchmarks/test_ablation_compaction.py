"""Related-work bench ([14][15]): trace stripping before exploration.

Filters each trace through a small direct-mapped cache (Puzak
stripping); the compacted trace provably reproduces every miss count at
depths >= the filter depth.  Reported: reduction ratio and the
analytical algorithm's runtime on full vs compacted traces, with the
answers asserted identical on the valid depth range.
"""

import time

from repro.analysis.tables import format_table
from repro.core.explorer import AnalyticalCacheExplorer
from repro.trace.compaction import compact_trace
from repro.trace.stats import compute_statistics
from repro.workloads import WORKLOAD_NAMES

from conftest import emit

FILTER_DEPTH = 4


def test_compaction_speeds_up_exploration(benchmark, runs, results_dir):
    traces = [runs[name].instruction_trace for name in WORKLOAD_NAMES]

    def compact_all():
        return [compact_trace(trace, FILTER_DEPTH) for trace in traces]

    compacted = benchmark(compact_all)

    rows = []
    for trace, comp in zip(traces, compacted):
        budget = compute_statistics(trace).budget(10)

        start = time.perf_counter()
        full = AnalyticalCacheExplorer(trace).explore(budget)
        full_seconds = time.perf_counter() - start

        start = time.perf_counter()
        short = AnalyticalCacheExplorer(comp.trace).explore(budget)
        short_seconds = time.perf_counter() - start

        # Exact preservation on the valid range (depth >= filter depth).
        short_map = short.as_dict()
        for depth, assoc in full.as_dict().items():
            if depth >= FILTER_DEPTH and depth in short_map:
                assert short_map[depth] == assoc, (trace.name, depth)

        speedup = full_seconds / short_seconds if short_seconds > 0 else 1.0
        rows.append(
            [
                trace.name,
                comp.stats.original_length,
                comp.stats.compacted_length,
                f"{comp.stats.reduction:.1%}",
                f"{full_seconds:.4f}",
                f"{short_seconds:.4f}",
                f"{speedup:.1f}x",
            ]
        )

    table = format_table(
        ["Trace", "N", "N stripped", "Removed", "Full s", "Stripped s", "Speedup"],
        rows,
        title=(
            f"Related work [14][15]: Puzak stripping (filter depth "
            f"{FILTER_DEPTH}; answers identical for D >= {FILTER_DEPTH})"
        ),
    )
    emit(results_dir, "ablation_compaction", table)
