"""Paper Table 31: algorithm run time on the data traces.

Absolute numbers differ from the paper's (their C implementation on a
1 GHz Pentium III vs pure Python here, on scaled-down traces); the
reproduced property is per-benchmark runtimes that track N * N', which
Figure 4's bench then fits.
"""

from repro.analysis.runtime import measure_runtime
from repro.analysis.tables import runtime_table
from repro.trace.stats import compute_statistics
from repro.workloads import WORKLOAD_NAMES

from conftest import PERCENTS, emit


def test_table31_runtime_data_traces(benchmark, runs, results_dir):
    traces = {name: runs[name].data_trace for name in WORKLOAD_NAMES}
    budgets = {
        name: [compute_statistics(t).budget(p) for p in PERCENTS]
        for name, t in traces.items()
    }

    def measure_all():
        return {
            name: measure_runtime(trace, budgets=budgets[name])
            for name, trace in traces.items()
        }

    measurements = benchmark.pedantic(measure_all, rounds=1, iterations=1)
    table = runtime_table(
        {name: m.seconds for name, m in measurements.items()},
        title="Table 31: Algorithm run time, data traces (this machine)",
    )
    emit(results_dir, "table31_runtime_data", table)
    assert all(m.seconds > 0 for m in measurements.values())
