"""Paper Tables 7-18: optimal data-cache instances per benchmark.

For each kernel's data trace, the analytical algorithm computes the
minimum associativity at every depth for K in {5, 10, 15, 20}% of the
trace's max miss count — one table per kernel, exactly the paper's
layout (rows = K, columns = depth, entries = A).

The benchmarked quantity is a complete exploration (prelude + postlude +
all four budgets) on a fresh explorer, matching how the paper reports a
per-benchmark runtime.
"""

import pytest

from repro.analysis.tables import optimal_instances_table
from repro.core.explorer import AnalyticalCacheExplorer
from repro.workloads import WORKLOAD_NAMES

from conftest import PERCENTS, emit

TABLE_NUMBERS = {name: 7 + i for i, name in enumerate(WORKLOAD_NAMES)}


@pytest.mark.parametrize("name", WORKLOAD_NAMES)
def test_optimal_data_cache_instances(benchmark, runs, results_dir, name):
    trace = runs[name].data_trace

    def explore_all():
        explorer = AnalyticalCacheExplorer(trace)
        return explorer, {p: explorer.explore_percent(p) for p in PERCENTS}

    explorer, results = benchmark(explore_all)

    number = TABLE_NUMBERS[name]
    table = optimal_instances_table(
        results,
        title=f"Table {number}: Optimal data cache instances for {name}",
    )
    emit(results_dir, f"table{number:02d}_data_{name}", table)

    # Paper-shape assertions: every budget met, looser budgets never need
    # more ways, and associativity shrinks (weakly) as depth grows.
    for percent, result in results.items():
        budget = explorer.statistics.budget(percent)
        assert all(m <= budget for m in result.misses)
        assocs = [inst.associativity for inst in result]
        assert assocs == sorted(assocs, reverse=True)
    for depth in results[PERCENTS[0]].as_dict():
        per_budget = [results[p].as_dict()[depth] for p in PERCENTS]
        assert per_budget == sorted(per_budget, reverse=True)
