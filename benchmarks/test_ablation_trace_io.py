"""Infrastructure ablation: trace file format costs.

Long traces dominate the disk footprint of a trace-driven methodology;
this bench measures write/read time and file size for every supported
format (text, dinero, CSV, binary, binary+gzip) on one long kernel-like
trace, asserting lossless roundtrips throughout.
"""

import os
import time

from repro.analysis.tables import format_table
from repro.trace.io import read_trace, write_trace
from repro.trace.synthetic import markov_trace

from conftest import emit

FORMATS = (".trace", ".din", ".csv", ".rbt", ".rbt.gz")


def test_trace_format_costs(benchmark, results_dir, tmp_path_factory):
    tmp_path = tmp_path_factory.mktemp("io_bench")
    trace = markov_trace(60_000, 4000, locality=0.9, seed=7)

    def roundtrip_binary():
        path = tmp_path / "bench.rbt"
        write_trace(trace, path)
        return read_trace(path)

    loaded = benchmark(roundtrip_binary)
    assert list(loaded) == list(trace)

    rows = []
    for suffix in FORMATS:
        path = tmp_path / f"t{suffix}"
        start = time.perf_counter()
        write_trace(trace, path)
        write_seconds = time.perf_counter() - start
        start = time.perf_counter()
        read_back = read_trace(path, address_bits=trace.address_bits)
        read_seconds = time.perf_counter() - start
        assert list(read_back) == list(trace), suffix
        rows.append(
            [
                suffix,
                os.path.getsize(path),
                f"{write_seconds:.3f}",
                f"{read_seconds:.3f}",
            ]
        )

    table = format_table(
        ["Format", "Bytes", "Write s", "Read s"],
        rows,
        title=f"Trace I/O formats on a {len(trace)}-reference trace (lossless)",
    )
    emit(results_dir, "ablation_trace_io", table)
