"""Extension bench (paper §4 future work): cache management policies.

The analytical model assumes LRU, which the paper calls "the most
common and often optimal" choice.  This bench measures how the
LRU-derived optimal instances behave under FIFO, PLRU and random
replacement: per kernel, how many instances stay within the budget and
the worst relative miss inflation.
"""

from repro.analysis.tables import format_table
from repro.cache.config import ReplacementKind
from repro.core.explorer import AnalyticalCacheExplorer
from repro.explore.policies import policy_robustness

from conftest import emit

KERNELS = ("crc", "engine", "ucbqsort", "compress")
PERCENT = 10


def test_policy_robustness_of_lru_instances(benchmark, runs, results_dir):
    def analyze_all():
        out = {}
        for name in KERNELS:
            trace = runs[name].data_trace
            explorer = AnalyticalCacheExplorer(trace)
            result = explorer.explore_percent(PERCENT)
            out[name] = (result, policy_robustness(trace, result))
        return out

    analyses = benchmark.pedantic(analyze_all, rounds=1, iterations=1)

    rows = []
    for name, (result, records) in analyses.items():
        for policy in (
            ReplacementKind.FIFO,
            ReplacementKind.PLRU,
            ReplacementKind.RANDOM,
        ):
            applicable = [
                r for r in records if r.outcomes[policy].applicable
            ]
            held = sum(1 for r in applicable if r.within_budget(policy))
            worst_ratio = 0.0
            for record in applicable:
                misses = record.outcomes[policy].non_cold_misses
                baseline = max(record.lru_misses, 1)
                worst_ratio = max(worst_ratio, misses / baseline)
            rows.append(
                [
                    name,
                    policy.value,
                    f"{held}/{len(applicable)}",
                    f"{worst_ratio:.2f}x",
                ]
            )
        # PLRU with power-of-two ways never does worse than 2x LRU on
        # these traces; direct-mapped instances are policy-invariant.
        for record in records:
            if record.instance.associativity == 1:
                for outcome in record.outcomes.values():
                    if outcome.applicable:
                        assert outcome.non_cold_misses == record.lru_misses

    table = format_table(
        ["Kernel", "Policy", "Budget held", "Worst misses vs LRU"],
        rows,
        title=(
            f"Extension: LRU-derived instances under other policies "
            f"(K = {PERCENT}% of max misses)"
        ),
    )
    emit(results_dir, "ablation_policies", table)
