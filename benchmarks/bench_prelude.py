"""Benchmark harness for the prelude pipelines (python vs fast kernels).

Times the cold end-to-end pipeline — strip, zero/one sets, conflict
table, postlude — twice per trace: once with the paper-faithful python
builders feeding the bigint vectorized postlude (the pre-fast-prelude
baseline), and once with the fast NumPy kernels feeding the fused packed
postlude (``repro.core.prelude_fast``).  Cross-checks that both
pipelines produce bit-identical histograms against the serial reference
engine, and writes a machine-readable ``BENCH_prelude.json``.

Run it from the repo root::

    PYTHONPATH=src python benchmarks/bench_prelude.py
    PYTHONPATH=src python benchmarks/bench_prelude.py --quick  # CI smoke
    PYTHONPATH=src python benchmarks/bench_prelude.py --quick --assert-speedup 2

Without NumPy only the python pipeline is timed (and ``--assert-speedup``
refuses to run): the fast pipeline's packed bit-matrix is NumPy-native.

JSON schema (``validate_results`` enforces it)::

    {
      "schema": "repro-bench-prelude/1",
      "python": str, "numpy": str | null, "platform": str,
      "repeats": int,
      "results": [
        {"pipeline": "python" | "fast",
         "trace": str,       # trace name
         "N": int,           # trace length
         "N_prime": int,     # unique addresses (the paper's N')
         "strip_s": float,   # stage wall times from the best total run
         "zerosets_s": float,
         "mrct_s": float,    # build_mrct or build_packed_mrct
         "postlude_s": float,
         "total_s": float,   # sum of the four stages, best of repeats
         "match": bool}      # histograms bit-identical to the serial engine
      ],
      "summary": {
        "target_trace": str,           # the ISSUE's headline trace
        "speedups": {trace: float}     # python total / fast total
      }
    }
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.postlude import compute_level_histograms
from repro.core.prelude_fast import build_packed_mrct
from repro.core.mrct import build_mrct
from repro.core.vectorized import (
    compute_level_histograms_packed,
    compute_level_histograms_vectorized,
    numpy_available,
)
from repro.core.zerosets import build_zero_one_sets, build_zero_one_sets_numpy
from repro.obs import environment_info
from repro.trace.strip import strip_trace, strip_trace_numpy
from repro.trace.synthetic import loop_nest_trace, zipf_trace
from repro.trace.trace import Trace

SCHEMA = "repro-bench-prelude/1"

#: Required result-row fields and their types.
RESULT_FIELDS = {
    "pipeline": str,
    "trace": str,
    "N": int,
    "N_prime": int,
    "strip_s": float,
    "zerosets_s": float,
    "mrct_s": float,
    "postlude_s": float,
    "total_s": float,
    "match": bool,
}

#: Stage timing keys, in pipeline order.
STAGES = ("strip_s", "zerosets_s", "mrct_s", "postlude_s")


def synthetic_panel(quick: bool = False) -> List[Trace]:
    """The ISSUE's two headline traces (tiny stand-ins under ``--quick``)."""
    def named(trace: Trace, name: str) -> Trace:
        trace.name = name
        return trace

    if quick:
        return [
            named(loop_nest_trace(256, 30), "loop-256x30"),
            named(zipf_trace(4000, 300, seed=1), "zipf-4000-300"),
        ]
    return [
        named(loop_nest_trace(1024, 100), "loop-1024x100"),
        named(zipf_trace(100_000, 800, seed=1), "zipf-100000-800"),
    ]


def _run_python_pipeline(trace: Trace) -> Tuple[Dict[str, float], Dict]:
    """One cold python-prelude run: stage wall times and the histograms.

    The postlude is the bigint vectorized engine when NumPy is available
    (the strongest pre-fast-prelude configuration, per BENCH_postlude),
    else the serial reference.
    """
    times: Dict[str, float] = {}
    start = time.perf_counter()
    stripped = strip_trace(trace)
    times["strip_s"] = time.perf_counter() - start
    start = time.perf_counter()
    zerosets = build_zero_one_sets(stripped)
    times["zerosets_s"] = time.perf_counter() - start
    start = time.perf_counter()
    mrct = build_mrct(stripped)
    times["mrct_s"] = time.perf_counter() - start
    start = time.perf_counter()
    if numpy_available():
        histograms = compute_level_histograms_vectorized(zerosets, mrct)
    else:
        histograms = compute_level_histograms(zerosets, mrct)
    times["postlude_s"] = time.perf_counter() - start
    return times, histograms


def _run_fast_pipeline(trace: Trace) -> Tuple[Dict[str, float], Dict]:
    """One cold fast-prelude run: NumPy kernels fused into the packed postlude."""
    times: Dict[str, float] = {}
    start = time.perf_counter()
    stripped = strip_trace_numpy(trace)
    times["strip_s"] = time.perf_counter() - start
    start = time.perf_counter()
    zerosets = build_zero_one_sets_numpy(stripped)
    times["zerosets_s"] = time.perf_counter() - start
    start = time.perf_counter()
    packed = build_packed_mrct(stripped)
    times["mrct_s"] = time.perf_counter() - start
    start = time.perf_counter()
    histograms = compute_level_histograms_packed(zerosets, packed)
    times["postlude_s"] = time.perf_counter() - start
    return times, histograms


def _best_of(
    runner: Callable[[Trace], Tuple[Dict[str, float], Dict]],
    trace: Trace,
    repeats: int,
) -> Tuple[Dict[str, float], Dict]:
    """Stage times from the repeat with the smallest total, plus histograms."""
    best_times: Optional[Dict[str, float]] = None
    histograms = None
    for _ in range(max(1, repeats)):
        times, histograms = runner(trace)
        if best_times is None or sum(times.values()) < sum(best_times.values()):
            best_times = times
    assert best_times is not None
    return best_times, histograms


def run_bench(
    traces: Sequence[Trace],
    repeats: int = 2,
    target_trace: Optional[str] = None,
) -> Dict:
    """Time both pipelines on each trace and return the result document."""
    pipelines: List[Tuple[str, Callable]] = [("python", _run_python_pipeline)]
    if numpy_available():
        pipelines.append(("fast", _run_fast_pipeline))
    else:
        print(
            "  [skip] fast pipeline (NumPy not importable)", file=sys.stderr
        )
    results: List[Dict] = []
    totals: Dict[Tuple[str, str], float] = {}
    for trace in traces:
        stripped = strip_trace(trace)
        reference = compute_level_histograms(
            build_zero_one_sets(stripped), build_mrct(stripped)
        )
        for name, runner in pipelines:
            times, histograms = _best_of(runner, trace, repeats)
            total = sum(times[stage] for stage in STAGES)
            totals[(name, trace.name)] = total
            results.append(
                {
                    "pipeline": name,
                    "trace": trace.name,
                    "N": len(trace),
                    "N_prime": stripped.n_unique,
                    **{stage: times[stage] for stage in STAGES},
                    "total_s": total,
                    "match": histograms == reference,
                }
            )
    environment = environment_info()
    document = {
        "schema": SCHEMA,
        "python": environment["python"],
        "numpy": environment["numpy"],
        "platform": environment["platform"],
        "repeats": repeats,
        "results": results,
    }
    speedups = {
        trace.name: totals[("python", trace.name)] / totals[("fast", trace.name)]
        for trace in traces
        if ("fast", trace.name) in totals
    }
    if speedups:
        document["summary"] = {
            "target_trace": target_trace or max(traces, key=len).name,
            "speedups": speedups,
        }
    return document


def validate_results(document: Dict) -> None:
    """Raise ``ValueError`` unless ``document`` matches the schema above.

    Delegates to the unified registry in :mod:`repro.sweep.schema`, so
    every bench document validates through exactly one code path (CI
    round-trips each committed ``BENCH_*.json`` against the same
    registry).
    """
    from repro.sweep.schema import validate_bench

    validate_bench(document, expect=SCHEMA)


def _print_table(document: Dict) -> None:
    print(
        f"{'trace':20s} {'pipeline':8s} {'N':>7s} {'N_prime':>7s} "
        f"{'strip':>7s} {'zsets':>7s} {'mrct':>7s} {'post':>7s} {'total':>7s}"
    )
    for row in document["results"]:
        print(
            f"{row['trace']:20s} {row['pipeline']:8s} {row['N']:7d} "
            f"{row['N_prime']:7d} {row['strip_s']:7.3f} {row['zerosets_s']:7.3f} "
            f"{row['mrct_s']:7.3f} {row['postlude_s']:7.3f} {row['total_s']:7.3f}"
        )
    summary = document.get("summary")
    if summary:
        for trace, speedup in summary["speedups"].items():
            marker = " (target)" if trace == summary["target_trace"] else ""
            print(f"speedup on {trace}: {speedup:.2f}x{marker}")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "-o", "--output", default="BENCH_prelude.json", help="output JSON path"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="tiny panel for smoke tests (seconds, not minutes)",
    )
    parser.add_argument("--repeats", type=int, default=2)
    parser.add_argument(
        "--assert-speedup",
        type=float,
        default=0.0,
        metavar="X",
        help="exit non-zero unless the fast pipeline beats the python "
        "pipeline by at least X on the loop trace",
    )
    args = parser.parse_args(argv)

    if args.assert_speedup and not numpy_available():
        print("--assert-speedup needs NumPy for the fast pipeline", file=sys.stderr)
        return 2
    traces = synthetic_panel(quick=args.quick)
    target = traces[0].name  # the loop trace leads the panel
    document = run_bench(traces, repeats=args.repeats, target_trace=target)
    validate_results(document)
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")
    _print_table(document)
    print(f"wrote {args.output}")
    if args.assert_speedup:
        speedup = document["summary"]["speedups"][target]
        if speedup < args.assert_speedup:
            print(
                f"FAIL: fast pipeline only {speedup:.2f}x faster than python "
                f"on {target} (need >= {args.assert_speedup:.2f}x)",
                file=sys.stderr,
            )
            return 1
        print(
            f"speedup assertion passed: {speedup:.2f}x >= "
            f"{args.assert_speedup:.2f}x on {target}"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
