"""Paper Table 5: data trace statistics (N, N', max misses).

Regenerates the table for our 12 re-implemented PowerStone kernels and
benchmarks the statistics computation itself.
"""

from repro.analysis.tables import trace_stats_table
from repro.trace.stats import compute_statistics
from repro.workloads import WORKLOAD_NAMES

from conftest import emit


def test_table05_data_trace_stats(benchmark, runs, results_dir):
    traces = [runs[name].data_trace for name in WORKLOAD_NAMES]

    def compute_all():
        return [
            compute_statistics(trace, name=name)
            for name, trace in zip(WORKLOAD_NAMES, traces)
        ]

    stats = benchmark(compute_all)
    table = trace_stats_table(stats, title="Table 5: Data trace statistics")
    emit(results_dir, "table05_data_trace_stats", table)

    # Shape checks mirroring the paper: N' < N, and the max miss count
    # never exceeds the N - N' upper bound.
    for row in stats:
        assert 0 < row.n_unique <= row.n
        assert 0 <= row.max_misses <= row.n - row.n_unique
