"""Related-work ablation: analytical algorithm vs one-pass (Mattson) simulation.

The paper positions itself against single-pass techniques [16][17] that
evaluate many configurations in one simulation run.  Per depth, the
Mattson stack-distance profile answers the same minimum-associativity
question; this bench checks exact agreement on every depth and compares
total runtime (the one-pass method must re-walk the trace once per
depth, where the analytical method shares one prelude).
"""

import time

from repro.analysis.tables import format_table
from repro.cache.onepass import stack_distance_profile
from repro.core.explorer import AnalyticalCacheExplorer
from repro.trace.stats import compute_statistics

from conftest import emit

KERNELS = ("crc", "bcnt", "qurt", "pocsag")


def test_analytical_agrees_with_onepass_and_costs(benchmark, runs, results_dir):
    def analytical_all():
        out = {}
        for name in KERNELS:
            trace = runs[name].data_trace
            explorer = AnalyticalCacheExplorer(trace)
            budget = compute_statistics(trace).budget(10)
            out[name] = (explorer, explorer.explore(budget), budget)
        return out

    analytical = benchmark(analytical_all)

    rows = []
    for name in KERNELS:
        trace = runs[name].data_trace
        explorer, result, budget = analytical[name]

        start = time.perf_counter()
        onepass_answers = {}
        for inst in result.instances:
            profile = stack_distance_profile(trace, inst.depth)
            onepass_answers[inst.depth] = profile.min_associativity(budget)
        onepass_seconds = time.perf_counter() - start

        for inst in result.instances:
            assert onepass_answers[inst.depth] == inst.associativity, (
                name,
                inst.depth,
            )
        rows.append([name, len(result.instances), f"{onepass_seconds:.4f}"])

    table = format_table(
        ["Kernel", "Depths checked", "One-pass seconds"],
        rows,
        title="Ablation: analytical vs Mattson one-pass (identical answers)",
    )
    emit(results_dir, "ablation_vs_onepass", table)
