"""Benchmark harness for artifact-store warm-starts.

Runs each panel trace through a full exploration twice against one
artifact store: a **cold** pass on an empty store (pays the whole
pipeline plus the serialization writes) and a **warm** pass with a fresh
:class:`repro.store.ArtifactStore` instance pointed at the same root
(pays only the histogram read), then cross-checks that the cold, warm,
and store-less explorations produce byte-identical results and writes a
machine-readable ``BENCH_store.json``.

Run it from the repo root::

    PYTHONPATH=src python benchmarks/bench_store.py
    PYTHONPATH=src python benchmarks/bench_store.py --quick  # CI smoke

A fresh store instance for the warm pass matters: it empties the
in-process memory tier, so the measured speedup is the honest
disk-and-decode path a second CLI invocation would see, not a dict
lookup.  The headline number (``summary.min_speedup``) is the *worst*
warm-start speedup across the panel; the acceptance bar is >= 5x.

JSON schema (``validate_results`` enforces it)::

    {
      "schema": "repro-bench-store/1",
      "python": str, "numpy": str | null, "platform": str,
      "repeats": int,
      "results": [
        {"trace": str,         # trace name
         "N": int,             # trace length
         "N_prime": int,       # unique addresses (the paper's N')
         "engine": str,        # concrete engine that ran the cold pass
         "cold_wall_s": float, # best-of-repeats cold exploration
         "warm_wall_s": float, # best-of-repeats warm exploration
         "speedup": float,     # cold / warm
         "store_bytes": int,   # artifact bytes after the cold pass
         "warm_hits": int,     # store hits during one warm pass
         "match": bool}        # cold == warm == store-less results
      ],
      "summary": {
        "min_speedup": float, "max_speedup": float,
        "geomean_speedup": float, "threshold": 5.0, "pass": bool
      }
    }
"""

from __future__ import annotations

import argparse
import json
import math
import shutil
import sys
import tempfile
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.core.explorer import AnalyticalCacheExplorer
from repro.obs import environment_info
from repro.store import ArtifactStore
from repro.trace.synthetic import markov_trace, zipf_trace
from repro.trace.trace import Trace

SCHEMA = "repro-bench-store/1"

#: The acceptance bar: every panel trace must warm-start this much faster.
SPEEDUP_THRESHOLD = 5.0

#: Required result-row fields and their types.
RESULT_FIELDS = {
    "trace": str,
    "N": int,
    "N_prime": int,
    "engine": str,
    "cold_wall_s": float,
    "warm_wall_s": float,
    "speedup": float,
    "store_bytes": int,
    "warm_hits": int,
    "match": bool,
}


def synthetic_panel(quick: bool = False) -> List[Trace]:
    """Traces big enough that the pipeline dominates process overhead."""
    def named(trace: Trace, name: str) -> Trace:
        trace.name = name
        return trace

    if quick:
        return [
            named(zipf_trace(4_000, 300, seed=1), "zipf-4000-300"),
            named(markov_trace(3_000, 200, locality=0.9, seed=3), "markov-3000-200"),
        ]
    return [
        named(zipf_trace(60_000, 900, seed=1), "zipf-60000-900"),
        named(markov_trace(40_000, 700, locality=0.9, seed=3), "markov-40000-700"),
    ]


def workload_panel(
    names: Sequence[str] = ("crc", "fir", "ucbqsort"), scale: str = "small"
) -> List[Trace]:
    """Data traces of a few real workload kernels."""
    from repro.workloads import run_workload_by_name

    return [run_workload_by_name(name, scale=scale).data_trace for name in names]


def _explore(trace: Trace, budget: int, store: Optional[ArtifactStore]):
    explorer = AnalyticalCacheExplorer(trace, store=store)
    return explorer.explore(budget), explorer.resolved_engine


def _bench_trace(trace: Trace, root: Path, budget: int, repeats: int) -> Dict:
    """Cold/warm wall times for one trace against one store root."""
    baseline, engine = _explore(trace, budget, store=None)
    cold_wall = float("inf")
    warm_wall = float("inf")
    cold_result = warm_result = None
    store_bytes = warm_hits = 0
    for _ in range(max(1, repeats)):
        shutil.rmtree(root, ignore_errors=True)
        cold_store = ArtifactStore(root)
        start = time.perf_counter()
        cold_result, _ = _explore(trace, budget, store=cold_store)
        cold_wall = min(cold_wall, time.perf_counter() - start)
        store_bytes = cold_store.total_bytes()
        # Fresh instance: empty memory tier, honest disk warm-start.
        warm_store = ArtifactStore(root)
        start = time.perf_counter()
        warm_result, _ = _explore(trace, budget, store=warm_store)
        warm_wall = min(warm_wall, time.perf_counter() - start)
        warm_hits = warm_store.stats.hits
    match = (
        cold_result.to_json_dict()
        == warm_result.to_json_dict()
        == baseline.to_json_dict()
    )
    return {
        "trace": trace.name,
        "N": len(trace),
        "N_prime": len(set(trace.addresses)),
        "engine": engine,
        "cold_wall_s": cold_wall,
        "warm_wall_s": warm_wall,
        "speedup": cold_wall / warm_wall if warm_wall > 0 else float("inf"),
        "store_bytes": store_bytes,
        "warm_hits": warm_hits,
        "match": match,
    }


def run_bench(
    traces: Sequence[Trace],
    budget: int = 8,
    repeats: int = 3,
    store_root: Optional[Path] = None,
) -> Dict:
    """Benchmark every trace and return the result document."""
    owns_root = store_root is None
    root = Path(store_root or tempfile.mkdtemp(prefix="repro-bench-store-"))
    results = []
    try:
        for trace in traces:
            results.append(_bench_trace(trace, root / "store", budget, repeats))
            row = results[-1]
            print(
                f"  {row['trace']:24s} cold {row['cold_wall_s']:7.3f}s  "
                f"warm {row['warm_wall_s']:7.3f}s  {row['speedup']:6.1f}x",
                file=sys.stderr,
            )
    finally:
        if owns_root:
            shutil.rmtree(root, ignore_errors=True)
    speedups = [row["speedup"] for row in results]
    environment = environment_info()
    return {
        "schema": SCHEMA,
        "python": environment["python"],
        "numpy": environment["numpy"],
        "platform": environment["platform"],
        "repeats": repeats,
        "results": results,
        "summary": {
            "min_speedup": min(speedups),
            "max_speedup": max(speedups),
            "geomean_speedup": math.exp(
                sum(math.log(s) for s in speedups) / len(speedups)
            ),
            "threshold": SPEEDUP_THRESHOLD,
            "pass": min(speedups) >= SPEEDUP_THRESHOLD,
        },
    }


def validate_results(document: Dict) -> None:
    """Raise ``ValueError`` unless ``document`` matches the schema above.

    Delegates to the unified registry in :mod:`repro.sweep.schema`, so
    every bench document validates through exactly one code path (CI
    round-trips each committed ``BENCH_*.json`` against the same
    registry).
    """
    from repro.sweep.schema import validate_bench

    validate_bench(document, expect=SCHEMA)


def _print_table(document: Dict) -> None:
    print(
        f"{'trace':24s} {'engine':10s} {'N':>7s} {'cold_s':>8s} "
        f"{'warm_s':>8s} {'speedup':>8s} {'bytes':>9s}"
    )
    for row in document["results"]:
        print(
            f"{row['trace']:24s} {row['engine']:10s} {row['N']:7d} "
            f"{row['cold_wall_s']:8.3f} {row['warm_wall_s']:8.3f} "
            f"{row['speedup']:7.1f}x {row['store_bytes']:9d}"
        )
    summary = document["summary"]
    verdict = "PASS" if summary["pass"] else "FAIL"
    print(
        f"warm-start speedup: min {summary['min_speedup']:.1f}x, geomean "
        f"{summary['geomean_speedup']:.1f}x, max {summary['max_speedup']:.1f}x "
        f"(threshold {summary['threshold']:.1f}x) -> {verdict}"
    )


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "-o", "--output", default="BENCH_store.json", help="output JSON path"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="tiny panel for smoke tests (seconds, not minutes)",
    )
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--budget", type=int, default=8)
    parser.add_argument(
        "--no-workloads", action="store_true", help="skip the workload traces"
    )
    args = parser.parse_args(argv)

    traces = synthetic_panel(quick=args.quick)
    if not args.no_workloads:
        traces += workload_panel(scale="tiny" if args.quick else "small")
    document = run_bench(traces, budget=args.budget, repeats=args.repeats)
    validate_results(document)
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")
    _print_table(document)
    print(f"wrote {args.output}")
    return int(not document["summary"]["pass"])


if __name__ == "__main__":
    sys.exit(main())
