"""Extension bench (paper §1 framing): miss budget vs silicon cost.

The paper frames cache tuning as trading miss reduction against
"silicon area, clock latency, or energy" and cites CACTI as the cost
model.  This bench attaches the bundled CACTI-style estimates to the
budget-satisfying instances of each kernel and reports the
energy-optimal and area-optimal picks plus the (area, energy, time,
misses) Pareto front size.
"""

from repro.analysis.tables import format_table
from repro.core.explorer import AnalyticalCacheExplorer
from repro.explore.selection import (
    cheapest,
    cost_exploration,
    cost_pareto,
)

from conftest import emit

KERNELS = ("adpcm", "crc", "fir", "g3fax")
PERCENT = 10


def test_cost_aware_selection(benchmark, runs, results_dir):
    def select_all():
        out = {}
        for name in KERNELS:
            trace = runs[name].data_trace
            explorer = AnalyticalCacheExplorer(trace)
            result = explorer.explore_percent(PERCENT)
            costed = cost_exploration(
                explorer, result, address_bits=trace.address_bits
            )
            out[name] = costed
        return out

    selections = benchmark(select_all)

    rows = []
    for name, costed in selections.items():
        by_energy = cheapest(costed)
        by_area = cheapest(costed, key=lambda c: c.estimate.area_bits)
        by_time = cheapest(costed, key=lambda c: c.estimate.access_time)
        front = cost_pareto(costed)
        rows.append(
            [
                name,
                str(by_energy.instance),
                str(by_area.instance),
                str(by_time.instance),
                f"{len(front)}/{len(costed)}",
            ]
        )
        # The per-axis winners must sit on the Pareto front.
        assert by_energy in front and by_area in front and by_time in front

    table = format_table(
        ["Kernel", "Min energy", "Min area", "Min latency", "Pareto"],
        rows,
        title=(
            f"Extension: cost-optimal instances among K={PERCENT}% "
            "solutions (CACTI-style model)"
        ),
    )
    emit(results_dir, "ablation_energy", table)
