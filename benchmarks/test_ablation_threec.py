"""Extension bench: 3C miss classification of the optimal instances.

For each kernel's 10%-budget instances, decompose the misses into
compulsory / capacity / conflict using only the analytical histograms.
The expected shape: shallow depths are conflict-dominated (the budget
forces huge associativity to fight placement), deep direct-mapped
points become capacity-comparable, and the occasional negative conflict
(restricted placement beating FA-LRU) appears on loop-heavy traces.
"""

from repro.analysis.tables import format_table
from repro.analysis.threec import classify_misses
from repro.core.explorer import AnalyticalCacheExplorer

from conftest import emit

KERNELS = ("crc", "fir", "g3fax")


def test_three_c_classification(benchmark, runs, results_dir):
    def classify_all():
        out = {}
        for name in KERNELS:
            trace = runs[name].data_trace
            explorer = AnalyticalCacheExplorer(trace)
            result = explorer.explore_percent(10)
            out[name] = [
                classify_misses(explorer, inst.depth, inst.associativity)
                for inst in result.instances
            ]
        return out

    classifications = benchmark(classify_all)

    rows = []
    for name, breakdowns in classifications.items():
        for breakdown in breakdowns:
            rows.append(
                [
                    name,
                    f"D={breakdown.depth} A={breakdown.associativity}",
                    breakdown.compulsory,
                    breakdown.capacity,
                    breakdown.conflict,
                ]
            )
            # Identities the decomposition must satisfy.
            assert (
                breakdown.capacity + breakdown.conflict == breakdown.non_cold
            )
            assert breakdown.total == breakdown.compulsory + breakdown.non_cold

    table = format_table(
        ["Kernel", "Instance", "Compulsory", "Capacity", "Conflict"],
        rows,
        title="Extension: 3C decomposition of the K=10% instances",
    )
    emit(results_dir, "ablation_threec", table)
