"""Extension bench: analytical L2 exploration behind a fixed L1.

One L1 simulation produces the miss stream; the analytical algorithm
then answers every (L2 depth, L2 associativity) question on it at once
— versus the traditional flow's one full two-level simulation per L2
candidate.  Answers are spot-checked against direct simulation of the
miss stream.
"""

from repro.analysis.tables import format_table
from repro.cache.config import CacheConfig
from repro.cache.simulator import simulate_trace
from repro.explore.hierarchy import HierarchyExplorer
from repro.trace.stats import compute_statistics

from conftest import emit

KERNELS = ("des", "g3fax", "ucbqsort")
L1 = CacheConfig(depth=64, associativity=1)


def test_l2_exploration_behind_fixed_l1(benchmark, runs, results_dir):
    def explore_all():
        out = {}
        for name in KERNELS:
            trace = runs[name].unified_trace
            explorer = HierarchyExplorer(trace, L1)
            budget = compute_statistics(explorer.miss_trace).budget(10)
            out[name] = (explorer, explorer.explore(budget), budget)
        return out

    outcomes = benchmark(explore_all)

    rows = []
    for name, (explorer, outcome, budget) in outcomes.items():
        # Spot-check the analytical L2 answers against simulation.
        for instance, misses in list(
            zip(outcome.l2_result.instances, outcome.l2_result.misses)
        )[:3]:
            simulated = simulate_trace(
                outcome.miss_trace, instance.to_config()
            ).non_cold_misses
            assert simulated == misses, (name, instance)

        l1_rate = outcome.l1_result.miss_rate
        smallest = outcome.l2_result.smallest()
        rows.append(
            [
                name,
                len(explorer.trace),
                len(outcome.miss_trace),
                f"{l1_rate:.3f}",
                budget,
                str(smallest) if smallest else "-",
            ]
        )

    table = format_table(
        [
            "Kernel",
            "L1 accesses",
            "L2 accesses",
            "L1 miss rate",
            "L2 budget",
            "Smallest L2",
        ],
        rows,
        title=(
            f"Extension: analytical L2 exploration behind L1 "
            f"({L1.describe()})"
        ),
    )
    emit(results_dir, "ablation_hierarchy", table)
