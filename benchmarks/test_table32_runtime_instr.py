"""Paper Table 32: algorithm run time on the instruction traces."""

from repro.analysis.runtime import measure_runtime
from repro.analysis.tables import runtime_table
from repro.trace.stats import compute_statistics
from repro.workloads import WORKLOAD_NAMES

from conftest import PERCENTS, emit


def test_table32_runtime_instruction_traces(benchmark, runs, results_dir):
    traces = {name: runs[name].instruction_trace for name in WORKLOAD_NAMES}
    budgets = {
        name: [compute_statistics(t).budget(p) for p in PERCENTS]
        for name, t in traces.items()
    }

    def measure_all():
        return {
            name: measure_runtime(trace, budgets=budgets[name])
            for name, trace in traces.items()
        }

    measurements = benchmark.pedantic(measure_all, rounds=1, iterations=1)
    table = runtime_table(
        {name: m.seconds for name, m in measurements.items()},
        title="Table 32: Algorithm run time, instruction traces (this machine)",
    )
    emit(results_dir, "table32_runtime_instr", table)
    assert all(m.seconds > 0 for m in measurements.values())
