"""Benchmark harness for incremental trace sessions.

Measures the point of :mod:`repro.stream`: once a long trace has been
ingested, answering after a small append must cost time proportional to
the append, not the history.  The schedule:

* **warm** — a :class:`repro.core.streaming.StreamingState` holding all
  but the final ``tail_fraction`` (0.5%, comfortably inside the <= 1%
  acceptance envelope that ``validate_results`` enforces) of a
  high-locality synthetic trace is cloned per repeat (clone untimed);
  the timed region
  appends the tail, rebuilds the per-level histograms, and derives the
  optimal ``(D, A)`` pairs for every budget;
* **cold** — the timed region recomputes the same answers from scratch
  on the full concatenated trace with the best available batch engine
  (``vectorized`` when NumPy is importable, else ``serial``).

Every warm answer set and histogram table is cross-checked against the
cold one; any divergence counts as an error and fails the run.  The
headline number is ``cold_s / warm_s`` (best-of-``repeats`` each); the
acceptance bar is a **>= 10x** speedup with **zero** errors, on a trace
of at least 10^5 references (``--quick`` shrinks the trace for CI smoke
but keeps the same bar when ``--assert-speedup`` is set).

A checkpoint round-trip through the versioned store codec is also
exercised at full state size, recording the encoded byte count.

Run it from the repo root::

    PYTHONPATH=src python benchmarks/bench_stream.py
    PYTHONPATH=src python benchmarks/bench_stream.py --quick --assert-speedup

JSON schema (``validate_results`` enforces it)::

    {
      "schema": "repro-bench-stream/1",
      "python": str, "numpy": str | null, "platform": str,
      "config": {
        "total_refs": int, "unique_refs": int, "tail_refs": int,
        "tail_fraction": float, "budgets": [int], "repeats": int,
        "cold_engine": str, "address_bits": int
      },
      "results": {
        "cold_s": float, "warm_s": float, "speedup": float,
        "cold_samples_s": [float], "warm_samples_s": [float],
        "checkpoint": {"bytes": int, "encode_s": float,
                       "decode_s": float, "roundtrip_ok": bool},
        "errors": int
      },
      "summary": {
        "speedup": float, "floor": float, "errors": int, "pass": bool
      }
    }
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Dict, List, Optional, Sequence

from repro.core import engines
from repro.core.postlude import optimal_pairs
from repro.core.streaming import StreamingState
from repro.core.vectorized import numpy_available
from repro.obs import environment_info
from repro.store.codec import STREAM_CHECKPOINT_CODEC
from repro.trace.synthetic import markov_trace

SCHEMA = "repro-bench-stream/1"

#: The acceptance bar: warm append must beat cold recompute by this.
SPEEDUP_FLOOR = 10.0

#: The appended tail, as a fraction of the whole trace.
TAIL_FRACTION = 0.005

#: The acceptance envelope the tail must stay inside (the "<= 1%" bar).
TAIL_BAR = 0.01

#: The full-size run must cover at least this many references.
MIN_TOTAL_REFS = 100_000

#: Required fields of the checkpoint block.
CHECKPOINT_FIELDS = ("bytes", "encode_s", "decode_s", "roundtrip_ok")


def _answers(histograms, budgets: Sequence[int], max_level=None):
    """Normalized ``{budget: [(depth, assoc), ...]}`` answer tables."""
    return {
        budget: [
            (instance.depth, instance.associativity)
            for instance in optimal_pairs(
                histograms, budget, max_level=max_level
            )
        ]
        for budget in budgets
    }


def _normalized(histograms) -> Dict[int, Dict[int, int]]:
    return {level: dict(h.counts) for level, h in histograms.items()}


def run_bench(
    total: int,
    unique: int,
    budgets: Sequence[int],
    repeats: int,
    floor: float = SPEEDUP_FLOOR,
) -> Dict:
    """Time warm append vs cold recompute; return the result document."""
    if total < 2:
        raise ValueError("total must be >= 2")
    trace = markov_trace(total, unique, locality=0.9, seed=20260808)
    trace.name = "bench-stream"
    tail_refs = max(1, int(total * TAIL_FRACTION))
    head = trace[: total - tail_refs]
    tail = trace[total - tail_refs :]
    cold_engine = "vectorized" if numpy_available() else "serial"

    # Warm phase: per repeat, clone the head-loaded state (untimed), then
    # time append(tail) + histograms() + optimal_pairs for every budget.
    base = StreamingState(trace.address_bits)
    base.append(head)
    snapshot = base.snapshot()
    warm_samples: List[float] = []
    warm_answers = warm_histograms = None
    for _ in range(repeats):
        state = StreamingState.from_snapshot(snapshot)
        start = time.perf_counter()
        state.append(tail)
        histograms = state.histograms()
        warm_answers = _answers(histograms, budgets, max_level=state.limit)
        warm_samples.append(time.perf_counter() - start)
        warm_histograms = _normalized(histograms)
    final_state = StreamingState.from_snapshot(snapshot)
    final_state.append(tail)
    print(
        f"  warm: {tail_refs} appended refs "
        f"({100.0 * tail_refs / total:.2f}% of {total}), "
        f"best of {repeats}: {min(warm_samples):.4f}s",
        file=sys.stderr,
    )

    # Cold phase: full recompute on the concatenated trace, end to end.
    cold_samples: List[float] = []
    cold_answers = cold_histograms = None
    for _ in range(repeats):
        start = time.perf_counter()
        histograms = engines.compute_histograms(
            cold_engine, engines.EngineInputs(trace)
        )
        cold_answers = _answers(histograms, budgets)
        cold_samples.append(time.perf_counter() - start)
        cold_histograms = _normalized(histograms)
    print(
        f"  cold: {total} refs via {cold_engine}, "
        f"best of {repeats}: {min(cold_samples):.4f}s",
        file=sys.stderr,
    )

    errors = 0
    if warm_answers != cold_answers:
        errors += 1
        print("  ERROR: warm answers diverge from cold answers", file=sys.stderr)
    if warm_histograms != cold_histograms:
        errors += 1
        print("  ERROR: warm histograms diverge from cold", file=sys.stderr)

    # Checkpoint codec round-trip at full state size.
    start = time.perf_counter()
    blob = STREAM_CHECKPOINT_CODEC.encode(final_state.snapshot())
    encode_s = time.perf_counter() - start
    start = time.perf_counter()
    restored = StreamingState.from_snapshot(STREAM_CHECKPOINT_CODEC.decode(blob))
    decode_s = time.perf_counter() - start
    roundtrip_ok = (
        restored.content_digest == final_state.content_digest
        and _normalized(restored.histograms()) == warm_histograms
    )
    if not roundtrip_ok:
        errors += 1
        print("  ERROR: checkpoint round-trip diverged", file=sys.stderr)

    cold_s = min(cold_samples)
    warm_s = min(warm_samples)
    speedup = cold_s / warm_s if warm_s > 0 else float("inf")
    environment = environment_info()
    return {
        "schema": SCHEMA,
        "python": environment["python"],
        "numpy": environment["numpy"],
        "platform": environment["platform"],
        "config": {
            "total_refs": total,
            "unique_refs": trace.unique_count(),
            "tail_refs": tail_refs,
            "tail_fraction": TAIL_FRACTION,
            "budgets": list(budgets),
            "repeats": repeats,
            "cold_engine": cold_engine,
            "address_bits": trace.address_bits,
        },
        "results": {
            "cold_s": cold_s,
            "warm_s": warm_s,
            "speedup": speedup,
            "cold_samples_s": cold_samples,
            "warm_samples_s": warm_samples,
            "checkpoint": {
                "bytes": len(blob),
                "encode_s": encode_s,
                "decode_s": decode_s,
                "roundtrip_ok": roundtrip_ok,
            },
            "errors": errors,
        },
        "summary": {
            "speedup": speedup,
            "floor": floor,
            "errors": errors,
            "pass": errors == 0 and speedup >= floor,
        },
    }


def validate_results(document: Dict) -> None:
    """Raise ``ValueError`` unless ``document`` matches the schema above.

    Delegates to the unified registry in :mod:`repro.sweep.schema`, so
    every bench document validates through exactly one code path (CI
    round-trips each committed ``BENCH_*.json`` against the same
    registry).
    """
    from repro.sweep.schema import validate_bench

    validate_bench(document, expect=SCHEMA)


def _print_table(document: Dict) -> None:
    config = document["config"]
    results = document["results"]
    summary = document["summary"]
    print(
        f"trace: {config['total_refs']} refs "
        f"({config['unique_refs']} unique, {config['address_bits']} bits), "
        f"tail {config['tail_refs']} refs, cold engine {config['cold_engine']}"
    )
    print(
        f"cold {results['cold_s']:.4f}s  warm {results['warm_s']:.4f}s  "
        f"checkpoint {results['checkpoint']['bytes']} bytes"
    )
    verdict = "PASS" if summary["pass"] else "FAIL"
    print(
        f"speedup {summary['speedup']:.1f}x "
        f"(floor {summary['floor']:.0f}x), "
        f"errors {summary['errors']} -> {verdict}"
    )


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "-o", "--output", default="BENCH_stream.json", help="output JSON path"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small trace for smoke tests (seconds, not minutes)",
    )
    parser.add_argument("--total", type=int, default=None, help="trace length")
    parser.add_argument(
        "--unique", type=int, default=None, help="trace footprint (distinct refs)"
    )
    parser.add_argument("--repeats", type=int, default=3, help="timing repeats")
    parser.add_argument(
        "--budget",
        type=int,
        action="append",
        help="miss budget K to answer per phase (repeatable; default: 0 and 25)",
    )
    parser.add_argument(
        "--floor",
        type=float,
        default=SPEEDUP_FLOOR,
        help="speedup acceptance bar (default: %(default)s)",
    )
    parser.add_argument(
        "--assert-speedup",
        action="store_true",
        help="exit non-zero unless the speedup floor holds (CI gate)",
    )
    args = parser.parse_args(argv)

    total = args.total if args.total is not None else (
        20_000 if args.quick else MIN_TOTAL_REFS
    )
    unique = args.unique if args.unique is not None else (
        200 if args.quick else 400
    )
    if not args.quick and args.total is None and total < MIN_TOTAL_REFS:
        raise SystemExit(f"full runs must cover >= {MIN_TOTAL_REFS} refs")
    budgets = args.budget if args.budget else [0, 25]
    document = run_bench(
        total=total,
        unique=unique,
        budgets=budgets,
        repeats=args.repeats,
        floor=args.floor,
    )
    validate_results(document)
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")
    _print_table(document)
    print(f"wrote {args.output}")
    if document["summary"]["errors"]:
        return 1
    if args.assert_speedup:
        return int(not document["summary"]["pass"])
    return 0


if __name__ == "__main__":
    sys.exit(main())
