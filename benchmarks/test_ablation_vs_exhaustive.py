"""Figure 1 head-to-head: analytical (b) vs traditional simulate loops (a).

The paper's motivation is that design-simulate-analyze converges slowly
because every iteration costs a full trace simulation.  This bench runs
all three methods on real kernel traces, asserts they agree, and reports
the costs — the reproduced "result" is analytical winning by a widening
margin as the space grows.
"""

from repro.analysis.tables import format_table
from repro.explore.compare import compare_methods
from repro.explore.space import DesignSpace
from repro.trace.stats import compute_statistics

from conftest import emit

KERNELS = ("crc", "qurt", "engine", "fir")
SPACE = DesignSpace(min_depth=2, max_depth=256, max_associativity=8)


def test_analytical_vs_traditional_dse(benchmark, runs, results_dir):
    def compare_all():
        out = {}
        for name in KERNELS:
            trace = runs[name].data_trace
            budget = compute_statistics(trace).budget(10)
            out[name] = compare_methods(trace, budget, SPACE)
        return out

    comparisons = benchmark.pedantic(compare_all, rounds=1, iterations=1)

    rows = []
    for name, comparison in comparisons.items():
        assert comparison.agreement(), comparison.disagreements()
        rows.append(
            [
                name,
                f"{comparison.analytical_seconds:.4f}",
                f"{comparison.exhaustive.elapsed_seconds:.4f}",
                f"{comparison.heuristic.elapsed_seconds:.4f}",
                comparison.exhaustive.simulations,
                comparison.heuristic.simulations,
                f"{comparison.speedup_vs_exhaustive:.1f}x",
            ]
        )
    table = format_table(
        [
            "Kernel",
            "Analytical s",
            "Exhaustive s",
            "Heuristic s",
            "Exh sims",
            "Heur sims",
            "Speedup",
        ],
        rows,
        title="Figure 1 ablation: analytical vs design-simulate-analyze",
    )
    emit(results_dir, "ablation_vs_exhaustive", table)
