"""Benchmark harness for the exploration daemon.

Boots an in-process :class:`repro.serve.server.ExploreServer` (thread
worker pool, artifact store on a temp root), then drives it over real
HTTP with a mixed cold/warm request schedule:

* a **cold** pass submits every unique request once, sequentially —
  each one pays the full exploration pipeline plus the store writes;
* a **warm** burst submits the remaining requests (shuffled repeats of
  the unique set) from several client threads at once — each one should
  be answered out of the artifact store, so the measured latency is the
  service overhead: HTTP framing, protocol decode, dedup keying, pool
  dispatch, and the store read.

Every warm response is cross-checked against the cold response for the
same request; any divergence, transport failure, or non-200 counts as
an error and fails the run.  The headline number is the warm-path p99
latency; the acceptance bar is ``<= 0.5 s`` with **zero** errors.

Run it from the repo root::

    PYTHONPATH=src python benchmarks/bench_serve.py
    PYTHONPATH=src python benchmarks/bench_serve.py --quick  # CI smoke

JSON schema (``validate_results`` enforces it)::

    {
      "schema": "repro-bench-serve/1",
      "python": str, "numpy": str | null, "platform": str,
      "config": {
        "total_requests": int, "unique_requests": int,
        "client_threads": int, "workers": int, "pool": str
      },
      "results": {
        "cold": {"count": int, "p50_s": float, "p95_s": float,
                 "p99_s": float, "max_s": float},
        "warm": {"count": int, "p50_s": float, "p95_s": float,
                 "p99_s": float, "max_s": float},
        "errors": int,
        "server": {"requests_total": int, "computations_total": int,
                   "dedup_hits_total": int, "store_hits_total": int,
                   "store_misses_total": int}
      },
      "summary": {
        "warm_p99_s": float, "threshold_s": 0.5,
        "errors": int, "pass": bool
      }
    }
"""

from __future__ import annotations

import argparse
import asyncio
import json
import random
import shutil
import sys
import tempfile
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.core.request import ExplorationRequest
from repro.obs import environment_info
from repro.serve import ExploreServer, ServeClient, ServeError, WorkerPool
from repro.serve.protocol import request_to_wire
from repro.trace.synthetic import markov_trace, zipf_trace

SCHEMA = "repro-bench-serve/1"

#: The acceptance bar: warm-path p99 latency must stay under this.
WARM_P99_THRESHOLD_S = 0.5

#: Required fields of each latency-phase block.
PHASE_FIELDS = ("count", "p50_s", "p95_s", "p99_s", "max_s")

#: Required fields of the server-metrics block.
SERVER_FIELDS = (
    "requests_total",
    "computations_total",
    "dedup_hits_total",
    "store_hits_total",
    "store_misses_total",
)


def request_panel(unique: int) -> List[Dict]:
    """``unique`` distinct wire requests over seeded synthetic traces."""
    documents = []
    for index in range(unique):
        if index % 2 == 0:
            trace = zipf_trace(2_000, 150, seed=index + 1)
        else:
            trace = markov_trace(1_500, 120, locality=0.85, seed=index + 1)
        trace.name = f"bench-serve-{index}"
        request = ExplorationRequest(
            traces=(trace,),
            mode="single",
            budgets=(0, 1 + index % 3),
            engine="auto",
        )
        documents.append(request_to_wire(request))
    return documents


class _Harness:
    """An in-process daemon on an ephemeral port, store-backed."""

    def __init__(self, workers: int, store_root: Path) -> None:
        self.pool = WorkerPool(workers=workers, kind="thread", store_root=store_root)
        self.server = ExploreServer(self.pool, port=0, latency_seed=1234)
        self.loop = asyncio.new_event_loop()
        started = threading.Event()

        def run() -> None:
            asyncio.set_event_loop(self.loop)
            self.loop.run_until_complete(self.server.start())
            started.set()
            self.loop.run_forever()

        self.thread = threading.Thread(target=run, name="bench-serve", daemon=True)
        self.thread.start()
        if not started.wait(timeout=10):
            raise RuntimeError("bench server failed to start")

    def client(self) -> ServeClient:
        return ServeClient("127.0.0.1", self.server.port, timeout=600.0)

    def stop(self) -> None:
        future = asyncio.run_coroutine_threadsafe(
            self.server.shutdown(drain=True, timeout=30.0), self.loop
        )
        future.result(timeout=60)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(timeout=30)
        self.loop.close()


def _percentile(sorted_values: Sequence[float], quantile: float) -> float:
    """Nearest-rank percentile of an ascending-sorted sample."""
    if not sorted_values:
        return 0.0
    rank = max(1, int(-(-quantile * len(sorted_values) // 1)))  # ceil
    return float(sorted_values[min(rank, len(sorted_values)) - 1])


def _phase_stats(latencies: Sequence[float]) -> Dict:
    ordered = sorted(latencies)
    return {
        "count": len(ordered),
        "p50_s": _percentile(ordered, 0.50),
        "p95_s": _percentile(ordered, 0.95),
        "p99_s": _percentile(ordered, 0.99),
        "max_s": float(ordered[-1]) if ordered else 0.0,
    }


def _comparable(response: Dict) -> Dict:
    """A response stripped of run-local noise (store stats, manifest)."""
    report = dict(response.get("report", {}))
    report.pop("store", None)
    return report


def run_bench(
    total: int,
    unique: int,
    client_threads: int,
    workers: int,
    threshold: float = WARM_P99_THRESHOLD_S,
) -> Dict:
    """Drive the daemon with ``total`` requests; return the result doc."""
    if total < unique:
        raise ValueError("total must be >= unique")
    documents = request_panel(unique)
    root = Path(tempfile.mkdtemp(prefix="repro-bench-serve-"))
    harness = _Harness(workers=workers, store_root=root / "store")
    errors = 0
    baselines: List[Dict] = []
    cold_latencies: List[float] = []
    warm_latencies: List[float] = []
    try:
        client = harness.client()
        for document in documents:
            start = time.perf_counter()
            response = client.explore_wire(document)
            cold_latencies.append(time.perf_counter() - start)
            baselines.append(_comparable(response))
        print(
            f"  cold: {len(documents)} unique requests, "
            f"p99 {_phase_stats(cold_latencies)['p99_s']:.3f}s",
            file=sys.stderr,
        )

        schedule = [index % unique for index in range(total - unique)]
        random.Random(20260808).shuffle(schedule)
        lock = threading.Lock()

        def submit(index: int) -> None:
            nonlocal errors
            worker_client = harness.client()
            try:
                start = time.perf_counter()
                response = worker_client.explore_wire(documents[index])
                elapsed = time.perf_counter() - start
                matched = _comparable(response) == baselines[index]
            except ServeError:
                with lock:
                    errors += 1
                return
            with lock:
                warm_latencies.append(elapsed)
                if not matched:
                    errors += 1

        with ThreadPoolExecutor(max_workers=client_threads) as executor:
            list(executor.map(submit, schedule))
        warm = _phase_stats(warm_latencies)
        print(
            f"  warm: {warm['count']} requests over {client_threads} threads, "
            f"p99 {warm['p99_s']:.3f}s, errors {errors}",
            file=sys.stderr,
        )

        metrics = client.metrics()
        server_stats = {
            "requests_total": int(metrics.get("serve_requests_total", 0)),
            "computations_total": int(metrics.get("serve_computations_total", 0)),
            "dedup_hits_total": int(metrics.get("serve_dedup_hits_total", 0)),
            "store_hits_total": int(metrics.get("serve_store_hits_total", 0)),
            "store_misses_total": int(metrics.get("serve_store_misses_total", 0)),
        }
    finally:
        harness.stop()
        shutil.rmtree(root, ignore_errors=True)

    environment = environment_info()
    return {
        "schema": SCHEMA,
        "python": environment["python"],
        "numpy": environment["numpy"],
        "platform": environment["platform"],
        "config": {
            "total_requests": total,
            "unique_requests": unique,
            "client_threads": client_threads,
            "workers": workers,
            "pool": "thread",
        },
        "results": {
            "cold": _phase_stats(cold_latencies),
            "warm": warm,
            "errors": errors,
            "server": server_stats,
        },
        "summary": {
            "warm_p99_s": warm["p99_s"],
            "threshold_s": threshold,
            "errors": errors,
            "pass": errors == 0 and warm["p99_s"] <= threshold,
        },
    }


def validate_results(document: Dict) -> None:
    """Raise ``ValueError`` unless ``document`` matches the schema above.

    Delegates to the unified registry in :mod:`repro.sweep.schema`, so
    every bench document validates through exactly one code path (CI
    round-trips each committed ``BENCH_*.json`` against the same
    registry).
    """
    from repro.sweep.schema import validate_bench

    validate_bench(document, expect=SCHEMA)


def _print_table(document: Dict) -> None:
    results = document["results"]
    print(f"{'phase':8s} {'count':>6s} {'p50_s':>8s} {'p95_s':>8s} {'p99_s':>8s} {'max_s':>8s}")
    for phase in ("cold", "warm"):
        block = results[phase]
        print(
            f"{phase:8s} {block['count']:6d} {block['p50_s']:8.4f} "
            f"{block['p95_s']:8.4f} {block['p99_s']:8.4f} {block['max_s']:8.4f}"
        )
    server = results["server"]
    print(
        f"server: {server['requests_total']} requests, "
        f"{server['computations_total']} computations, "
        f"{server['dedup_hits_total']} dedup hits, "
        f"store {server['store_hits_total']}h/{server['store_misses_total']}m"
    )
    summary = document["summary"]
    verdict = "PASS" if summary["pass"] else "FAIL"
    print(
        f"warm p99 {summary['warm_p99_s']:.4f}s "
        f"(threshold {summary['threshold_s']:.2f}s), "
        f"errors {summary['errors']} -> {verdict}"
    )


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "-o", "--output", default="BENCH_serve.json", help="output JSON path"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small schedule for smoke tests (seconds, not minutes)",
    )
    parser.add_argument("--total", type=int, default=None, help="total requests")
    parser.add_argument("--unique", type=int, default=None, help="distinct requests")
    parser.add_argument("--client-threads", type=int, default=8)
    parser.add_argument("--workers", type=int, default=4, help="server worker pool size")
    parser.add_argument(
        "--warm-p99", type=float, default=WARM_P99_THRESHOLD_S,
        help="warm-path p99 acceptance bar in seconds",
    )
    args = parser.parse_args(argv)

    total = args.total if args.total is not None else (60 if args.quick else 240)
    unique = args.unique if args.unique is not None else (6 if args.quick else 12)
    document = run_bench(
        total=total,
        unique=unique,
        client_threads=args.client_threads,
        workers=args.workers,
        threshold=args.warm_p99,
    )
    validate_results(document)
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")
    _print_table(document)
    print(f"wrote {args.output}")
    return int(not document["summary"]["pass"])


if __name__ == "__main__":
    sys.exit(main())
