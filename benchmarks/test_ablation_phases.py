"""Extension bench: phase-based exploration (reconfigurable caches).

Models a multi-tasking embedded system by concatenating kernel data
traces (task switches = phase boundaries) and measures what a
reconfigurable cache could save: per-phase optimal associativity vs the
static whole-trace optimum, at each depth — the analysis behind the
authors' follow-up work on adaptive cache reconfiguration.
"""

from repro.analysis.tables import format_table
from repro.explore.phases import explore_phases

from conftest import emit

TASKS = ("crc", "fir", "engine", "qurt")


def test_phase_exploration_of_task_switching_trace(
    benchmark, runs, results_dir
):
    # Build the multi-tasking trace: each task runs to completion, then
    # the next is scheduled (boundaries at the concatenation points).
    traces = [runs[name].data_trace for name in TASKS]
    combined = traces[0]
    boundaries = []
    position = len(traces[0])
    for trace in traces[1:]:
        combined = combined.concat(trace)
        boundaries.append(position)
        position += len(trace)
    combined.name = "taskswitch"

    def explore():
        return explore_phases(combined, budget=50, boundaries=boundaries)

    outcome = benchmark(explore)

    rows = []
    depths = sorted(outcome.static_result.as_dict())[:8]
    for depth in depths:
        static = outcome.static_result.associativity_for(depth)
        per_phase = outcome.phase_instances(depth)
        if static is None or any(a is None for a in per_phase):
            continue
        benefit = outcome.reconfiguration_benefit(depth)
        rows.append(
            [
                depth,
                static,
                "/".join(str(a) for a in per_phase),
                max(per_phase),
                benefit,
            ]
        )
        # Per-phase peaks never exceed the static requirement: the static
        # run pays for all intra-phase conflicts too.
        assert max(per_phase) <= static

    table = format_table(
        ["Depth", "Static A", "Per-task A", "Peak A", "Words saved"],
        rows,
        title="Extension: reconfiguration benefit on a task-switching trace (K=50)",
    )
    emit(results_dir, "ablation_phases", table)
