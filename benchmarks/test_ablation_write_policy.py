"""Extension bench: write-policy traffic on the kernel data traces.

The paper fixes write-back "as the most common and often optimal"
choice; this bench quantifies that for our kernels: total memory-
interface words under write-back vs write-through at the analytically
derived 10%-budget instance of each kernel.
"""

from repro.analysis.tables import format_table
from repro.analysis.traffic import compare_write_policies
from repro.core.explorer import AnalyticalCacheExplorer

from conftest import emit

KERNELS = ("blit", "compress", "g3fax", "ucbqsort")  # store-heavy kernels


def test_write_policy_traffic(benchmark, runs, results_dir):
    def analyze_all():
        out = {}
        for name in KERNELS:
            trace = runs[name].data_trace
            explorer = AnalyticalCacheExplorer(trace)
            result = explorer.explore_percent(10)
            instance = result.smallest()
            estimates = compare_write_policies(
                trace, instance.depth, instance.associativity
            )
            out[name] = (instance, estimates)
        return out

    analyses = benchmark(analyze_all)

    rows = []
    for name, (instance, estimates) in analyses.items():
        wb = estimates["write-back"]
        wt = estimates["write-through"]
        winner = "write-back" if wb.total_words < wt.total_words else (
            "write-through" if wt.total_words < wb.total_words else "tie"
        )
        rows.append(
            [
                name,
                str(instance),
                wb.total_words,
                wt.total_words,
                winner,
            ]
        )
        # Identical fill traffic: the write policy only changes stores.
        assert wb.fill_words == wt.fill_words, name

    table = format_table(
        ["Kernel", "Instance", "WB words", "WT words", "Winner"],
        rows,
        title="Extension: write-back vs write-through traffic (K=10% instance)",
    )
    emit(results_dir, "ablation_write_policy", table)
