"""Extension bench: FIFO associativity thresholds (Belady-anomaly aware).

Under LRU the miss count is monotone in associativity (the stack
property), so "the minimum A meeting the budget" is a true threshold:
every larger A also meets it.  FIFO has no stack property — misses can
*rise* when associativity grows (Belady's anomaly) — so two thresholds
exist per depth: the *first* A within budget (what the hybrid engine's
upward scan reports) and the *stable* A beyond which every larger
associativity stays within budget.  This bench measures the gap between
the two, and against LRU's threshold, across adversarial synthetic
workloads: the experiment that motivates per-cell simulation in the
FIFO hybrid engine (a conflict histogram cannot encode a non-monotone
miss curve).
"""

from repro.analysis.tables import format_table
from repro.core.explorer import AnalyticalCacheExplorer
from repro.core.fifo import FIFOHybridExplorer
from repro.trace.stats import compute_statistics
from repro.trace.synthetic import (
    adversarial_lowbit_trace,
    random_trace,
    skewed_trace,
)

from conftest import emit

PERCENT = 10.0
MAX_LEVEL = 5  # depths 4..32: where FIFO/LRU thresholds actually differ


def _traces():
    return (
        adversarial_lowbit_trace(600, low_bits=4, footprint=24, seed=5),
        skewed_trace(600, footprint=48, hot_fraction=0.2, skew=0.9, seed=5),
        random_trace(600, footprint=64, seed=5),
    )


def test_fifo_associativity_thresholds(benchmark, results_dir):
    def analyze():
        out = []
        for trace in _traces():
            budget = compute_statistics(trace).budget(PERCENT)
            lru = AnalyticalCacheExplorer(trace)
            fifo = FIFOHybridExplorer(trace)
            top = min(MAX_LEVEL, fifo.report_level)
            for level in range(2, top + 1):
                depth = 1 << level
                zero = fifo.zero_miss_associativity(depth)
                series = [fifo.misses(depth, a) for a in range(1, zero + 1)]
                first = next(
                    a for a, m in enumerate(series, start=1) if m <= budget
                )
                stable = zero
                for a in range(zero, 0, -1):
                    if series[a - 1] <= budget:
                        stable = a
                    else:
                        break
                anomalies = sum(
                    1 for prev, cur in zip(series, series[1:]) if cur > prev
                )
                lru_first = next(
                    a
                    for a in range(1, zero + 2)
                    if lru.misses(depth, a) <= budget
                )
                out.append(
                    (trace.name, depth, budget, lru_first, first, stable, anomalies)
                )
        return out

    records = benchmark.pedantic(analyze, rounds=1, iterations=1)

    rows = []
    for name, depth, budget, lru_first, first, stable, anomalies in records:
        # `first` is within budget and `stable` is the bottom of the
        # within-budget upper interval, so first <= stable always; the
        # two can differ only through a Belady anomaly in between.
        assert first <= stable
        if anomalies == 0:
            assert first == stable
        rows.append([name, depth, budget, lru_first, first, stable, anomalies])

    table = format_table(
        [
            "Trace",
            "Depth D",
            "Budget K",
            "LRU A*",
            "FIFO first A",
            "FIFO stable A",
            "Anomalies",
        ],
        rows,
        title=(
            f"Extension: FIFO associativity thresholds vs LRU "
            f"(K = {PERCENT:.0f}% of max misses)"
        ),
    )
    emit(results_dir, "ablation_fifo_thresholds", table)
