"""Extension bench: application-set exploration (the paper's §1 motivation).

Embedded systems run a fixed *set* of applications; the introduction
motivates tuning the cache "to the application set of these systems".
This bench explores one cache serving all 12 kernel data traces at
once, under both composition rules (bound the total; bound each), and
compares against the per-application answers.
"""

from repro.analysis.tables import format_table
from repro.core.explorer import AnalyticalCacheExplorer
from repro.core.multi import MultiTraceExplorer
from repro.trace.stats import compute_statistics
from repro.workloads import WORKLOAD_NAMES

from conftest import emit


def test_application_set_exploration(benchmark, runs, results_dir):
    traces = [runs[name].data_trace for name in WORKLOAD_NAMES]
    # Budget: 10% of the summed max misses (sum mode) / per-trace 10%
    # of the largest member (each mode), keeping both runs comparable.
    total_max = sum(compute_statistics(t).max_misses for t in traces)
    sum_budget = total_max // 10
    each_budget = max(
        compute_statistics(t).max_misses for t in traces
    ) // 10

    def explore_both():
        explorer = MultiTraceExplorer(traces)
        return (
            explorer,
            explorer.explore_sum(sum_budget),
            explorer.explore_each(each_budget),
        )

    explorer, sum_result, each_result = benchmark(explore_both)

    # Exactness of the sum rule against per-trace explorers.
    individuals = [AnalyticalCacheExplorer(t) for t in traces]
    for index, inst in enumerate(sum_result.instances):
        expected = sum(
            e.misses(inst.depth, inst.associativity) for e in individuals
        )
        assert sum_result.total_misses(index) == expected
        assert expected <= sum_budget

    # The each rule really is the max of the individual answers.
    for inst in each_result.instances:
        individual_max = max(
            e.explore(each_budget).as_dict().get(inst.depth, 1)
            for e in individuals
        )
        assert inst.associativity == individual_max

    depths = sorted(
        set(sum_result.as_dict()) & set(each_result.as_dict())
    )[:8]
    rows = [
        [
            depth,
            sum_result.as_dict()[depth],
            each_result.as_dict()[depth],
        ]
        for depth in depths
    ]
    table = format_table(
        ["Depth", f"A (sum K={sum_budget})", f"A (each K={each_budget})"],
        rows,
        title="Extension: one cache for the whole 12-kernel application set",
    )
    emit(results_dir, "ablation_application_set", table)
