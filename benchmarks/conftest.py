"""Shared benchmark fixtures.

Workload runs are session-cached at the scale given by the
``REPRO_BENCH_SCALE`` environment variable (default ``default``); every
bench that regenerates a paper table also writes its rendered output to
``benchmarks/results/`` so EXPERIMENTS.md can reference the exact text.
"""

from __future__ import annotations

import os
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: The paper evaluates K at these percentages of the max miss count.
PERCENTS = (5.0, 10.0, 15.0, 20.0)


@pytest.fixture(scope="session")
def bench_scale() -> str:
    return os.environ.get("REPRO_BENCH_SCALE", "default")


@pytest.fixture(scope="session")
def runs(bench_scale):
    """All 12 verified workload runs."""
    from repro.workloads import run_all

    return run_all(scale=bench_scale)


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def emit(results_dir: pathlib.Path, name: str, text: str) -> None:
    """Print a rendered table and persist it under benchmarks/results/."""
    print()
    print(text)
    (results_dir / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
