"""Extension bench: unified vs split instruction/data caches.

The paper analyzes instruction and data traces separately (split
caches).  With the VM's merged program-order trace the same analytical
machinery answers the unified question: at equal total capacity, does
one unified cache or a split I/D pair miss less?  The classic
embedded-systems answer — split wins once the cache is small relative
to the combined working set, because code and data stop evicting each
other — is what this bench reports.
"""

from repro.analysis.tables import format_table
from repro.core.explorer import AnalyticalCacheExplorer
from repro.explore.hierarchy import split_cache_misses

from conftest import emit

KERNELS = ("crc", "engine", "compress", "ucbqsort")
DEPTHS = (16, 64, 256)
ASSOC = 2


def test_unified_vs_split(benchmark, runs, results_dir):
    def analyze_all():
        out = {}
        for name in KERNELS:
            run = runs[name]
            unified = AnalyticalCacheExplorer(run.unified_trace)
            rows = []
            for depth in DEPTHS:
                # Unified cache of depth 2D vs split pair of depth D each:
                # identical total capacity (2 * D * ASSOC words).
                unified_misses = unified.misses(2 * depth, ASSOC)
                split_misses = split_cache_misses(
                    run.instruction_trace,
                    run.data_trace,
                    depth=depth,
                    associativity=ASSOC,
                )
                rows.append((depth, unified_misses, split_misses))
            out[name] = rows
        return out

    analyses = benchmark.pedantic(analyze_all, rounds=1, iterations=1)

    rows = []
    for name, points in analyses.items():
        for depth, unified_misses, split_misses in points:
            winner = "split" if split_misses < unified_misses else (
                "unified" if unified_misses < split_misses else "tie"
            )
            rows.append(
                [
                    name,
                    2 * depth * ASSOC,
                    unified_misses,
                    split_misses,
                    winner,
                ]
            )

    table = format_table(
        ["Kernel", "Total words", "Unified misses", "Split misses", "Winner"],
        rows,
        title=(
            f"Extension: unified (depth 2D) vs split I/D (depth D each), "
            f"A={ASSOC}, equal capacity"
        ),
    )
    emit(results_dir, "ablation_unified", table)

    # Shape: at the largest capacity both fit everything hot, so the
    # counts converge; misses are monotone in capacity on both sides.
    for name, points in analyses.items():
        unified_counts = [u for _, u, _ in points]
        split_counts = [s for _, _, s in points]
        assert unified_counts == sorted(unified_counts, reverse=True), name
        assert split_counts == sorted(split_counts, reverse=True), name
