"""Paper Tables 19-30: optimal instruction-cache instances per benchmark.

Same layout as Tables 7-18 but over the instruction traces.  The paper's
Table 30 narrative ("for a cache of depth 512, a direct mapped cache
would be sufficient to ensure less than 15% misses, while a two way set
associative cache would be needed to assure less than 5%") is the shape
being reproduced: looser budgets reach A=1 at shallower depths.
"""

import pytest

from repro.analysis.tables import optimal_instances_table
from repro.core.explorer import AnalyticalCacheExplorer
from repro.workloads import WORKLOAD_NAMES

from conftest import PERCENTS, emit

TABLE_NUMBERS = {name: 19 + i for i, name in enumerate(WORKLOAD_NAMES)}


@pytest.mark.parametrize("name", WORKLOAD_NAMES)
def test_optimal_instruction_cache_instances(benchmark, runs, results_dir, name):
    trace = runs[name].instruction_trace

    def explore_all():
        explorer = AnalyticalCacheExplorer(trace)
        return explorer, {p: explorer.explore_percent(p) for p in PERCENTS}

    explorer, results = benchmark(explore_all)

    number = TABLE_NUMBERS[name]
    table = optimal_instances_table(
        results,
        title=f"Table {number}: Optimal instruction cache instances for {name}",
    )
    emit(results_dir, f"table{number:02d}_instr_{name}", table)

    for percent, result in results.items():
        budget = explorer.statistics.budget(percent)
        assert all(m <= budget for m in result.misses)

    # The depth at which A=1 first suffices is monotone in the budget:
    # a looser K never needs a deeper cache to go direct-mapped.
    def first_direct_depth(result):
        for inst in result.instances:
            if inst.associativity == 1:
                return inst.depth
        return float("inf")

    depths = [first_direct_depth(results[p]) for p in sorted(PERCENTS)]
    assert depths == sorted(depths, reverse=True)
