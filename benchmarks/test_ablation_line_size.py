"""Extension bench (paper §4 future work): the line-size axis.

Sweeps line sizes 1/2/4/8 on the kernel data traces; per line size the
analytical algorithm yields the per-depth minimum associativity on the
line-address trace (exact, simulator-verified in the test suite).  The
reported trade is the classic one: longer lines shrink the conflict
working set (loop footprints span fewer lines) but pay more words of
traffic per miss.
"""

from repro.analysis.tables import format_table
from repro.core.linesize import LineSizeExplorer
from repro.trace.stats import compute_statistics

from conftest import emit

KERNELS = ("crc", "fir", "ucbqsort", "engine")


def test_line_size_sweep(benchmark, runs, results_dir):
    def sweep_all():
        out = {}
        for name in KERNELS:
            trace = runs[name].data_trace
            budget = compute_statistics(trace).budget(10)
            out[name] = (LineSizeExplorer(trace).explore(budget), budget)
        return out

    sweeps = benchmark(sweep_all)

    rows = []
    for name, (sweep, budget) in sweeps.items():
        for line_words in sweep.line_sizes():
            result = sweep.at(line_words)
            point = min(
                (
                    li
                    for li in sweep.instances
                    if li.line_words == line_words
                ),
                key=lambda li: li.size_words,
            )
            rows.append(
                [
                    name,
                    line_words,
                    budget,
                    f"D={point.instance.depth} A={point.instance.associativity}",
                    point.size_words,
                    point.traffic_words,
                ]
            )
        smallest = sweep.smallest()
        least_traffic = sweep.least_traffic()
        rows.append(
            [
                name,
                "best",
                budget,
                f"size:{smallest} traffic:{least_traffic}",
                smallest.size_words,
                least_traffic.traffic_words,
            ]
        )
        # Shape: the smallest-capacity solution per L is weakly helped by
        # longer lines on these loop/stream kernels, while traffic per
        # miss grows by construction.
        assert all(li.non_cold_misses <= budget for li in sweep.instances)

    table = format_table(
        ["Kernel", "L", "K", "Smallest instance", "Words", "Traffic"],
        rows,
        title="Extension: line-size sweep (smallest budget-satisfying point per L)",
    )
    emit(results_dir, "ablation_line_size", table)
