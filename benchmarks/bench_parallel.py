"""Benchmark harness for the parallel postlude engines.

Times the two parallel engines (``parallel``, the bigint pickle-based
one, and ``parallel-shm``, the shared-memory one) plus ``vectorized``
as the single-process baseline, cross-checks that they produce
identical histograms, measures the store's warm mmap start, and writes
a machine-readable ``BENCH_parallel.json``.

Run it from the repo root::

    PYTHONPATH=src python benchmarks/bench_parallel.py
    PYTHONPATH=src python benchmarks/bench_parallel.py --quick --assert-speedup

Each engine is timed against the prelude product it actually consumes,
built outside the clock: the bigint MRCT for ``parallel``, the packed
conflict matrix for ``parallel-shm`` and ``vectorized``.  What remains
inside the clock is exactly the work the engines compete on — shipping
the tables to workers (pickle versus shared segment) plus the BCAT
walk.  ``--assert-speedup`` turns the summary into a gate: the run
fails unless ``parallel-shm`` beats ``parallel`` by the floor on the
largest trace *and* the warm mmap start decoded without a matrix-sized
allocation.

JSON schema (``validate_results`` enforces it)::

    {
      "schema": "repro-bench-parallel/1",
      "python": str, "numpy": str | null, "platform": str,
      "repeats": int,
      "results": [
        {"engine": str,   # parallel | parallel-shm | vectorized
         "trace": str,
         "N": int,
         "N_prime": int,
         "wall_s": float,
         "match": bool}   # identical histograms across engines
      ],
      "warm_start": {
        "trace": str,
        "matrix_bytes": int,        # packed matrix payload size
        "decode_peak_bytes": int,   # tracemalloc peak during warm get
        "mmap_hits": int,
        "zero_copy": bool           # peak < matrix_bytes / 2
      },
      "summary": {
        "largest_trace": str,
        "N": int,
        "parallel_wall_s": float,
        "parallel_shm_wall_s": float,
        "shm_speedup": float        # parallel / parallel-shm
      }
    }
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import tracemalloc
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core import engines
from repro.obs import NULL_RECORDER, Recorder, environment_info
from repro.trace.synthetic import interleaved_trace, loop_nest_trace, zipf_trace
from repro.trace.trace import Trace

SCHEMA = "repro-bench-parallel/1"

ENGINES = ("vectorized", "parallel", "parallel-shm")

RESULT_FIELDS = {
    "engine": str,
    "trace": str,
    "N": int,
    "N_prime": int,
    "wall_s": float,
    "match": bool,
}


def loop_mix_trace(footprint: int, iterations: int) -> Trace:
    """Four interleaved loop nests (see ``bench_postlude``); length is
    ``4 * footprint * iterations``."""
    regions = [
        loop_nest_trace(footprint, iterations, start=region << 13)
        for region in range(4)
    ]
    return interleaved_trace(
        regions, name=f"loop-mix-{footprint}x4x{iterations}"
    )


def panel(quick: bool = False) -> List[Trace]:
    """Benchmark traces, largest last (the largest carries the gate)."""
    def named(trace: Trace, name: str) -> Trace:
        trace.name = name
        return trace

    if quick:
        return [loop_mix_trace(footprint=256, iterations=60)]
    return [
        named(zipf_trace(200_000, 1500, seed=1), "zipf-200000-1500"),
        # >= 1e6 references: the ISSUE's target size for the shm engine.
        loop_mix_trace(footprint=512, iterations=500),
    ]


def _prebuild(name: str, trace: Trace) -> engines.EngineInputs:
    """Fresh inputs with the engine's preferred prelude product built.

    Outside the timed region, so the clock covers only the postlude:
    table distribution (pickle vs shared segment) plus the BCAT walk.
    """
    inputs = engines.EngineInputs(trace)
    if name == "parallel":
        inputs.mrct
    else:
        inputs.packed_mrct
    return inputs


def _time_engine(
    name: str, trace: Trace, repeats: int
) -> Tuple[float, Dict]:
    spec = engines.get_engine(name)
    inputs = _prebuild(name, trace)
    options = spec.filter_options({"processes": 2})
    best = float("inf")
    histograms = None
    try:
        for _ in range(max(1, repeats)):
            recorder = Recorder()
            inputs.recorder = recorder
            histograms = spec.compute(inputs, **options)
            best = min(best, recorder.find(f"engine:{name}").duration_s)
    finally:
        inputs.recorder = NULL_RECORDER
    return best, histograms


def measure_warm_start(trace: Trace) -> Dict:
    """Peak allocation of a warm packed-MRCT load through the mmap path."""
    from repro.store import ArtifactStore

    with tempfile.TemporaryDirectory(prefix="bench-parallel-") as tmp:
        cold = engines.EngineInputs(trace, store=ArtifactStore(tmp))
        matrix_bytes = int(cold.packed_mrct.matrix.nbytes)
        warm_store = ArtifactStore(tmp, memory_entries=0)
        warm = engines.EngineInputs(trace, store=warm_store)
        warm.stripped  # digest/strip outside the measured window
        tracemalloc.start()
        try:
            packed = warm.packed_mrct
            _, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        assert packed == cold.packed_mrct
        return {
            "trace": trace.name,
            "matrix_bytes": matrix_bytes,
            "decode_peak_bytes": int(peak),
            "mmap_hits": int(warm_store.stats.mmap_hits),
            "zero_copy": bool(
                warm_store.stats.mmap_hits > 0 and peak < matrix_bytes / 2
            ),
        }


def run_bench(
    traces: Sequence[Trace], repeats: int = 2, warm_trace: Optional[Trace] = None
) -> Dict:
    results: List[Dict] = []
    wall_by_key: Dict[Tuple[str, str], float] = {}
    for trace in traces:
        print(f"[bench] {trace.name} (N={len(trace)})", file=sys.stderr)
        reference = None
        n_prime = None
        for name in ENGINES:
            wall, histograms = _time_engine(name, trace, repeats)
            if reference is None:
                reference = histograms
                n_prime = engines.EngineInputs(trace).stripped.n_unique
            wall_by_key[(name, trace.name)] = wall
            results.append(
                {
                    "engine": name,
                    "trace": trace.name,
                    "N": len(trace),
                    "N_prime": n_prime,
                    "wall_s": wall,
                    "match": histograms == reference,
                }
            )
    largest = max(traces, key=len)
    environment = environment_info()
    document = {
        "schema": SCHEMA,
        "python": environment["python"],
        "numpy": environment["numpy"],
        "platform": environment["platform"],
        "repeats": repeats,
        "results": results,
        "warm_start": measure_warm_start(warm_trace or largest),
        "summary": {
            "largest_trace": largest.name,
            "N": len(largest),
            "parallel_wall_s": wall_by_key[("parallel", largest.name)],
            "parallel_shm_wall_s": wall_by_key[("parallel-shm", largest.name)],
            "shm_speedup": (
                wall_by_key[("parallel", largest.name)]
                / wall_by_key[("parallel-shm", largest.name)]
            ),
        },
    }
    return document


def validate_results(document: Dict) -> None:
    """Raise ``ValueError`` unless ``document`` matches the schema above.

    Delegates to the unified registry in :mod:`repro.sweep.schema`, so
    every bench document validates through exactly one code path (CI
    round-trips each committed ``BENCH_*.json`` against the same
    registry).
    """
    from repro.sweep.schema import validate_bench

    validate_bench(document, expect=SCHEMA)


def assert_speedup(document: Dict, floor: float) -> None:
    """The CI gate: shm speedup over the floor, warm start zero-copy."""
    summary = document["summary"]
    if summary["shm_speedup"] < floor:
        raise SystemExit(
            f"parallel-shm speedup {summary['shm_speedup']:.2f}x is below "
            f"the {floor:.2f}x floor on {summary['largest_trace']}"
        )
    warm = document["warm_start"]
    if not warm["zero_copy"]:
        raise SystemExit(
            f"warm mmap start was not zero-copy: peak "
            f"{warm['decode_peak_bytes']} bytes vs matrix "
            f"{warm['matrix_bytes']} bytes ({warm['mmap_hits']} mmap hits)"
        )


def _print_table(document: Dict) -> None:
    print(
        f"{'trace':26s} {'engine':12s} {'N':>8s} {'N_prime':>7s} {'wall_s':>8s}"
    )
    for row in document["results"]:
        print(
            f"{row['trace']:26s} {row['engine']:12s} {row['N']:8d} "
            f"{row['N_prime']:7d} {row['wall_s']:8.3f}"
        )
    summary = document["summary"]
    warm = document["warm_start"]
    print(
        f"{summary['largest_trace']} (N={summary['N']}): parallel "
        f"{summary['parallel_wall_s']:.3f}s, parallel-shm "
        f"{summary['parallel_shm_wall_s']:.3f}s -> "
        f"{summary['shm_speedup']:.2f}x"
    )
    print(
        f"warm mmap start on {warm['trace']}: matrix {warm['matrix_bytes']} B, "
        f"decode peak {warm['decode_peak_bytes']} B, zero_copy="
        f"{warm['zero_copy']}"
    )


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "-o", "--output", default="BENCH_parallel.json", help="output JSON path"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small panel for CI smoke (seconds, not minutes)",
    )
    parser.add_argument("--repeats", type=int, default=2)
    parser.add_argument(
        "--assert-speedup",
        action="store_true",
        help="fail unless parallel-shm clears the speedup floor and the "
        "warm mmap start is zero-copy",
    )
    parser.add_argument(
        "--speedup-floor",
        type=float,
        default=None,
        help="override the gate floor (default 2.0, or 1.2 with --quick)",
    )
    args = parser.parse_args(argv)

    from repro.core.vectorized import numpy_available

    if not numpy_available():
        print("bench_parallel requires NumPy; skipping", file=sys.stderr)
        return 0

    document = run_bench(panel(quick=args.quick), repeats=args.repeats)
    validate_results(document)
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")
    _print_table(document)
    print(f"wrote {args.output}")
    if args.assert_speedup:
        floor = args.speedup_floor
        if floor is None:
            floor = 1.2 if args.quick else 2.0
        assert_speedup(document, floor)
        print(f"speedup gate passed (floor {floor:.2f}x)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
