"""Extension bench (paper §2.4): parallel postlude via BCAT partitioning.

The paper notes the bit-vector sets make the algorithm distributable.
This bench runs the histogram phase serially and with worker processes
on the largest kernel traces, asserts bit-identical results, and
reports the timings.  (At these trace sizes process start-up dominates;
the point being demonstrated is the decomposition, whose benefit grows
with N*N'.)
"""

import time

from repro.analysis.tables import format_table
from repro.core.explorer import AnalyticalCacheExplorer
from repro.core.parallel import compute_level_histograms_parallel
from repro.core.postlude import compute_level_histograms

from conftest import emit

KERNELS = ("des", "g3fax", "blit")


def test_parallel_postlude_matches_serial(benchmark, runs, results_dir):
    prepared = {}
    for name in KERNELS:
        explorer = AnalyticalCacheExplorer(runs[name].data_trace)
        prepared[name] = (explorer.zerosets, explorer.mrct)

    def serial_all():
        return {
            name: compute_level_histograms(zerosets, mrct)
            for name, (zerosets, mrct) in prepared.items()
        }

    serial = benchmark(serial_all)

    rows = []
    for name, (zerosets, mrct) in prepared.items():
        start = time.perf_counter()
        serial_h = compute_level_histograms(zerosets, mrct)
        serial_seconds = time.perf_counter() - start

        start = time.perf_counter()
        parallel_h = compute_level_histograms_parallel(
            zerosets, mrct, processes=2, split_level=2
        )
        parallel_seconds = time.perf_counter() - start

        for level in serial_h:
            assert serial_h[level].counts == parallel_h[level].counts, (
                name,
                level,
            )
        rows.append(
            [
                name,
                zerosets.n_unique,
                f"{serial_seconds:.4f}",
                f"{parallel_seconds:.4f}",
            ]
        )
    assert set(serial) == set(prepared)

    table = format_table(
        ["Kernel", "N'", "Serial s", "2 workers s"],
        rows,
        title="Extension: parallel postlude (bit-identical histograms)",
    )
    emit(results_dir, "ablation_parallel", table)
