"""Extended evaluation: the four extra PowerStone kernels.

The paper evaluates 12 PowerStone programs; the wider suite also
contains jpeg, summin, v42 and whet, which this repository implements
as well.  This bench extends Tables 5/6 and the optimal-instance tables
to them, with the same shape assertions as the paper benches.
"""

from repro.analysis.tables import optimal_instances_table, trace_stats_table
from repro.core.explorer import AnalyticalCacheExplorer
from repro.trace.stats import compute_statistics
from repro.workloads import EXTRA_WORKLOAD_NAMES, run_workload_by_name

from conftest import PERCENTS, emit


def test_extra_kernels_stats_and_instances(benchmark, bench_scale, results_dir):
    extra_runs = {
        name: run_workload_by_name(name, scale=bench_scale)
        for name in EXTRA_WORKLOAD_NAMES
    }

    def explore_all():
        out = {}
        for name, run in extra_runs.items():
            for label, trace in (
                ("data", run.data_trace),
                ("inst", run.instruction_trace),
            ):
                explorer = AnalyticalCacheExplorer(trace)
                out[(name, label)] = {
                    p: explorer.explore_percent(p) for p in PERCENTS
                }
        return out

    explorations = benchmark(explore_all)

    blocks = []
    stats = []
    for name, run in extra_runs.items():
        stats.append(compute_statistics(run.data_trace, name=f"{name}.data"))
        stats.append(
            compute_statistics(run.instruction_trace, name=f"{name}.inst")
        )
    blocks.append(
        trace_stats_table(stats, title="Extra kernels: trace statistics")
    )

    for (name, label), results in explorations.items():
        blocks.append(
            optimal_instances_table(
                results,
                title=f"Optimal {label} cache instances for {name} (extra)",
            )
        )
        # Same shape assertions as the paper benches.
        for percent, result in results.items():
            assocs = [inst.associativity for inst in result]
            assert assocs == sorted(assocs, reverse=True), (name, label)

    emit(results_dir, "extras_suite", "\n\n".join(blocks))
