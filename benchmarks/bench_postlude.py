"""Benchmark harness for the postlude histogram engines.

Times every registered engine (``repro.core.engines``) on a panel of
synthetic traces plus a few real workload traces, cross-checks that all
engines produce bit-identical histograms, and writes a machine-readable
``BENCH_postlude.json``.

Run it from the repo root::

    PYTHONPATH=src python benchmarks/bench_postlude.py
    PYTHONPATH=src python benchmarks/bench_postlude.py --quick  # CI smoke

Timing and memory sampling go through :mod:`repro.obs` — the same
recorder the pipeline itself is instrumented with (``repro profile``),
so the harness measures exactly what a profiled production run reports.
Timing excludes the prelude (strip / zero-one sets / MRCT are built
once per trace before the clock starts) for the engines that consume
prelude products; the streaming engine's single pass over the raw trace
*is* its whole job, so its wall time covers that pass.  The streaming
engine is skipped on traces longer than ``STREAMING_MAX_REFS`` — its
per-reference LRU-stack cost makes multi-hundred-thousand-reference
runs take minutes, which is exactly what the other engines are for.

JSON schema (``validate_results`` enforces it)::

    {
      "schema": "repro-bench-postlude/1",
      "python": str, "numpy": str | null, "platform": str,
      "repeats": int,
      "results": [
        {"engine": str,      # concrete engine name
         "trace": str,       # trace name
         "N": int,           # trace length
         "N_prime": int,     # unique addresses (the paper's N')
         "levels": int,      # deepest BCAT level computed
         "wall_s": float,    # best-of-repeats postlude wall time
         "peak_mem": int,    # tracemalloc peak bytes during one run
         "match": bool}      # histograms bit-identical to serial
      ],
      "summary": {
        "largest_synthetic_trace": str,
        "serial_wall_s": float,
        "vectorized_wall_s": float,
        "vectorized_speedup": float   # serial / vectorized
      }
    }
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core import engines
from repro.obs import NULL_RECORDER, Recorder, environment_info
from repro.trace.synthetic import (
    interleaved_trace,
    loop_nest_trace,
    markov_trace,
    zipf_trace,
)
from repro.trace.trace import Trace

SCHEMA = "repro-bench-postlude/1"

#: Skip the streaming engine above this trace length (see module docstring).
STREAMING_MAX_REFS = 120_000

#: Required result-row fields and their types.
RESULT_FIELDS = {
    "engine": str,
    "trace": str,
    "N": int,
    "N_prime": int,
    "levels": int,
    "wall_s": float,
    "peak_mem": int,
    "match": bool,
}


def loop_mix_trace(footprint: int = 512, iterations: int = 150) -> Trace:
    """The panel's largest synthetic trace: four interleaved loop nests.

    Models an embedded steady state — code, data and stack regions each
    looping over their own footprint concurrently.  Loop-dominated and
    periodic, so it exercises the vectorized engine's row dedupe the way
    real firmware would.
    """
    regions = [
        loop_nest_trace(footprint, iterations, start=region << 13)
        for region in range(4)
    ]
    return interleaved_trace(
        regions, name=f"loop-mix-{footprint}x4x{iterations}"
    )


def synthetic_panel(quick: bool = False) -> List[Trace]:
    """Synthetic traces, largest last."""
    def named(trace: Trace, name: str) -> Trace:
        trace.name = name
        return trace

    if quick:
        return [
            named(loop_nest_trace(16, 4), "loop-16x4"),
            named(zipf_trace(400, 64, seed=1), "zipf-400-64"),
            loop_mix_trace(footprint=32, iterations=8),
        ]
    return [
        named(loop_nest_trace(1024, 100), "loop-1024x100"),
        named(zipf_trace(100_000, 800, seed=1), "zipf-100000-800"),
        named(markov_trace(60_000, 1000, locality=0.9, seed=3), "markov-60000-1000"),
        loop_mix_trace(),
    ]


def workload_panel(
    names: Sequence[str] = ("crc", "fir", "ucbqsort"), scale: str = "small"
) -> List[Trace]:
    """Data traces of a few real workload kernels."""
    from repro.workloads import run_workload_by_name

    return [run_workload_by_name(name, scale=scale).data_trace for name in names]


def _time_engine(
    spec: engines.EngineSpec,
    inputs: engines.EngineInputs,
    repeats: int,
    measure_memory: bool,
) -> Tuple[float, int, Dict]:
    """Best-of-``repeats`` wall time, peak bytes, and the histograms.

    Each run attaches a fresh :class:`repro.obs.Recorder` to the inputs;
    the engine's own ``engine:<name>`` phase (recorded by the registry's
    dispatch) is the timed region, so the harness and ``repro profile``
    report the same quantity.
    """
    options = spec.filter_options({"processes": 2})
    best = float("inf")
    histograms = None
    try:
        for _ in range(max(1, repeats)):
            recorder = Recorder()
            inputs.recorder = recorder
            histograms = spec.compute(inputs, **options)
            best = min(best, recorder.find(f"engine:{spec.name}").duration_s)
        peak = 0
        if measure_memory:
            recorder = Recorder(memory=True)
            inputs.recorder = recorder
            spec.compute(inputs, **options)
            peak = recorder.memory_stats.get("tracemalloc_peak_bytes", 0)
    finally:
        inputs.recorder = NULL_RECORDER
    return best, peak, histograms


def run_bench(
    traces: Sequence[Trace],
    engine_names: Optional[Sequence[str]] = None,
    repeats: int = 2,
    measure_memory: bool = True,
    largest_synthetic: Optional[str] = None,
) -> Dict:
    """Time the engines on each trace and return the result document."""
    if engine_names is None:
        engine_names = engines.engine_names(include_auto=False)
    results: List[Dict] = []
    wall_by_key: Dict[Tuple[str, str], float] = {}
    for trace in traces:
        inputs = engines.EngineInputs(trace)
        inputs.mrct  # build the prelude outside the timed region
        reference = engines.get_engine("serial").compute(inputs)
        levels = max(reference, default=0)
        for name in engine_names:
            spec = engines.get_engine(name)
            if name == "streaming" and len(trace) > STREAMING_MAX_REFS:
                print(
                    f"  [skip] streaming on {trace.name} "
                    f"(N={len(trace)} > {STREAMING_MAX_REFS})",
                    file=sys.stderr,
                )
                continue
            wall, peak, histograms = _time_engine(
                spec, inputs, repeats, measure_memory
            )
            match = histograms == reference
            wall_by_key[(name, trace.name)] = wall
            results.append(
                {
                    "engine": name,
                    "trace": trace.name,
                    "N": len(trace),
                    "N_prime": inputs.stripped.n_unique,
                    "levels": levels,
                    "wall_s": wall,
                    "peak_mem": peak,
                    "match": match,
                }
            )
    environment = environment_info()
    document = {
        "schema": SCHEMA,
        "python": environment["python"],
        "numpy": environment["numpy"],
        "platform": environment["platform"],
        "repeats": repeats,
        "results": results,
    }
    if largest_synthetic is not None:
        serial = wall_by_key.get(("serial", largest_synthetic))
        vectorized = wall_by_key.get(("vectorized", largest_synthetic))
        if serial is not None and vectorized is not None:
            document["summary"] = {
                "largest_synthetic_trace": largest_synthetic,
                "serial_wall_s": serial,
                "vectorized_wall_s": vectorized,
                "vectorized_speedup": serial / vectorized,
            }
    return document


def validate_results(document: Dict) -> None:
    """Raise ``ValueError`` unless ``document`` matches the schema above.

    Delegates to the unified registry in :mod:`repro.sweep.schema`, so
    every bench document validates through exactly one code path (CI
    round-trips each committed ``BENCH_*.json`` against the same
    registry).
    """
    from repro.sweep.schema import validate_bench

    validate_bench(document, expect=SCHEMA)


def _print_table(document: Dict) -> None:
    rows = document["results"]
    print(
        f"{'trace':28s} {'engine':10s} {'N':>7s} {'N_prime':>7s} "
        f"{'levels':>6s} {'wall_s':>8s} {'peak_mem':>10s}"
    )
    for row in rows:
        print(
            f"{row['trace']:28s} {row['engine']:10s} {row['N']:7d} "
            f"{row['N_prime']:7d} {row['levels']:6d} {row['wall_s']:8.3f} "
            f"{row['peak_mem']:10d}"
        )
    summary = document.get("summary")
    if summary:
        print(
            f"largest synthetic ({summary['largest_synthetic_trace']}): "
            f"serial {summary['serial_wall_s']:.3f}s, vectorized "
            f"{summary['vectorized_wall_s']:.3f}s -> "
            f"{summary['vectorized_speedup']:.2f}x"
        )


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "-o", "--output", default="BENCH_postlude.json", help="output JSON path"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="tiny panel for smoke tests (seconds, not minutes)",
    )
    parser.add_argument("--repeats", type=int, default=2)
    parser.add_argument(
        "--no-workloads", action="store_true", help="skip the workload traces"
    )
    parser.add_argument(
        "--no-memory", action="store_true", help="skip the tracemalloc pass"
    )
    args = parser.parse_args(argv)

    synthetic = synthetic_panel(quick=args.quick)
    traces = list(synthetic)
    if not args.no_workloads:
        traces += workload_panel(scale="tiny" if args.quick else "small")
    largest = max(synthetic, key=len).name
    document = run_bench(
        traces,
        repeats=args.repeats,
        measure_memory=not args.no_memory,
        largest_synthetic=largest,
    )
    validate_results(document)
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")
    _print_table(document)
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
