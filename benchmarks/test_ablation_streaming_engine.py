"""Implementation ablation: bitmask BCAT/MRCT engine vs streaming engine.

Two independent implementations of the whole analytical computation:

* the paper-faithful pipeline (zero/one sets -> BCAT walk -> MRCT
  bitmask intersections) — fast in Python thanks to word-parallel
  popcounts, but stores one conflict mask per non-cold occurrence;
* the streaming engine (single LRU stack, trailing-zero bucketing) —
  O(N') live state, no conflict storage, the variant for traces that
  dwarf memory.

Both must produce bit-identical histograms on every kernel trace.
"""

import time

from repro.analysis.tables import format_table
from repro.core.explorer import AnalyticalCacheExplorer
from repro.core.streaming import compute_level_histograms_streaming

from conftest import emit

KERNELS = ("crc", "des", "g3fax", "ucbqsort")


def test_streaming_engine_matches_bcat_engine(benchmark, runs, results_dir):
    traces = {name: runs[name].data_trace for name in KERNELS}

    def bcat_all():
        out = {}
        for name, trace in traces.items():
            explorer = AnalyticalCacheExplorer(trace)
            out[name] = explorer.histograms
        return out

    bcat_results = benchmark(bcat_all)

    rows = []
    for name, trace in traces.items():
        start = time.perf_counter()
        explorer = AnalyticalCacheExplorer(trace)
        _ = explorer.histograms
        bcat_seconds = time.perf_counter() - start

        start = time.perf_counter()
        streaming = compute_level_histograms_streaming(trace)
        stream_seconds = time.perf_counter() - start

        reference = bcat_results[name]
        for level in reference:
            assert reference[level].counts == streaming[level].counts, (
                name,
                level,
            )
        rows.append(
            [
                name,
                len(trace),
                trace.unique_count(),
                f"{bcat_seconds:.4f}",
                f"{stream_seconds:.4f}",
            ]
        )

    table = format_table(
        ["Kernel", "N", "N'", "BCAT/MRCT s", "Streaming s"],
        rows,
        title="Engine ablation: identical histograms, time vs space trade",
    )
    emit(results_dir, "ablation_streaming_engine", table)
