"""Ablation (paper section 2.4): full BCAT vs streaming DFS traversal.

The paper notes that combining Algorithms 1 and 3 via a depth-first
traversal reduces space from exponential to linear in the number of
unique references.  This bench verifies both implementations give the
same answers and compares their costs (time and allocated node count).
"""

from repro.analysis.tables import format_table
from repro.core.bcat import build_bcat, walk_bcat_sets
from repro.core.explorer import AnalyticalCacheExplorer
from repro.core.mrct import build_mrct
from repro.core.postlude import optimal_pairs_algorithm3
from repro.core.zerosets import build_zero_one_sets
from repro.trace.stats import compute_statistics
from repro.trace.strip import strip_trace

from conftest import emit

KERNELS = ("crc", "qurt", "engine", "bcnt")


def _count_nodes(node):
    if node is None:
        return 0
    return 1 + _count_nodes(node.left) + _count_nodes(node.right)


def test_streaming_traversal_matches_full_tree(benchmark, runs, results_dir):
    rows = []
    streamed_results = {}

    def stream_all():
        out = {}
        for name in KERNELS:
            trace = runs[name].data_trace
            explorer = AnalyticalCacheExplorer(trace)
            budget = compute_statistics(trace).budget(10)
            out[name] = (explorer.explore(budget), budget)
        return out

    streamed_results = benchmark(stream_all)

    for name in KERNELS:
        trace = runs[name].data_trace
        stripped = strip_trace(trace)
        zerosets = build_zero_one_sets(stripped)
        mrct = build_mrct(stripped)
        bcat = build_bcat(zerosets)
        streamed, budget = streamed_results[name]
        literal = {
            inst.depth: inst.associativity
            for inst in optimal_pairs_algorithm3(bcat, mrct, budget)
        }
        # The streaming explorer stops reporting once everything is
        # direct-mapped; compare on the depths both sides report.
        streamed_map = streamed.as_dict()
        common = set(literal) & set(streamed_map)
        assert common, name
        for depth in common:
            assert streamed_map[depth] == literal[depth], (name, depth)

        tree_nodes = _count_nodes(bcat.root)
        visited = sum(1 for _ in walk_bcat_sets(zerosets))
        rows.append([name, stripped.n_unique, tree_nodes, visited])

    table = format_table(
        ["Kernel", "N'", "Full BCAT nodes", "Streamed sets"],
        rows,
        title="Ablation: materialized BCAT vs streaming DFS (same answers)",
    )
    emit(results_dir, "ablation_bcat_streaming", table)
