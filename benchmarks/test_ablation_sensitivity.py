"""Extension bench: the full K→A staircase from one analytical run.

A unique property of the analytical method: the per-level histograms
contain the complete budget-to-associativity relationship, so the whole
trade-off curve ("how many extra misses buy each cheaper cache?") costs
nothing beyond the single run the paper already performs.  The
traditional flow would need one simulation per probed budget per
candidate.
"""

from repro.analysis.tables import format_table
from repro.core.explorer import AnalyticalCacheExplorer
from repro.core.sensitivity import budget_sensitivity

from conftest import emit

KERNELS = ("crc", "engine")
DEPTHS = (8, 64)


def test_budget_sensitivity_staircases(benchmark, runs, results_dir):
    def staircases():
        out = {}
        for name in KERNELS:
            explorer = AnalyticalCacheExplorer(runs[name].data_trace)
            for depth in DEPTHS:
                out[(name, depth)] = (
                    explorer,
                    budget_sensitivity(explorer, depth),
                )
        return out

    results = benchmark(staircases)

    rows = []
    for (name, depth), (explorer, steps) in results.items():
        # Verify each breakpoint against direct exploration.
        for step in steps[:4]:
            assert (
                explorer.explore(step.min_budget).as_dict()[depth]
                == step.associativity
            )
        for step in steps[:6]:
            rows.append(
                [
                    name,
                    depth,
                    step.associativity,
                    step.min_budget,
                    "inf" if step.unbounded else step.max_budget,
                ]
            )

    table = format_table(
        ["Kernel", "Depth", "A", "K from", "K to"],
        rows,
        title="Extension: complete K -> A staircase (one analytical run)",
    )
    emit(results_dir, "ablation_sensitivity", table)
