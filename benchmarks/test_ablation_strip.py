"""Ablation (paper section 2.4): hash-table stripping vs sort-based stripping.

The paper observes stripping "could take as long as N log N steps" by
sorting but becomes linear with a hash table.  Both must produce
identical stripped traces; the bench times each strategy over all 24
workload traces.
"""

import time

from repro.analysis.tables import format_table
from repro.trace.strip import strip_trace, strip_trace_sorted
from repro.workloads import WORKLOAD_NAMES

from conftest import emit


def test_hash_strip_matches_and_beats_sort_strip(benchmark, runs, results_dir):
    traces = []
    for name in WORKLOAD_NAMES:
        traces.append(runs[name].data_trace)
        traces.append(runs[name].instruction_trace)

    def hash_strip_all():
        return [strip_trace(trace) for trace in traces]

    hashed = benchmark(hash_strip_all)

    start = time.perf_counter()
    sorted_strips = [strip_trace_sorted(trace) for trace in traces]
    sort_seconds = time.perf_counter() - start

    for fast, slow in zip(hashed, sorted_strips):
        assert fast.unique_addresses == slow.unique_addresses
        assert list(fast.id_sequence) == list(slow.id_sequence)

    start = time.perf_counter()
    hash_strip_all()
    hash_seconds = time.perf_counter() - start

    table = format_table(
        ["Strategy", "Seconds (24 traces)"],
        [["hash (linear)", f"{hash_seconds:.4f}"],
         ["sort (N log N)", f"{sort_seconds:.4f}"]],
        title="Ablation: stripping strategy (identical outputs)",
    )
    emit(results_dir, "ablation_strip", table)
