"""Paper Table 6: instruction trace statistics (N, N', max misses)."""

from repro.analysis.tables import trace_stats_table
from repro.trace.stats import compute_statistics
from repro.workloads import WORKLOAD_NAMES

from conftest import emit


def test_table06_instr_trace_stats(benchmark, runs, results_dir):
    traces = [runs[name].instruction_trace for name in WORKLOAD_NAMES]

    def compute_all():
        return [
            compute_statistics(trace, name=name)
            for name, trace in zip(WORKLOAD_NAMES, traces)
        ]

    stats = benchmark(compute_all)
    table = trace_stats_table(stats, title="Table 6: Instruction trace statistics")
    emit(results_dir, "table06_instr_trace_stats", table)

    for row in stats:
        assert 0 < row.n_unique <= row.n
        # Instruction traces are loop-dominated: far more reuse than data.
        assert row.n_unique < row.n
